/root/repo/target/debug/examples/quickstart-0a210afdf67b6529.d: crates/ddos-report/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0a210afdf67b6529.rmeta: crates/ddos-report/../../examples/quickstart.rs Cargo.toml

crates/ddos-report/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
