/root/repo/target/debug/examples/collaboration_hunt-aea0701d09361fd4.d: crates/ddos-report/../../examples/collaboration_hunt.rs

/root/repo/target/debug/examples/collaboration_hunt-aea0701d09361fd4: crates/ddos-report/../../examples/collaboration_hunt.rs

crates/ddos-report/../../examples/collaboration_hunt.rs:
