/root/repo/target/debug/examples/trace_export-b431b1266629ef01.d: crates/ddos-report/../../examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-b431b1266629ef01: crates/ddos-report/../../examples/trace_export.rs

crates/ddos-report/../../examples/trace_export.rs:
