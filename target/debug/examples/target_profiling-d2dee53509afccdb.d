/root/repo/target/debug/examples/target_profiling-d2dee53509afccdb.d: crates/ddos-report/../../examples/target_profiling.rs Cargo.toml

/root/repo/target/debug/examples/libtarget_profiling-d2dee53509afccdb.rmeta: crates/ddos-report/../../examples/target_profiling.rs Cargo.toml

crates/ddos-report/../../examples/target_profiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
