/root/repo/target/debug/examples/trace_export-2e3e87de8a5900d5.d: crates/ddos-report/../../examples/trace_export.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_export-2e3e87de8a5900d5.rmeta: crates/ddos-report/../../examples/trace_export.rs Cargo.toml

crates/ddos-report/../../examples/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
