/root/repo/target/debug/examples/quickstart-ac7f8133bf54bc9d.d: crates/ddos-report/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ac7f8133bf54bc9d: crates/ddos-report/../../examples/quickstart.rs

crates/ddos-report/../../examples/quickstart.rs:
