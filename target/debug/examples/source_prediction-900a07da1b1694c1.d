/root/repo/target/debug/examples/source_prediction-900a07da1b1694c1.d: crates/ddos-report/../../examples/source_prediction.rs

/root/repo/target/debug/examples/source_prediction-900a07da1b1694c1: crates/ddos-report/../../examples/source_prediction.rs

crates/ddos-report/../../examples/source_prediction.rs:
