/root/repo/target/debug/examples/source_prediction-fb415c979bcea527.d: crates/ddos-report/../../examples/source_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libsource_prediction-fb415c979bcea527.rmeta: crates/ddos-report/../../examples/source_prediction.rs Cargo.toml

crates/ddos-report/../../examples/source_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
