/root/repo/target/debug/examples/feed_replay-81f408cd7d4a4761.d: crates/ddos-report/../../examples/feed_replay.rs Cargo.toml

/root/repo/target/debug/examples/libfeed_replay-81f408cd7d4a4761.rmeta: crates/ddos-report/../../examples/feed_replay.rs Cargo.toml

crates/ddos-report/../../examples/feed_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
