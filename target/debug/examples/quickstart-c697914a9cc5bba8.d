/root/repo/target/debug/examples/quickstart-c697914a9cc5bba8.d: crates/ddos-report/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c697914a9cc5bba8: crates/ddos-report/../../examples/quickstart.rs

crates/ddos-report/../../examples/quickstart.rs:
