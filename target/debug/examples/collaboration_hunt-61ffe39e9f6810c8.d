/root/repo/target/debug/examples/collaboration_hunt-61ffe39e9f6810c8.d: crates/ddos-report/../../examples/collaboration_hunt.rs

/root/repo/target/debug/examples/collaboration_hunt-61ffe39e9f6810c8: crates/ddos-report/../../examples/collaboration_hunt.rs

crates/ddos-report/../../examples/collaboration_hunt.rs:
