/root/repo/target/debug/examples/feed_replay-9d3068afa36d2d56.d: crates/ddos-report/../../examples/feed_replay.rs

/root/repo/target/debug/examples/feed_replay-9d3068afa36d2d56: crates/ddos-report/../../examples/feed_replay.rs

crates/ddos-report/../../examples/feed_replay.rs:
