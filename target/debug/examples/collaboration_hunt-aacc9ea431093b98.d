/root/repo/target/debug/examples/collaboration_hunt-aacc9ea431093b98.d: crates/ddos-report/../../examples/collaboration_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libcollaboration_hunt-aacc9ea431093b98.rmeta: crates/ddos-report/../../examples/collaboration_hunt.rs Cargo.toml

crates/ddos-report/../../examples/collaboration_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
