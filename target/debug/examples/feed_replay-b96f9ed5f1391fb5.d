/root/repo/target/debug/examples/feed_replay-b96f9ed5f1391fb5.d: crates/ddos-report/../../examples/feed_replay.rs

/root/repo/target/debug/examples/feed_replay-b96f9ed5f1391fb5: crates/ddos-report/../../examples/feed_replay.rs

crates/ddos-report/../../examples/feed_replay.rs:
