/root/repo/target/debug/examples/target_profiling-d6851239d785168d.d: crates/ddos-report/../../examples/target_profiling.rs

/root/repo/target/debug/examples/target_profiling-d6851239d785168d: crates/ddos-report/../../examples/target_profiling.rs

crates/ddos-report/../../examples/target_profiling.rs:
