/root/repo/target/debug/examples/ctx_profile-f0c44282a54b1a33.d: crates/bench/examples/ctx_profile.rs

/root/repo/target/debug/examples/ctx_profile-f0c44282a54b1a33: crates/bench/examples/ctx_profile.rs

crates/bench/examples/ctx_profile.rs:
