/root/repo/target/debug/examples/trace_export-efc07047fff4a34f.d: crates/ddos-report/../../examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-efc07047fff4a34f: crates/ddos-report/../../examples/trace_export.rs

crates/ddos-report/../../examples/trace_export.rs:
