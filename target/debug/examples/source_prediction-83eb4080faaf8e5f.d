/root/repo/target/debug/examples/source_prediction-83eb4080faaf8e5f.d: crates/ddos-report/../../examples/source_prediction.rs

/root/repo/target/debug/examples/source_prediction-83eb4080faaf8e5f: crates/ddos-report/../../examples/source_prediction.rs

crates/ddos-report/../../examples/source_prediction.rs:
