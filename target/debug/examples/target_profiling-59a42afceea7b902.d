/root/repo/target/debug/examples/target_profiling-59a42afceea7b902.d: crates/ddos-report/../../examples/target_profiling.rs

/root/repo/target/debug/examples/target_profiling-59a42afceea7b902: crates/ddos-report/../../examples/target_profiling.rs

crates/ddos-report/../../examples/target_profiling.rs:
