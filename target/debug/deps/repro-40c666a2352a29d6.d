/root/repo/target/debug/deps/repro-40c666a2352a29d6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-40c666a2352a29d6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
