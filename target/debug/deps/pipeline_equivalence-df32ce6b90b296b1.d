/root/repo/target/debug/deps/pipeline_equivalence-df32ce6b90b296b1.d: crates/core/../../tests/pipeline_equivalence.rs

/root/repo/target/debug/deps/pipeline_equivalence-df32ce6b90b296b1: crates/core/../../tests/pipeline_equivalence.rs

crates/core/../../tests/pipeline_equivalence.rs:
