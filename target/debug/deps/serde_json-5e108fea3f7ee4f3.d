/root/repo/target/debug/deps/serde_json-5e108fea3f7ee4f3.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5e108fea3f7ee4f3.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
