/root/repo/target/debug/deps/pipeline_equivalence-f6d7d4275ccea371.d: crates/core/../../tests/pipeline_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_equivalence-f6d7d4275ccea371.rmeta: crates/core/../../tests/pipeline_equivalence.rs Cargo.toml

crates/core/../../tests/pipeline_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
