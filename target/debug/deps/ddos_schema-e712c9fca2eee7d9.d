/root/repo/target/debug/deps/ddos_schema-e712c9fca2eee7d9.d: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

/root/repo/target/debug/deps/libddos_schema-e712c9fca2eee7d9.rlib: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

/root/repo/target/debug/deps/libddos_schema-e712c9fca2eee7d9.rmeta: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

crates/ddos-schema/src/lib.rs:
crates/ddos-schema/src/codec.rs:
crates/ddos-schema/src/csv.rs:
crates/ddos-schema/src/dataset.rs:
crates/ddos-schema/src/error.rs:
crates/ddos-schema/src/family.rs:
crates/ddos-schema/src/geo.rs:
crates/ddos-schema/src/ids.rs:
crates/ddos-schema/src/ip.rs:
crates/ddos-schema/src/protocol.rs:
crates/ddos-schema/src/record.rs:
crates/ddos-schema/src/snapshot.rs:
crates/ddos-schema/src/time.rs:
