/root/repo/target/debug/deps/bench-1327b2115ef7b533.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-1327b2115ef7b533.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
