/root/repo/target/debug/deps/collaboration-299678e2fc3c379e.d: crates/bench/benches/collaboration.rs Cargo.toml

/root/repo/target/debug/deps/libcollaboration-299678e2fc3c379e.rmeta: crates/bench/benches/collaboration.rs Cargo.toml

crates/bench/benches/collaboration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
