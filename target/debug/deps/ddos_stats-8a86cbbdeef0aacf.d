/root/repo/target/debug/deps/ddos_stats-8a86cbbdeef0aacf.d: crates/ddos-stats/src/lib.rs crates/ddos-stats/src/descriptive.rs crates/ddos-stats/src/dist.rs crates/ddos-stats/src/ecdf.rs crates/ddos-stats/src/fit.rs crates/ddos-stats/src/histogram.rs crates/ddos-stats/src/rng.rs crates/ddos-stats/src/similarity.rs crates/ddos-stats/src/timeseries/mod.rs crates/ddos-stats/src/timeseries/acf.rs crates/ddos-stats/src/timeseries/arima.rs crates/ddos-stats/src/timeseries/diagnostics.rs crates/ddos-stats/src/timeseries/diff.rs crates/ddos-stats/src/timeseries/forecast.rs crates/ddos-stats/src/timeseries/optimize.rs Cargo.toml

/root/repo/target/debug/deps/libddos_stats-8a86cbbdeef0aacf.rmeta: crates/ddos-stats/src/lib.rs crates/ddos-stats/src/descriptive.rs crates/ddos-stats/src/dist.rs crates/ddos-stats/src/ecdf.rs crates/ddos-stats/src/fit.rs crates/ddos-stats/src/histogram.rs crates/ddos-stats/src/rng.rs crates/ddos-stats/src/similarity.rs crates/ddos-stats/src/timeseries/mod.rs crates/ddos-stats/src/timeseries/acf.rs crates/ddos-stats/src/timeseries/arima.rs crates/ddos-stats/src/timeseries/diagnostics.rs crates/ddos-stats/src/timeseries/diff.rs crates/ddos-stats/src/timeseries/forecast.rs crates/ddos-stats/src/timeseries/optimize.rs Cargo.toml

crates/ddos-stats/src/lib.rs:
crates/ddos-stats/src/descriptive.rs:
crates/ddos-stats/src/dist.rs:
crates/ddos-stats/src/ecdf.rs:
crates/ddos-stats/src/fit.rs:
crates/ddos-stats/src/histogram.rs:
crates/ddos-stats/src/rng.rs:
crates/ddos-stats/src/similarity.rs:
crates/ddos-stats/src/timeseries/mod.rs:
crates/ddos-stats/src/timeseries/acf.rs:
crates/ddos-stats/src/timeseries/arima.rs:
crates/ddos-stats/src/timeseries/diagnostics.rs:
crates/ddos-stats/src/timeseries/diff.rs:
crates/ddos-stats/src/timeseries/forecast.rs:
crates/ddos-stats/src/timeseries/optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
