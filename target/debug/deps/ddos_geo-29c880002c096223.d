/root/repo/target/debug/deps/ddos_geo-29c880002c096223.d: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs

/root/repo/target/debug/deps/libddos_geo-29c880002c096223.rlib: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs

/root/repo/target/debug/deps/libddos_geo-29c880002c096223.rmeta: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs

crates/ddos-geo/src/lib.rs:
crates/ddos-geo/src/center.rs:
crates/ddos-geo/src/country.rs:
crates/ddos-geo/src/geodb.rs:
crates/ddos-geo/src/haversine.rs:
crates/ddos-geo/src/reserved.rs:
crates/ddos-geo/src/rng.rs:
