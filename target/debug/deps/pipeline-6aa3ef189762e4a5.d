/root/repo/target/debug/deps/pipeline-6aa3ef189762e4a5.d: crates/core/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6aa3ef189762e4a5: crates/core/../../tests/pipeline.rs

crates/core/../../tests/pipeline.rs:
