/root/repo/target/debug/deps/tables-bac63fb07e926318.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-bac63fb07e926318.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
