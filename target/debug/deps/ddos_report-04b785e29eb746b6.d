/root/repo/target/debug/deps/ddos_report-04b785e29eb746b6.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/debug/deps/libddos_report-04b785e29eb746b6.rlib: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/debug/deps/libddos_report-04b785e29eb746b6.rmeta: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
