/root/repo/target/debug/deps/proptest-335ab45bc2d5ad29.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-335ab45bc2d5ad29.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
