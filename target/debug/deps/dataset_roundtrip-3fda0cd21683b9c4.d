/root/repo/target/debug/deps/dataset_roundtrip-3fda0cd21683b9c4.d: crates/core/../../tests/dataset_roundtrip.rs

/root/repo/target/debug/deps/dataset_roundtrip-3fda0cd21683b9c4: crates/core/../../tests/dataset_roundtrip.rs

crates/core/../../tests/dataset_roundtrip.rs:
