/root/repo/target/debug/deps/ddos_sim-7dbc20ae06b537bc.d: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/debug/deps/libddos_sim-7dbc20ae06b537bc.rlib: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/debug/deps/libddos_sim-7dbc20ae06b537bc.rmeta: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

crates/ddos-sim/src/lib.rs:
crates/ddos-sim/src/calibration.rs:
crates/ddos-sim/src/collab.rs:
crates/ddos-sim/src/config.rs:
crates/ddos-sim/src/feed.rs:
crates/ddos-sim/src/generator.rs:
crates/ddos-sim/src/profile.rs:
crates/ddos-sim/src/roster.rs:
crates/ddos-sim/src/schedule.rs:
