/root/repo/target/debug/deps/bench-01d42e1b48ef4a96.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-01d42e1b48ef4a96: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
