/root/repo/target/debug/deps/prediction-8c49c352c369a150.d: crates/bench/benches/prediction.rs Cargo.toml

/root/repo/target/debug/deps/libprediction-8c49c352c369a150.rmeta: crates/bench/benches/prediction.rs Cargo.toml

crates/bench/benches/prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
