/root/repo/target/debug/deps/ddoslab-d2742b84bd697b15.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/debug/deps/ddoslab-d2742b84bd697b15: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
