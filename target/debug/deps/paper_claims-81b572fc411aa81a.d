/root/repo/target/debug/deps/paper_claims-81b572fc411aa81a.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-81b572fc411aa81a: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
