/root/repo/target/debug/deps/ddos_report-1687ba7a960ec615.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/debug/deps/ddos_report-1687ba7a960ec615: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
