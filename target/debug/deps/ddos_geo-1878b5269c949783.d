/root/repo/target/debug/deps/ddos_geo-1878b5269c949783.d: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

/root/repo/target/debug/deps/ddos_geo-1878b5269c949783: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

crates/ddos-geo/src/lib.rs:
crates/ddos-geo/src/center.rs:
crates/ddos-geo/src/country.rs:
crates/ddos-geo/src/geodb.rs:
crates/ddos-geo/src/haversine.rs:
crates/ddos-geo/src/reserved.rs:
crates/ddos-geo/src/rng.rs:
crates/ddos-geo/src/trig.rs:
