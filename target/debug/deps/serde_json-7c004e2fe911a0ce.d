/root/repo/target/debug/deps/serde_json-7c004e2fe911a0ce.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7c004e2fe911a0ce.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7c004e2fe911a0ce.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
