/root/repo/target/debug/deps/repro-c9ad33f3bd1d9cda.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c9ad33f3bd1d9cda: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
