/root/repo/target/debug/deps/ddoslab-de767f1e064b3b50.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/debug/deps/ddoslab-de767f1e064b3b50: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
