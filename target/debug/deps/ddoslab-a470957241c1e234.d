/root/repo/target/debug/deps/ddoslab-a470957241c1e234.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/debug/deps/ddoslab-a470957241c1e234: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
