/root/repo/target/debug/deps/invariants-c7355241a6d5deb2.d: crates/core/../../tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-c7355241a6d5deb2.rmeta: crates/core/../../tests/invariants.rs Cargo.toml

crates/core/../../tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
