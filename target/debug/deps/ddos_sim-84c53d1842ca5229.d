/root/repo/target/debug/deps/ddos_sim-84c53d1842ca5229.d: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/debug/deps/ddos_sim-84c53d1842ca5229: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

crates/ddos-sim/src/lib.rs:
crates/ddos-sim/src/calibration.rs:
crates/ddos-sim/src/collab.rs:
crates/ddos-sim/src/config.rs:
crates/ddos-sim/src/feed.rs:
crates/ddos-sim/src/generator.rs:
crates/ddos-sim/src/profile.rs:
crates/ddos-sim/src/roster.rs:
crates/ddos-sim/src/schedule.rs:
