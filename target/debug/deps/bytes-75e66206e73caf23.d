/root/repo/target/debug/deps/bytes-75e66206e73caf23.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-75e66206e73caf23.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
