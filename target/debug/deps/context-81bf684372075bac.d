/root/repo/target/debug/deps/context-81bf684372075bac.d: crates/bench/benches/context.rs Cargo.toml

/root/repo/target/debug/deps/libcontext-81bf684372075bac.rmeta: crates/bench/benches/context.rs Cargo.toml

crates/bench/benches/context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
