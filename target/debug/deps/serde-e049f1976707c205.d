/root/repo/target/debug/deps/serde-e049f1976707c205.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-e049f1976707c205.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-e049f1976707c205.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/ser.rs:
