/root/repo/target/debug/deps/serde-8a0bd741617374f2.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/debug/deps/libserde-8a0bd741617374f2.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/ser.rs:
