/root/repo/target/debug/deps/ddos_sim-03da8b334c4311b0.d: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libddos_sim-03da8b334c4311b0.rmeta: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs Cargo.toml

crates/ddos-sim/src/lib.rs:
crates/ddos-sim/src/calibration.rs:
crates/ddos-sim/src/collab.rs:
crates/ddos-sim/src/config.rs:
crates/ddos-sim/src/feed.rs:
crates/ddos-sim/src/generator.rs:
crates/ddos-sim/src/profile.rs:
crates/ddos-sim/src/roster.rs:
crates/ddos-sim/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
