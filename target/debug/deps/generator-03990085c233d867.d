/root/repo/target/debug/deps/generator-03990085c233d867.d: crates/bench/benches/generator.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator-03990085c233d867.rmeta: crates/bench/benches/generator.rs Cargo.toml

crates/bench/benches/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
