/root/repo/target/debug/deps/pipeline-19b5d5c8c769c227.d: crates/core/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-19b5d5c8c769c227: crates/core/../../tests/pipeline.rs

crates/core/../../tests/pipeline.rs:
