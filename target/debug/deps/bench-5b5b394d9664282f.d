/root/repo/target/debug/deps/bench-5b5b394d9664282f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-5b5b394d9664282f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
