/root/repo/target/debug/deps/source-154a53c7c60781d9.d: crates/bench/benches/source.rs Cargo.toml

/root/repo/target/debug/deps/libsource-154a53c7c60781d9.rmeta: crates/bench/benches/source.rs Cargo.toml

crates/bench/benches/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
