/root/repo/target/debug/deps/invariants-d2fb4c0cea02bf0e.d: crates/core/../../tests/invariants.rs

/root/repo/target/debug/deps/invariants-d2fb4c0cea02bf0e: crates/core/../../tests/invariants.rs

crates/core/../../tests/invariants.rs:
