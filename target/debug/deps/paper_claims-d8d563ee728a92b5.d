/root/repo/target/debug/deps/paper_claims-d8d563ee728a92b5.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d8d563ee728a92b5: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
