/root/repo/target/debug/deps/ddos_report-2a6c9beed8a1cba6.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/debug/deps/libddos_report-2a6c9beed8a1cba6.rlib: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/debug/deps/libddos_report-2a6c9beed8a1cba6.rmeta: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
