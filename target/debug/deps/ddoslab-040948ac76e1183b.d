/root/repo/target/debug/deps/ddoslab-040948ac76e1183b.d: crates/ddos-report/src/bin/ddoslab.rs Cargo.toml

/root/repo/target/debug/deps/libddoslab-040948ac76e1183b.rmeta: crates/ddos-report/src/bin/ddoslab.rs Cargo.toml

crates/ddos-report/src/bin/ddoslab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
