/root/repo/target/debug/deps/dataset_roundtrip-ed79616c19c207bd.d: crates/core/../../tests/dataset_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_roundtrip-ed79616c19c207bd.rmeta: crates/core/../../tests/dataset_roundtrip.rs Cargo.toml

crates/core/../../tests/dataset_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
