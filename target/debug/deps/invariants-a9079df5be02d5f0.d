/root/repo/target/debug/deps/invariants-a9079df5be02d5f0.d: crates/core/../../tests/invariants.rs

/root/repo/target/debug/deps/invariants-a9079df5be02d5f0: crates/core/../../tests/invariants.rs

crates/core/../../tests/invariants.rs:
