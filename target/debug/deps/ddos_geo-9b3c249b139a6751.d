/root/repo/target/debug/deps/ddos_geo-9b3c249b139a6751.d: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs Cargo.toml

/root/repo/target/debug/deps/libddos_geo-9b3c249b139a6751.rmeta: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs Cargo.toml

crates/ddos-geo/src/lib.rs:
crates/ddos-geo/src/center.rs:
crates/ddos-geo/src/country.rs:
crates/ddos-geo/src/geodb.rs:
crates/ddos-geo/src/haversine.rs:
crates/ddos-geo/src/reserved.rs:
crates/ddos-geo/src/rng.rs:
crates/ddos-geo/src/trig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
