/root/repo/target/debug/deps/ddoslab-ce5aa05ffb6fecdb.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/debug/deps/ddoslab-ce5aa05ffb6fecdb: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
