/root/repo/target/debug/deps/intervals-7edfbab06372201d.d: crates/bench/benches/intervals.rs Cargo.toml

/root/repo/target/debug/deps/libintervals-7edfbab06372201d.rmeta: crates/bench/benches/intervals.rs Cargo.toml

crates/bench/benches/intervals.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
