/root/repo/target/debug/deps/ddos_schema-9f80d6b2fd837058.d: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libddos_schema-9f80d6b2fd837058.rmeta: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs Cargo.toml

crates/ddos-schema/src/lib.rs:
crates/ddos-schema/src/codec.rs:
crates/ddos-schema/src/csv.rs:
crates/ddos-schema/src/dataset.rs:
crates/ddos-schema/src/error.rs:
crates/ddos-schema/src/family.rs:
crates/ddos-schema/src/geo.rs:
crates/ddos-schema/src/ids.rs:
crates/ddos-schema/src/ip.rs:
crates/ddos-schema/src/protocol.rs:
crates/ddos-schema/src/record.rs:
crates/ddos-schema/src/snapshot.rs:
crates/ddos-schema/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
