/root/repo/target/debug/deps/bench-a423ce8b0b1b3f6b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a423ce8b0b1b3f6b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a423ce8b0b1b3f6b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
