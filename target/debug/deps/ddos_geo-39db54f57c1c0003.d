/root/repo/target/debug/deps/ddos_geo-39db54f57c1c0003.d: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

/root/repo/target/debug/deps/libddos_geo-39db54f57c1c0003.rlib: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

/root/repo/target/debug/deps/libddos_geo-39db54f57c1c0003.rmeta: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

crates/ddos-geo/src/lib.rs:
crates/ddos-geo/src/center.rs:
crates/ddos-geo/src/country.rs:
crates/ddos-geo/src/geodb.rs:
crates/ddos-geo/src/haversine.rs:
crates/ddos-geo/src/reserved.rs:
crates/ddos-geo/src/rng.rs:
crates/ddos-geo/src/trig.rs:
