/root/repo/target/debug/deps/ddos_report-82b48258d91de7c1.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libddos_report-82b48258d91de7c1.rmeta: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs Cargo.toml

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
