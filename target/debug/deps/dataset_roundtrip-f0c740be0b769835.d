/root/repo/target/debug/deps/dataset_roundtrip-f0c740be0b769835.d: crates/core/../../tests/dataset_roundtrip.rs

/root/repo/target/debug/deps/dataset_roundtrip-f0c740be0b769835: crates/core/../../tests/dataset_roundtrip.rs

crates/core/../../tests/dataset_roundtrip.rs:
