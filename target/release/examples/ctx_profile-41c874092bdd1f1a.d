/root/repo/target/release/examples/ctx_profile-41c874092bdd1f1a.d: crates/bench/examples/ctx_profile.rs

/root/repo/target/release/examples/ctx_profile-41c874092bdd1f1a: crates/bench/examples/ctx_profile.rs

crates/bench/examples/ctx_profile.rs:
