/root/repo/target/release/deps/proptest-1345b076334e439e.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1345b076334e439e.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1345b076334e439e.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
