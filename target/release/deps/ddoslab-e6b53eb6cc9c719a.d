/root/repo/target/release/deps/ddoslab-e6b53eb6cc9c719a.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/release/deps/ddoslab-e6b53eb6cc9c719a: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
