/root/repo/target/release/deps/serde-aa0bcd297ef29299.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-aa0bcd297ef29299.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-aa0bcd297ef29299.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/ser.rs:
