/root/repo/target/release/deps/collaboration-638434dc08860b06.d: crates/bench/benches/collaboration.rs

/root/repo/target/release/deps/collaboration-638434dc08860b06: crates/bench/benches/collaboration.rs

crates/bench/benches/collaboration.rs:
