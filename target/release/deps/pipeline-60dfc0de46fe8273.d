/root/repo/target/release/deps/pipeline-60dfc0de46fe8273.d: crates/core/../../tests/pipeline.rs

/root/repo/target/release/deps/pipeline-60dfc0de46fe8273: crates/core/../../tests/pipeline.rs

crates/core/../../tests/pipeline.rs:
