/root/repo/target/release/deps/bench-5385f66cb4be5582.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-5385f66cb4be5582.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-5385f66cb4be5582.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
