/root/repo/target/release/deps/ddos_report-409445ef1343c905.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/release/deps/libddos_report-409445ef1343c905.rlib: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/release/deps/libddos_report-409445ef1343c905.rmeta: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
