/root/repo/target/release/deps/dataset_roundtrip-896d2cf2ef2532bf.d: crates/core/../../tests/dataset_roundtrip.rs

/root/repo/target/release/deps/dataset_roundtrip-896d2cf2ef2532bf: crates/core/../../tests/dataset_roundtrip.rs

crates/core/../../tests/dataset_roundtrip.rs:
