/root/repo/target/release/deps/intervals-8f8af01c8ab26b92.d: crates/bench/benches/intervals.rs

/root/repo/target/release/deps/intervals-8f8af01c8ab26b92: crates/bench/benches/intervals.rs

crates/bench/benches/intervals.rs:
