/root/repo/target/release/deps/serde-ac32e8a2c36a95d1.d: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-ac32e8a2c36a95d1.rlib: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

/root/repo/target/release/deps/libserde-ac32e8a2c36a95d1.rmeta: vendor/serde/src/lib.rs vendor/serde/src/de.rs vendor/serde/src/ser.rs

vendor/serde/src/lib.rs:
vendor/serde/src/de.rs:
vendor/serde/src/ser.rs:
