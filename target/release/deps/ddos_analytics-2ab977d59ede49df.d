/root/repo/target/release/deps/ddos_analytics-2ab977d59ede49df.d: crates/core/src/lib.rs crates/core/src/collab/mod.rs crates/core/src/collab/concurrent.rs crates/core/src/collab/multistage.rs crates/core/src/columnar.rs crates/core/src/context.rs crates/core/src/defense.rs crates/core/src/overview/mod.rs crates/core/src/overview/activity.rs crates/core/src/overview/daily.rs crates/core/src/overview/duration.rs crates/core/src/overview/intervals.rs crates/core/src/overview/protocols.rs crates/core/src/passes.rs crates/core/src/pipeline.rs crates/core/src/preprocess.rs crates/core/src/source/mod.rs crates/core/src/source/dispersion.rs crates/core/src/source/prediction.rs crates/core/src/source/shift.rs crates/core/src/summary.rs crates/core/src/target/mod.rs crates/core/src/target/asn.rs crates/core/src/target/country.rs crates/core/src/target/organization.rs crates/core/src/target/recurrence.rs crates/core/src/util.rs

/root/repo/target/release/deps/ddos_analytics-2ab977d59ede49df: crates/core/src/lib.rs crates/core/src/collab/mod.rs crates/core/src/collab/concurrent.rs crates/core/src/collab/multistage.rs crates/core/src/columnar.rs crates/core/src/context.rs crates/core/src/defense.rs crates/core/src/overview/mod.rs crates/core/src/overview/activity.rs crates/core/src/overview/daily.rs crates/core/src/overview/duration.rs crates/core/src/overview/intervals.rs crates/core/src/overview/protocols.rs crates/core/src/passes.rs crates/core/src/pipeline.rs crates/core/src/preprocess.rs crates/core/src/source/mod.rs crates/core/src/source/dispersion.rs crates/core/src/source/prediction.rs crates/core/src/source/shift.rs crates/core/src/summary.rs crates/core/src/target/mod.rs crates/core/src/target/asn.rs crates/core/src/target/country.rs crates/core/src/target/organization.rs crates/core/src/target/recurrence.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/collab/mod.rs:
crates/core/src/collab/concurrent.rs:
crates/core/src/collab/multistage.rs:
crates/core/src/columnar.rs:
crates/core/src/context.rs:
crates/core/src/defense.rs:
crates/core/src/overview/mod.rs:
crates/core/src/overview/activity.rs:
crates/core/src/overview/daily.rs:
crates/core/src/overview/duration.rs:
crates/core/src/overview/intervals.rs:
crates/core/src/overview/protocols.rs:
crates/core/src/passes.rs:
crates/core/src/pipeline.rs:
crates/core/src/preprocess.rs:
crates/core/src/source/mod.rs:
crates/core/src/source/dispersion.rs:
crates/core/src/source/prediction.rs:
crates/core/src/source/shift.rs:
crates/core/src/summary.rs:
crates/core/src/target/mod.rs:
crates/core/src/target/asn.rs:
crates/core/src/target/country.rs:
crates/core/src/target/organization.rs:
crates/core/src/target/recurrence.rs:
crates/core/src/util.rs:
