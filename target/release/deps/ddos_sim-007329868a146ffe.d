/root/repo/target/release/deps/ddos_sim-007329868a146ffe.d: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/release/deps/ddos_sim-007329868a146ffe: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

crates/ddos-sim/src/lib.rs:
crates/ddos-sim/src/calibration.rs:
crates/ddos-sim/src/collab.rs:
crates/ddos-sim/src/config.rs:
crates/ddos-sim/src/feed.rs:
crates/ddos-sim/src/generator.rs:
crates/ddos-sim/src/profile.rs:
crates/ddos-sim/src/roster.rs:
crates/ddos-sim/src/schedule.rs:
