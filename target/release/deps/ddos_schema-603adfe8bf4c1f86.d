/root/repo/target/release/deps/ddos_schema-603adfe8bf4c1f86.d: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

/root/repo/target/release/deps/libddos_schema-603adfe8bf4c1f86.rlib: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

/root/repo/target/release/deps/libddos_schema-603adfe8bf4c1f86.rmeta: crates/ddos-schema/src/lib.rs crates/ddos-schema/src/codec.rs crates/ddos-schema/src/csv.rs crates/ddos-schema/src/dataset.rs crates/ddos-schema/src/error.rs crates/ddos-schema/src/family.rs crates/ddos-schema/src/geo.rs crates/ddos-schema/src/ids.rs crates/ddos-schema/src/ip.rs crates/ddos-schema/src/protocol.rs crates/ddos-schema/src/record.rs crates/ddos-schema/src/snapshot.rs crates/ddos-schema/src/time.rs

crates/ddos-schema/src/lib.rs:
crates/ddos-schema/src/codec.rs:
crates/ddos-schema/src/csv.rs:
crates/ddos-schema/src/dataset.rs:
crates/ddos-schema/src/error.rs:
crates/ddos-schema/src/family.rs:
crates/ddos-schema/src/geo.rs:
crates/ddos-schema/src/ids.rs:
crates/ddos-schema/src/ip.rs:
crates/ddos-schema/src/protocol.rs:
crates/ddos-schema/src/record.rs:
crates/ddos-schema/src/snapshot.rs:
crates/ddos-schema/src/time.rs:
