/root/repo/target/release/deps/ddos_stats-ea1245f116e07a79.d: crates/ddos-stats/src/lib.rs crates/ddos-stats/src/descriptive.rs crates/ddos-stats/src/dist.rs crates/ddos-stats/src/ecdf.rs crates/ddos-stats/src/fit.rs crates/ddos-stats/src/histogram.rs crates/ddos-stats/src/rng.rs crates/ddos-stats/src/similarity.rs crates/ddos-stats/src/timeseries/mod.rs crates/ddos-stats/src/timeseries/acf.rs crates/ddos-stats/src/timeseries/arima.rs crates/ddos-stats/src/timeseries/diagnostics.rs crates/ddos-stats/src/timeseries/diff.rs crates/ddos-stats/src/timeseries/forecast.rs crates/ddos-stats/src/timeseries/optimize.rs

/root/repo/target/release/deps/ddos_stats-ea1245f116e07a79: crates/ddos-stats/src/lib.rs crates/ddos-stats/src/descriptive.rs crates/ddos-stats/src/dist.rs crates/ddos-stats/src/ecdf.rs crates/ddos-stats/src/fit.rs crates/ddos-stats/src/histogram.rs crates/ddos-stats/src/rng.rs crates/ddos-stats/src/similarity.rs crates/ddos-stats/src/timeseries/mod.rs crates/ddos-stats/src/timeseries/acf.rs crates/ddos-stats/src/timeseries/arima.rs crates/ddos-stats/src/timeseries/diagnostics.rs crates/ddos-stats/src/timeseries/diff.rs crates/ddos-stats/src/timeseries/forecast.rs crates/ddos-stats/src/timeseries/optimize.rs

crates/ddos-stats/src/lib.rs:
crates/ddos-stats/src/descriptive.rs:
crates/ddos-stats/src/dist.rs:
crates/ddos-stats/src/ecdf.rs:
crates/ddos-stats/src/fit.rs:
crates/ddos-stats/src/histogram.rs:
crates/ddos-stats/src/rng.rs:
crates/ddos-stats/src/similarity.rs:
crates/ddos-stats/src/timeseries/mod.rs:
crates/ddos-stats/src/timeseries/acf.rs:
crates/ddos-stats/src/timeseries/arima.rs:
crates/ddos-stats/src/timeseries/diagnostics.rs:
crates/ddos-stats/src/timeseries/diff.rs:
crates/ddos-stats/src/timeseries/forecast.rs:
crates/ddos-stats/src/timeseries/optimize.rs:
