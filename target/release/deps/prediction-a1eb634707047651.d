/root/repo/target/release/deps/prediction-a1eb634707047651.d: crates/bench/benches/prediction.rs

/root/repo/target/release/deps/prediction-a1eb634707047651: crates/bench/benches/prediction.rs

crates/bench/benches/prediction.rs:
