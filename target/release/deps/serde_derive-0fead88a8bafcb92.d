/root/repo/target/release/deps/serde_derive-0fead88a8bafcb92.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-0fead88a8bafcb92.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
