/root/repo/target/release/deps/parking_lot-d7b3b7825064f1f3.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d7b3b7825064f1f3.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d7b3b7825064f1f3.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
