/root/repo/target/release/deps/source-68f88ab0a2557bdb.d: crates/bench/benches/source.rs

/root/repo/target/release/deps/source-68f88ab0a2557bdb: crates/bench/benches/source.rs

crates/bench/benches/source.rs:
