/root/repo/target/release/deps/repro-2525afc0e2906ed3.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-2525afc0e2906ed3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
