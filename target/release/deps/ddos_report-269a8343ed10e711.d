/root/repo/target/release/deps/ddos_report-269a8343ed10e711.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/release/deps/ddos_report-269a8343ed10e711: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
