/root/repo/target/release/deps/pipeline_equivalence-af371feaea976838.d: crates/core/../../tests/pipeline_equivalence.rs

/root/repo/target/release/deps/pipeline_equivalence-af371feaea976838: crates/core/../../tests/pipeline_equivalence.rs

crates/core/../../tests/pipeline_equivalence.rs:
