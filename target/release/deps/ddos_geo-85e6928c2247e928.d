/root/repo/target/release/deps/ddos_geo-85e6928c2247e928.d: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

/root/repo/target/release/deps/ddos_geo-85e6928c2247e928: crates/ddos-geo/src/lib.rs crates/ddos-geo/src/center.rs crates/ddos-geo/src/country.rs crates/ddos-geo/src/geodb.rs crates/ddos-geo/src/haversine.rs crates/ddos-geo/src/reserved.rs crates/ddos-geo/src/rng.rs crates/ddos-geo/src/trig.rs

crates/ddos-geo/src/lib.rs:
crates/ddos-geo/src/center.rs:
crates/ddos-geo/src/country.rs:
crates/ddos-geo/src/geodb.rs:
crates/ddos-geo/src/haversine.rs:
crates/ddos-geo/src/reserved.rs:
crates/ddos-geo/src/rng.rs:
crates/ddos-geo/src/trig.rs:
