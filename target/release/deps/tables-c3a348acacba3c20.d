/root/repo/target/release/deps/tables-c3a348acacba3c20.d: crates/bench/benches/tables.rs

/root/repo/target/release/deps/tables-c3a348acacba3c20: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
