/root/repo/target/release/deps/invariants-b41b388cffb5d1f4.d: crates/core/../../tests/invariants.rs

/root/repo/target/release/deps/invariants-b41b388cffb5d1f4: crates/core/../../tests/invariants.rs

crates/core/../../tests/invariants.rs:
