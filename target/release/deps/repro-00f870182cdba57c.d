/root/repo/target/release/deps/repro-00f870182cdba57c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-00f870182cdba57c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
