/root/repo/target/release/deps/serde_json-ebc50bbef1541bfd.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ebc50bbef1541bfd.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ebc50bbef1541bfd.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
