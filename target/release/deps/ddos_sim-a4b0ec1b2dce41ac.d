/root/repo/target/release/deps/ddos_sim-a4b0ec1b2dce41ac.d: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/release/deps/libddos_sim-a4b0ec1b2dce41ac.rlib: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

/root/repo/target/release/deps/libddos_sim-a4b0ec1b2dce41ac.rmeta: crates/ddos-sim/src/lib.rs crates/ddos-sim/src/calibration.rs crates/ddos-sim/src/collab.rs crates/ddos-sim/src/config.rs crates/ddos-sim/src/feed.rs crates/ddos-sim/src/generator.rs crates/ddos-sim/src/profile.rs crates/ddos-sim/src/roster.rs crates/ddos-sim/src/schedule.rs

crates/ddos-sim/src/lib.rs:
crates/ddos-sim/src/calibration.rs:
crates/ddos-sim/src/collab.rs:
crates/ddos-sim/src/config.rs:
crates/ddos-sim/src/feed.rs:
crates/ddos-sim/src/generator.rs:
crates/ddos-sim/src/profile.rs:
crates/ddos-sim/src/roster.rs:
crates/ddos-sim/src/schedule.rs:
