/root/repo/target/release/deps/serde_json-381b01e8800348c2.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-381b01e8800348c2.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-381b01e8800348c2.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
