/root/repo/target/release/deps/paper_claims-414672813238199e.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-414672813238199e: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
