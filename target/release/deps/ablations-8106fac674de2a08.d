/root/repo/target/release/deps/ablations-8106fac674de2a08.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-8106fac674de2a08: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
