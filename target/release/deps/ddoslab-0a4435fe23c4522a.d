/root/repo/target/release/deps/ddoslab-0a4435fe23c4522a.d: crates/ddos-report/src/bin/ddoslab.rs

/root/repo/target/release/deps/ddoslab-0a4435fe23c4522a: crates/ddos-report/src/bin/ddoslab.rs

crates/ddos-report/src/bin/ddoslab.rs:
