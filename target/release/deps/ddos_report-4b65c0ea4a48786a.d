/root/repo/target/release/deps/ddos_report-4b65c0ea4a48786a.d: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/release/deps/libddos_report-4b65c0ea4a48786a.rlib: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

/root/repo/target/release/deps/libddos_report-4b65c0ea4a48786a.rmeta: crates/ddos-report/src/lib.rs crates/ddos-report/src/compare.rs crates/ddos-report/src/experiments.rs crates/ddos-report/src/series.rs crates/ddos-report/src/table.rs

crates/ddos-report/src/lib.rs:
crates/ddos-report/src/compare.rs:
crates/ddos-report/src/experiments.rs:
crates/ddos-report/src/series.rs:
crates/ddos-report/src/table.rs:
