/root/repo/target/release/deps/generator-f88608e64960c0af.d: crates/bench/benches/generator.rs

/root/repo/target/release/deps/generator-f88608e64960c0af: crates/bench/benches/generator.rs

crates/bench/benches/generator.rs:
