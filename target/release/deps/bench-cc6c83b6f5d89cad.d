/root/repo/target/release/deps/bench-cc6c83b6f5d89cad.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-cc6c83b6f5d89cad.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-cc6c83b6f5d89cad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
