/root/repo/target/release/deps/repro-9e1690e57d081229.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-9e1690e57d081229: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
