/root/repo/target/release/deps/context-1b0740dd9c5b6225.d: crates/bench/benches/context.rs

/root/repo/target/release/deps/context-1b0740dd9c5b6225: crates/bench/benches/context.rs

crates/bench/benches/context.rs:
