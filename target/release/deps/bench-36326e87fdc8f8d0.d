/root/repo/target/release/deps/bench-36326e87fdc8f8d0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-36326e87fdc8f8d0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
