//! Trace persistence round trip (the `DDTL` binary format and JSON).
//!
//! Generates a trace, writes it in both formats, reloads the binary, and
//! verifies the round trip — the workflow for sharing generated
//! workloads between machines.
//!
//! ```sh
//! cargo run --release --example trace_export [dir]
//! ```

use ddos_schema::codec;
use ddos_sim::{generate, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("ddos-trace")
            .display()
            .to_string()
    });
    std::fs::create_dir_all(&dir)?;

    eprintln!("generating small trace...");
    let trace = generate(&SimConfig::small());
    let ds = &trace.dataset;
    println!(
        "generated {} attacks, {} bots, {} snapshot families",
        ds.len(),
        ds.bots().len(),
        ds.snapshot_families().count()
    );

    // Binary trace.
    let bin_path = format!("{dir}/trace.ddtl");
    let bytes = codec::encode(ds);
    std::fs::write(&bin_path, &bytes)?;
    println!("wrote {} ({} KiB)", bin_path, bytes.len() / 1024);

    // JSON interchange.
    let json_path = format!("{dir}/trace.json");
    let json = codec::to_json(ds);
    std::fs::write(&json_path, &json)?;
    println!("wrote {} ({} KiB)", json_path, json.len() / 1024);
    println!(
        "binary is {:.1}x denser than JSON",
        json.len() as f64 / bytes.len() as f64
    );

    // Reload and verify.
    let reloaded = codec::decode(&std::fs::read(&bin_path)?)?;
    assert_eq!(reloaded.attacks(), ds.attacks(), "binary round trip");
    assert_eq!(reloaded.bots(), ds.bots(), "bot records round trip");
    println!(
        "binary round trip verified: {} attacks identical",
        reloaded.len()
    );

    let from_json = codec::from_json(&std::fs::read_to_string(&json_path)?)?;
    assert_eq!(from_json.attacks(), ds.attacks(), "json round trip");
    println!("json round trip verified");
    Ok(())
}
