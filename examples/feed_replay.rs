//! Feed replay: reconstruct the vendor's hourly report stream (§II-B).
//!
//! The paper's feed publishes one report per family per hour, listing
//! the bots active in the trailing 24 hours. This example rebuilds that
//! stream from a generated trace, prints a family's population curve,
//! and inspects one materialized report.
//!
//! ```sh
//! cargo run --release --example feed_replay [family]
//! ```

use ddos_schema::{Family, Seconds};
use ddos_sim::feed::ActivityLog;
use ddos_sim::{generate, SimConfig};

fn main() {
    let family: Family = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(Family::Blackenergy);

    eprintln!("generating 10% trace...");
    let trace = generate(&SimConfig {
        scale: 0.1,
        snapshots: false,
        ..SimConfig::default()
    });
    let ds = &trace.dataset;

    let log = ActivityLog::build(ds, family);
    println!("{family}: {} activity events across the window", log.len());
    if log.is_empty() {
        println!("(dormant family — no reports to replay)");
        return;
    }

    // Population curve, downsampled to one sample per day.
    let curve = log.report_population(ds);
    println!("\nhourly-report population (one sample per day):");
    let peak = curve.iter().map(|&(_, c)| c).max().unwrap_or(0);
    for (t, count) in curve.iter().step_by(24) {
        if *count == 0 {
            continue;
        }
        let bar_len = (count * 50).checked_div(peak).unwrap_or(0);
        println!("{t}  {count:>6} {}", "#".repeat(bar_len));
    }

    // Materialize the report at the family's busiest instant.
    let (busiest, population) = curve
        .iter()
        .max_by_key(|&&(_, c)| c)
        .copied()
        .expect("non-empty curve");
    let report = log.report_at(busiest);
    println!(
        "\nreport at {busiest}: {population} bots (showing 10 of {})",
        report.bots.len()
    );
    for &(ip, last_active) in report.bots.iter().take(10) {
        let age = (busiest - last_active).get() / Seconds::MINUTE.get();
        println!("  {ip:<16} last active {last_active} ({age} min before the report)");
    }
}
