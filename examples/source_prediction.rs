//! Source prediction walkthrough (§IV-A, Table IV, Figs. 12–13).
//!
//! Computes a family's geolocation dispersion series, fits an ARIMA
//! model on the first half, and prints rolling one-step predictions for
//! the held-out half next to the ground truth.
//!
//! ```sh
//! cargo run --release --example source_prediction [family] [p d q]
//! ```

use ddos_analytics::source::dispersion::FamilyDispersion;
use ddos_analytics::source::prediction::predict_family;
use ddos_analytics::util::BotIndex;
use ddos_schema::Family;
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let family: Family = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Family::Dirtjumper);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let d: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let q: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let spec = ArimaSpec::new(p, d, q);

    eprintln!("generating 20% trace...");
    let trace = generate(&SimConfig {
        scale: 0.2,
        ..SimConfig::default()
    });
    let bots = BotIndex::build(&trace.dataset);

    let dispersion = FamilyDispersion::compute(&trace.dataset, &bots, family);
    println!(
        "{family}: {} dispersion snapshots over {} active days; {:.1}% symmetric",
        dispersion.series.len(),
        dispersion.active_days,
        dispersion.symmetric_fraction() * 100.0
    );

    match predict_family(&trace.dataset, &bots, family, spec) {
        Ok(row) => {
            let e = &row.forecast.eval;
            println!("\nmodel: {spec}");
            println!(
                "cosine similarity {:.3}; prediction mean {:.1} (std {:.1}) vs truth mean {:.1} (std {:.1})",
                e.cosine, e.pred_mean, e.pred_std, e.truth_mean, e.truth_std
            );
            println!(
                "mae {:.1} km, rmse {:.1} km over {} points",
                e.mae, e.rmse, e.n
            );
            println!("\nlast 20 one-step predictions (predicted vs actual, km):");
            let f = &row.forecast;
            let n = f.predictions.len();
            for i in n.saturating_sub(20)..n {
                println!(
                    "  {:>10.1}  {:>10.1}  (err {:+.1})",
                    f.predictions[i], f.truth[i], f.errors[i]
                );
            }
        }
        Err(why) => {
            println!("\n{family} is excluded from prediction: {why:?}");
            println!("(the paper excludes Darkshell for the same reason)");
        }
    }
}
