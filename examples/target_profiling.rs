//! Target profiling (§IV-B, Table V, Fig. 14).
//!
//! Prints each family's victim-country profile and the organization-level
//! hotspots, resolving organization names against the synthetic world.
//!
//! ```sh
//! cargo run --release --example target_profiling [family]
//! ```

use ddos_analytics::target::country::{all_profiles, overall_top_countries};
use ddos_analytics::target::organization::{widest_presence, OrgAnalysis};
use ddos_schema::Family;
use ddos_sim::{generate, SimConfig};

fn main() {
    let focus: Family = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(Family::Pandora);

    eprintln!("generating 20% trace...");
    let trace = generate(&SimConfig {
        scale: 0.2,
        ..SimConfig::default()
    });
    let ds = &trace.dataset;

    println!("== Table V: country-level preferences ==");
    for profile in all_profiles(ds) {
        if profile.by_country.is_empty() {
            continue;
        }
        let top: Vec<String> = profile
            .top(5)
            .iter()
            .map(|(cc, n)| format!("{cc}={n}"))
            .collect();
        println!(
            "{:<14} {:>3} countries | {}",
            profile.family.name(),
            profile.countries,
            top.join(", ")
        );
    }

    println!("\noverall top victims:");
    for (cc, n) in overall_top_countries(ds, 5) {
        println!("  {cc}: {n}");
    }

    println!("\n== Fig. 14: {focus} organization-level hotspots ==");
    let orgs = OrgAnalysis::compute(ds, focus, None);
    for marker in orgs.markers.iter().take(12) {
        let (name, kind) = trace
            .geo
            .org(marker.org)
            .map(|o| (o.name.clone(), o.kind.label()))
            .unwrap_or_else(|| (marker.org.to_string(), "?"));
        println!(
            "  {name:<22} [{kind:<9}] at ({:>7.2}, {:>8.2}): {} attacks on {} addresses",
            marker.coords.lat, marker.coords.lon, marker.attacks, marker.targets
        );
    }
    println!(
        "{} organizations attacked by {focus} in total",
        orgs.organizations()
    );

    if let Some((family, n)) = widest_presence(ds) {
        println!("\nwidest presence: {family} with {n} organizations (paper: Dirtjumper)");
    }
}
