//! Quickstart: generate a calibrated trace and run the full analysis.
//!
//! ```sh
//! cargo run --release --example quickstart [scale]
//! ```
//!
//! `scale` defaults to `0.1` (≈5,000 attacks). Use `1.0` for the paper's
//! full 50,704-attack workload.

use ddos_analytics::prelude::*;
use ddos_sim::{generate, SimConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let config = SimConfig {
        scale,
        ..SimConfig::default()
    };

    eprintln!(
        "generating trace at scale {scale} (seed {:#x})...",
        config.seed
    );
    let t0 = std::time::Instant::now();
    let trace = generate(&config);
    eprintln!(
        "generated {} attacks / {} bots / {} botnets in {:?}",
        trace.dataset.len(),
        trace.dataset.bots().len(),
        trace.dataset.botnets().len(),
        t0.elapsed()
    );

    let t1 = std::time::Instant::now();
    let report = Analysis::new(&trace.dataset).run();
    eprintln!("analysis pipeline finished in {:?}\n", t1.elapsed());

    // The paper's headline characterization, in one screen.
    let m = report.summary.measured;
    println!("== workload (Table III) ==");
    println!(
        "attacks {} | bot IPs {} in {} countries | victims {} in {} countries",
        m.attacks, m.attackers.ips, m.attackers.countries, m.victims.ips, m.victims.countries
    );

    if let Some(d) = &report.durations {
        println!("\n== durations (Figs. 6-7) ==");
        println!(
            "mean {:.0}s, median {:.0}s, 80% under {:.0}s (~{:.1}h)",
            d.mean,
            d.median,
            d.p80,
            d.p80 / 3_600.0
        );
    }

    if let Some(stats) = &report.all_interval_stats {
        println!("\n== intervals (Fig. 3) ==");
        println!(
            "{} intervals, {:.1}% simultaneous, mean {:.0}s",
            stats.count,
            stats.concurrent_fraction * 100.0,
            stats.mean
        );
    }

    println!("\n== top victim countries (Table V) ==");
    for (cc, n) in &report.overall_targets {
        println!("  {cc}: {n}");
    }

    println!("\n== source prediction (Table IV) ==");
    for row in &report.prediction.rows {
        let e = &row.forecast.eval;
        println!(
            "  {}: cosine similarity {:.3} (mean {:.0} vs truth {:.0})",
            row.family, e.cosine, e.pred_mean, e.truth_mean
        );
    }
    for (family, why) in &report.prediction.excluded {
        println!("  {family}: excluded ({why:?})");
    }

    println!("\n== collaborations (Table VI) ==");
    println!(
        "{} qualifying pairs in {} events; {} consecutive chains",
        report.collaborations.pairs.len(),
        report.collaborations.events.len(),
        report.multistage.chains.len()
    );
    if let Some(focus) = &report.flagship_pair {
        println!(
            "dirtjumper x pandora: {} events on {} targets in {} countries",
            focus.series.len(),
            focus.unique_targets,
            focus.countries.len()
        );
    }
}
