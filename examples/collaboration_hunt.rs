//! Collaboration hunting (§V, Table VI, Figs. 15–18).
//!
//! Detects concurrent collaborations (same target, starts within 60 s,
//! durations within 30 min, different botnets) and multistage chains,
//! then prints the Table VI breakdown and the flagship
//! Dirtjumper×Pandora pairing.
//!
//! ```sh
//! cargo run --release --example collaboration_hunt
//! ```

use ddos_analytics::collab::concurrent::{CollabAnalysis, PairFocus};
use ddos_analytics::collab::multistage::MultistageAnalysis;
use ddos_schema::Family;
use ddos_sim::{generate, SimConfig};

fn main() {
    eprintln!("generating 20% trace...");
    let trace = generate(&SimConfig {
        scale: 0.2,
        ..SimConfig::default()
    });
    let ds = &trace.dataset;

    let collab = CollabAnalysis::compute(ds);
    println!("== concurrent collaborations (Table VI) ==");
    println!(
        "{} qualifying pairs clustered into {} events\n",
        collab.pairs.len(),
        collab.events.len()
    );
    println!(
        "{:<14} {:>12} {:>12}",
        "family", "intra pairs", "inter pairs"
    );
    for family in Family::ACTIVE {
        let intra = collab.intra_pairs.get(&family).copied().unwrap_or(0);
        let inter = collab.inter_pairs.get(&family).copied().unwrap_or(0);
        if intra + inter > 0 {
            println!("{:<14} {intra:>12} {inter:>12}", family.name());
        }
    }
    if let Some(avg) = collab.mean_botnets_per_event(Family::Dirtjumper) {
        println!("\ndirtjumper: {avg:.2} botnets per event on average (paper 2.19)");
    }

    if let Some(focus) = PairFocus::compute(ds, &collab, Family::Dirtjumper, Family::Pandora) {
        println!("\n== dirtjumper x pandora (Fig. 16) ==");
        println!(
            "{} events | {} unique targets | {} countries | {} orgs | {} ASes",
            focus.series.len(),
            focus.unique_targets,
            focus.countries.len(),
            focus.organizations,
            focus.asns
        );
        println!(
            "mean durations: dirtjumper {:.0}s, pandora {:.0}s (paper: 5083s / 6420s)",
            focus.mean_duration_a, focus.mean_duration_b
        );
    }

    let chains = MultistageAnalysis::compute(ds);
    println!("\n== multistage chains (§V-B) ==");
    println!(
        "{} chains over {} chained attacks; families: {:?}",
        chains.chains.len(),
        chains.chains.iter().map(|c| c.len()).sum::<usize>(),
        chains
            .chain_families()
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
    );
    if let Some(longest) = chains.longest() {
        println!(
            "longest chain: {} links by {} against {}",
            longest.len(),
            longest.families[0],
            longest.target
        );
    }
    if let Some(cdf) = chains.gap_cdf() {
        println!(
            "gaps: {:.0}% within 10s, {:.0}% within 30s (paper ~65% / ~80%)",
            cdf.eval(10.0) * 100.0,
            cdf.eval(30.0) * 100.0
        );
    }
}
