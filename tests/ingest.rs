//! Ingest conformance suite for the framed v2 trace format.
//!
//! Two guarantees, over arbitrary traces:
//!
//! * **Bit identity** — the framed v2 container (serial, forced
//!   multi-worker, any frame length, memory-mapped from disk) decodes
//!   to exactly the dataset the v1 serial codec decodes to, proven by
//!   re-encoding both through the v1 codec and comparing bytes.
//! * **No panics on corrupt input** — flipped payload bytes, truncated
//!   directories, and overlapping frame offsets are reported as
//!   `Err(SchemaError)`, never a panic or a silently wrong dataset.

use std::sync::OnceLock;

use ddos_schema::{codec, csv, framed, Dataset, SchemaError};
use ddos_sim::{generate, SimConfig};
use proptest::prelude::*;

/// The canonical fingerprint: identical v1 encodings mean identical
/// records in identical order.
fn fingerprint(ds: &Dataset) -> bytes::Bytes {
    codec::encode(ds)
}

proptest! {
    // Trace generation dominates the cost; a handful of configurations
    // across seeds, scales, and injection toggles exercises every
    // section shape (empty snapshot series included).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn framed_decode_is_bit_identical_to_v1(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.006,
        snapshots in any::<bool>(),
        spike in any::<bool>(),
        collaborations in any::<bool>(),
        chains in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots,
            spike,
            collaborations,
            chains,
            ..SimConfig::small()
        };
        let ds = generate(&cfg).dataset;
        let want = fingerprint(&ds);
        prop_assert_eq!(&fingerprint(&codec::decode(&want).unwrap()), &want);

        // Frame length 1 maximizes frame count (every cross-frame seam
        // exercised); a larger-than-section length collapses each
        // section to a single frame.
        for frame_len in [1, framed::DEFAULT_FRAME_LEN, usize::MAX] {
            let v2 = framed::encode_with(&ds, frame_len);
            let serial = framed::decode(&v2).unwrap();
            prop_assert_eq!(&fingerprint(&serial), &want);
            let (threaded, _) = framed::decode_with_workers(&v2, 4).unwrap();
            prop_assert_eq!(&fingerprint(&threaded), &want);
        }

        // The mmap path reads the same bytes back off disk, for both
        // container versions.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ingest_prop_{seed:x}.ddtl"));
        for encoded in [want.to_vec(), framed::encode(&ds).to_vec()] {
            std::fs::write(&path, &encoded).unwrap();
            let opened = Dataset::open(&path).unwrap();
            prop_assert_eq!(&fingerprint(&opened), &want);
        }
        let _ = std::fs::remove_file(&path);
    }
}

fn small_v2() -> bytes::Bytes {
    static CLEAN: OnceLock<bytes::Bytes> = OnceLock::new();
    CLEAN
        .get_or_init(|| {
            let ds = generate(&SimConfig::small()).dataset;
            framed::encode(&ds)
        })
        .clone()
}

/// Payload byte offset of the first frame, read from the directory the
/// same way the decoder does (header, then frame count and payload
/// length varints, then `n` directory entries).
fn payload_start(bytes: &[u8]) -> usize {
    fn varint(bytes: &[u8], pos: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = bytes[*pos];
            *pos += 1;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
    let mut pos = 4 + 2 + 16;
    let n_frames = varint(bytes, &mut pos);
    let _payload_len = varint(bytes, &mut pos);
    for _ in 0..n_frames {
        pos += 2; // kind, family
        varint(bytes, &mut pos);
        varint(bytes, &mut pos);
        varint(bytes, &mut pos);
        pos += 8; // checksum
    }
    pos
}

#[test]
fn corrupt_payload_bytes_error_never_panic() {
    let clean = small_v2();
    let start = payload_start(&clean);
    // Flipping any payload byte must trip exactly one frame checksum.
    for i in (start..clean.len()).step_by(211) {
        let mut bad = clean.to_vec();
        bad[i] ^= 0x40;
        let err = framed::decode(&bad).expect_err("corrupt payload accepted");
        assert!(
            err.to_string().contains("checksum mismatch"),
            "byte {i}: unexpected error {err}"
        );
    }
}

#[test]
fn truncated_directory_errors_never_panic() {
    let clean = small_v2();
    let start = payload_start(&clean);
    // Every prefix that cuts the header or directory short must error.
    for len in 0..start {
        let err = framed::decode(&clean[..len]);
        assert!(err.is_err(), "prefix of {len} bytes accepted");
    }
    // Truncating the payload must error too (spot checks: whole-frame
    // and mid-frame cuts).
    for len in [start, start + 1, clean.len() - 1] {
        assert!(framed::decode(&clean[..len]).is_err());
    }
}

#[test]
fn overlapping_frame_offsets_are_rejected() {
    // Two one-record attack frames, then rewrite frame 1's offset to 0
    // so it overlaps frame 0 (compensating the payload-length varint by
    // keeping total coverage consistent is impossible — the contiguity
    // check rejects the rewind before any frame is decoded).
    let ds = generate(&SimConfig {
        scale: 0.002,
        snapshots: false,
        ..SimConfig::small()
    })
    .dataset;
    let clean = framed::encode_with(&ds, ds.attacks().len().div_ceil(2).max(1));
    // Find the second directory entry and zero its offset varint. The
    // directory layout is kind(1) family(1) count(v) offset(v) len(v)
    // checksum(8) per frame; varints here are short, so walk them.
    let mut pos = 4 + 2 + 16;
    let varint_end = |bytes: &[u8], pos: &mut usize| {
        while bytes[*pos] & 0x80 != 0 {
            *pos += 1;
        }
        *pos += 1;
    };
    let mut bad = clean.to_vec();
    varint_end(&bad, &mut pos); // frame count
    varint_end(&bad, &mut pos); // payload length
                                // Skip frame 0's entry.
    pos += 2;
    varint_end(&bad, &mut pos);
    varint_end(&bad, &mut pos);
    varint_end(&bad, &mut pos);
    pos += 8;
    // Frame 1: skip kind/family/count, then stomp the offset.
    pos += 2;
    varint_end(&bad, &mut pos);
    let offset_at = pos;
    varint_end(&bad, &mut pos);
    assert!(
        bad[offset_at] != 0,
        "frame 1 offset unexpectedly zero already"
    );
    for b in &mut bad[offset_at..pos] {
        *b = 0x80; // continuation bytes...
    }
    bad[pos - 1] = 0; // ...terminated: same varint width, value 0.
    let err = framed::decode(&bad).expect_err("overlapping offsets accepted");
    match &err {
        SchemaError::Codec(msg) => assert!(
            msg.contains("does not follow previous frame end"),
            "unexpected error {msg}"
        ),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn wrong_versions_are_cross_rejected() {
    let ds = generate(&SimConfig {
        scale: 0.002,
        snapshots: false,
        ..SimConfig::small()
    })
    .dataset;
    let v1 = codec::encode(&ds);
    let v2 = framed::encode(&ds);
    assert!(matches!(
        framed::decode(&v1),
        Err(SchemaError::UnsupportedVersion { found: 1, .. })
    ));
    assert!(matches!(
        codec::decode(&v2),
        Err(SchemaError::UnsupportedVersion { found: 2, .. })
    ));
    // The sniffing entry point accepts both.
    assert_eq!(&fingerprint(&codec::decode_any(&v1).unwrap()), &v1);
    assert_eq!(&fingerprint(&codec::decode_any(&v2).unwrap()), &v1);
}

// ----------------------------------------- structured container fuzzing

/// Byte ranges of the directory entries in a *clean* v2 container
/// (layout per entry: kind(1) family(1) count(v) offset(v) len(v)
/// checksum(8)), for the frame-reorder mutation below.
fn directory_entry_ranges(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let varint_end = |bytes: &[u8], pos: &mut usize| {
        while bytes[*pos] & 0x80 != 0 {
            *pos += 1;
        }
        *pos += 1;
    };
    let varint = |bytes: &[u8], pos: &mut usize| {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = bytes[*pos];
            *pos += 1;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    };
    let mut pos = 4 + 2 + 16;
    let n_frames = varint(bytes, &mut pos);
    varint_end(bytes, &mut pos); // payload length
    let mut ranges = Vec::with_capacity(n_frames as usize);
    for _ in 0..n_frames {
        let start = pos;
        pos += 2;
        varint_end(bytes, &mut pos);
        varint_end(bytes, &mut pos);
        varint_end(bytes, &mut pos);
        pos += 8;
        ranges.push(start..pos);
    }
    ranges
}

/// Swaps two directory entries (by their clean-container byte ranges)
/// inside `bad`, if both ranges survived earlier mutations in-bounds.
fn swap_directory_entries(
    bad: &mut Vec<u8>,
    ranges: &[std::ops::Range<usize>],
    i: usize,
    j: usize,
) {
    if ranges.len() < 2 {
        return;
    }
    let (i, j) = (i % ranges.len(), j % ranges.len());
    let (a, b) = (ranges[i.min(j)].clone(), ranges[i.max(j)].clone());
    if i == j || b.end > bad.len() {
        return;
    }
    let mut rebuilt = Vec::with_capacity(bad.len());
    rebuilt.extend_from_slice(&bad[..a.start]);
    rebuilt.extend_from_slice(&bad[b.clone()]);
    rebuilt.extend_from_slice(&bad[a.end..b.start]);
    rebuilt.extend_from_slice(&bad[a.clone()]);
    rebuilt.extend_from_slice(&bad[b.end..]);
    *bad = rebuilt;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structured fuzzing of the v2 directory decoder: arbitrary
    /// compositions of byte flips, length edits (truncate/extend), and
    /// frame reorders applied to a valid container must either error or
    /// decode consistently — never panic. The serial and worker decode
    /// paths must agree on accept/reject, and anything accepted must
    /// re-encode and round-trip cleanly. (The header window bytes are
    /// not checksummed, so a mutation there may legitimately decode to
    /// a *different* valid dataset — consistency, not bit-rejection, is
    /// the contract.)
    #[test]
    fn mutated_containers_error_or_round_trip_never_panic(
        mutations in prop::collection::vec(
            (0u8..3, any::<usize>(), any::<u8>()),
            1..4,
        ),
        workers in 2usize..6,
    ) {
        let clean = small_v2();
        let ranges = directory_entry_ranges(&clean);
        let mut bad = clean.to_vec();
        for (kind, pos, val) in mutations {
            match kind {
                0 => {
                    // Byte flip (always at least one bit).
                    let i = pos % bad.len();
                    bad[i] ^= val | 1;
                }
                1 => {
                    // Length edit: truncate, or extend with junk.
                    if val & 1 == 0 {
                        bad.truncate(pos % (bad.len() + 1));
                        if bad.is_empty() {
                            bad.push(val);
                        }
                    } else {
                        bad.extend(std::iter::repeat(val).take(1 + pos % 64));
                    }
                }
                _ => swap_directory_entries(&mut bad, &ranges, pos, val as usize),
            }
        }
        let serial = framed::decode(&bad);
        let threaded = framed::decode_with_workers(&bad, workers);
        prop_assert!(
            serial.is_ok() == threaded.is_ok(),
            "serial {:?} vs {} workers {:?}",
            serial.as_ref().err().map(|e| e.to_string()),
            workers,
            threaded.as_ref().err().map(|e| e.to_string())
        );
        if let (Ok(a), Ok((b, _))) = (serial, threaded) {
            prop_assert_eq!(&fingerprint(&a), &fingerprint(&b));
            // Whatever was accepted must survive its own re-encoding.
            let re = framed::encode(&a);
            let back = framed::decode(&re).expect("re-encoded container decodes");
            prop_assert_eq!(&fingerprint(&back), &fingerprint(&a));
        }
    }
}

// --------------------------------------- CSV chunked error attribution

fn small_csv() -> &'static str {
    static CSV: OnceLock<String> = OnceLock::new();
    CSV.get_or_init(|| {
        let ds = generate(&SimConfig::small()).dataset;
        csv::attacks_to_csv(ds.attacks())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Error attribution under chunking: whatever rows are corrupted and
    /// wherever the chunk boundaries fall, the chunked parser must
    /// report exactly the error the serial parser reports — the one for
    /// the earliest offending line.
    #[test]
    fn chunked_csv_reports_the_serial_first_error(
        corrupt in prop::collection::vec((any::<usize>(), 0u8..2), 0..4),
        workers in 2usize..10,
    ) {
        let lines: Vec<&str> = small_csv().lines().collect();
        let n_rows = lines.len() - 1; // minus header
        let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        let mut first_bad_line: Option<usize> = None;
        for (row, kind) in corrupt {
            let lineno = 1 + row % n_rows + 1; // 1-based, after the header
            mutated[lineno - 1] = match kind {
                0 => "not,enough,columns".to_string(),
                _ => {
                    // Break the first field (the attack id) in place.
                    let line = &lines[lineno - 1];
                    let rest = line.split_once(',').map(|(_, r)| r).unwrap_or("");
                    format!("bogus,{rest}")
                }
            };
            first_bad_line = Some(first_bad_line.map_or(lineno, |l| l.min(lineno)));
        }
        let text = mutated.join("\n");
        let serial = csv::attacks_from_csv(&text);
        let chunked = csv::attacks_from_csv_chunked_with(&text, workers);
        match first_bad_line {
            None => {
                prop_assert_eq!(
                    serial.as_ref().expect("clean csv parses serially"),
                    chunked.as_ref().expect("clean csv parses chunked")
                );
            }
            Some(lineno) => {
                let serial = serial.expect_err("corrupt csv must fail serially");
                let chunked = chunked.expect_err("corrupt csv must fail chunked");
                prop_assert!(
                    serial.to_string().contains(&format!("line {lineno}")),
                    "serial error {serial} does not name line {lineno}"
                );
                let (serial, chunked) = (serial.to_string(), chunked.to_string());
                prop_assert!(
                    serial == chunked,
                    "chunked ({workers} workers) error attribution diverged: \
                     serial `{serial}` vs chunked `{chunked}`"
                );
            }
        }
    }
}
