//! Ingest conformance suite for the framed v2 trace format.
//!
//! Two guarantees, over arbitrary traces:
//!
//! * **Bit identity** — the framed v2 container (serial, forced
//!   multi-worker, any frame length, memory-mapped from disk) decodes
//!   to exactly the dataset the v1 serial codec decodes to, proven by
//!   re-encoding both through the v1 codec and comparing bytes.
//! * **No panics on corrupt input** — flipped payload bytes, truncated
//!   directories, and overlapping frame offsets are reported as
//!   `Err(SchemaError)`, never a panic or a silently wrong dataset.

use ddos_schema::{codec, framed, Dataset, SchemaError};
use ddos_sim::{generate, SimConfig};
use proptest::prelude::*;

/// The canonical fingerprint: identical v1 encodings mean identical
/// records in identical order.
fn fingerprint(ds: &Dataset) -> bytes::Bytes {
    codec::encode(ds)
}

proptest! {
    // Trace generation dominates the cost; a handful of configurations
    // across seeds, scales, and injection toggles exercises every
    // section shape (empty snapshot series included).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn framed_decode_is_bit_identical_to_v1(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.006,
        snapshots in any::<bool>(),
        spike in any::<bool>(),
        collaborations in any::<bool>(),
        chains in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots,
            spike,
            collaborations,
            chains,
            ..SimConfig::small()
        };
        let ds = generate(&cfg).dataset;
        let want = fingerprint(&ds);
        prop_assert_eq!(&fingerprint(&codec::decode(&want).unwrap()), &want);

        // Frame length 1 maximizes frame count (every cross-frame seam
        // exercised); a larger-than-section length collapses each
        // section to a single frame.
        for frame_len in [1, framed::DEFAULT_FRAME_LEN, usize::MAX] {
            let v2 = framed::encode_with(&ds, frame_len);
            let serial = framed::decode(&v2).unwrap();
            prop_assert_eq!(&fingerprint(&serial), &want);
            let (threaded, _) = framed::decode_with_workers(&v2, 4).unwrap();
            prop_assert_eq!(&fingerprint(&threaded), &want);
        }

        // The mmap path reads the same bytes back off disk, for both
        // container versions.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ingest_prop_{seed:x}.ddtl"));
        for encoded in [want.to_vec(), framed::encode(&ds).to_vec()] {
            std::fs::write(&path, &encoded).unwrap();
            let opened = Dataset::open(&path).unwrap();
            prop_assert_eq!(&fingerprint(&opened), &want);
        }
        let _ = std::fs::remove_file(&path);
    }
}

fn small_v2() -> bytes::Bytes {
    let ds = generate(&SimConfig::small()).dataset;
    framed::encode(&ds)
}

/// Payload byte offset of the first frame, read from the directory the
/// same way the decoder does (header, then frame count and payload
/// length varints, then `n` directory entries).
fn payload_start(bytes: &[u8]) -> usize {
    fn varint(bytes: &[u8], pos: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = bytes[*pos];
            *pos += 1;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
    let mut pos = 4 + 2 + 16;
    let n_frames = varint(bytes, &mut pos);
    let _payload_len = varint(bytes, &mut pos);
    for _ in 0..n_frames {
        pos += 2; // kind, family
        varint(bytes, &mut pos);
        varint(bytes, &mut pos);
        varint(bytes, &mut pos);
        pos += 8; // checksum
    }
    pos
}

#[test]
fn corrupt_payload_bytes_error_never_panic() {
    let clean = small_v2();
    let start = payload_start(&clean);
    // Flipping any payload byte must trip exactly one frame checksum.
    for i in (start..clean.len()).step_by(211) {
        let mut bad = clean.to_vec();
        bad[i] ^= 0x40;
        let err = framed::decode(&bad).expect_err("corrupt payload accepted");
        assert!(
            err.to_string().contains("checksum mismatch"),
            "byte {i}: unexpected error {err}"
        );
    }
}

#[test]
fn truncated_directory_errors_never_panic() {
    let clean = small_v2();
    let start = payload_start(&clean);
    // Every prefix that cuts the header or directory short must error.
    for len in 0..start {
        let err = framed::decode(&clean[..len]);
        assert!(err.is_err(), "prefix of {len} bytes accepted");
    }
    // Truncating the payload must error too (spot checks: whole-frame
    // and mid-frame cuts).
    for len in [start, start + 1, clean.len() - 1] {
        assert!(framed::decode(&clean[..len]).is_err());
    }
}

#[test]
fn overlapping_frame_offsets_are_rejected() {
    // Two one-record attack frames, then rewrite frame 1's offset to 0
    // so it overlaps frame 0 (compensating the payload-length varint by
    // keeping total coverage consistent is impossible — the contiguity
    // check rejects the rewind before any frame is decoded).
    let ds = generate(&SimConfig {
        scale: 0.002,
        snapshots: false,
        ..SimConfig::small()
    })
    .dataset;
    let clean = framed::encode_with(&ds, ds.attacks().len().div_ceil(2).max(1));
    // Find the second directory entry and zero its offset varint. The
    // directory layout is kind(1) family(1) count(v) offset(v) len(v)
    // checksum(8) per frame; varints here are short, so walk them.
    let mut pos = 4 + 2 + 16;
    let varint_end = |bytes: &[u8], pos: &mut usize| {
        while bytes[*pos] & 0x80 != 0 {
            *pos += 1;
        }
        *pos += 1;
    };
    let mut bad = clean.to_vec();
    varint_end(&bad, &mut pos); // frame count
    varint_end(&bad, &mut pos); // payload length
                                // Skip frame 0's entry.
    pos += 2;
    varint_end(&bad, &mut pos);
    varint_end(&bad, &mut pos);
    varint_end(&bad, &mut pos);
    pos += 8;
    // Frame 1: skip kind/family/count, then stomp the offset.
    pos += 2;
    varint_end(&bad, &mut pos);
    let offset_at = pos;
    varint_end(&bad, &mut pos);
    assert!(
        bad[offset_at] != 0,
        "frame 1 offset unexpectedly zero already"
    );
    for b in &mut bad[offset_at..pos] {
        *b = 0x80; // continuation bytes...
    }
    bad[pos - 1] = 0; // ...terminated: same varint width, value 0.
    let err = framed::decode(&bad).expect_err("overlapping offsets accepted");
    match &err {
        SchemaError::Codec(msg) => assert!(
            msg.contains("does not follow previous frame end"),
            "unexpected error {msg}"
        ),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn wrong_versions_are_cross_rejected() {
    let ds = generate(&SimConfig {
        scale: 0.002,
        snapshots: false,
        ..SimConfig::small()
    })
    .dataset;
    let v1 = codec::encode(&ds);
    let v2 = framed::encode(&ds);
    assert!(matches!(
        framed::decode(&v1),
        Err(SchemaError::UnsupportedVersion { found: 1, .. })
    ));
    assert!(matches!(
        codec::decode(&v2),
        Err(SchemaError::UnsupportedVersion { found: 2, .. })
    ));
    // The sniffing entry point accepts both.
    assert_eq!(&fingerprint(&codec::decode_any(&v1).unwrap()), &v1);
    assert_eq!(&fingerprint(&codec::decode_any(&v2).unwrap()), &v1);
}
