//! Invariant checks: every structured result the analyses report must
//! internally satisfy the rules it claims to implement, on a full
//! generated trace and on adversarial hand-built datasets.

use ddos_analytics::collab::concurrent::{CollabAnalysis, DURATION_WINDOW_S, START_WINDOW_S};
use ddos_analytics::collab::multistage::{MultistageAnalysis, CHAIN_MARGIN_S};
use ddos_analytics::defense::BlacklistSim;
use ddos_analytics::overview::daily::DailyDistribution;
use ddos_analytics::target::recurrence::{RecurrenceAnalysis, MIN_TRAIN_LEN};
use ddos_analytics::util::BotIndex;
use ddos_geo::distance_km;
use ddos_schema::Family;
// The canonical small trace is generated once per process by the
// testkit and shared with every other suite that analyzes it.
use ddos_testkit::small_dataset as ds;

#[test]
fn every_collab_pair_satisfies_the_rule() {
    let c = CollabAnalysis::compute(ds());
    let attacks = ds().attacks();
    assert!(!c.pairs.is_empty());
    for p in &c.pairs {
        let (a, b) = (&attacks[p.a], &attacks[p.b]);
        assert_eq!(a.target_ip, b.target_ip, "pair on different targets");
        assert!(
            (b.start - a.start).get().abs() <= START_WINDOW_S,
            "start window violated"
        );
        assert!(
            (a.duration().get() - b.duration().get()).abs() <= DURATION_WINDOW_S,
            "duration window violated"
        );
        assert_ne!(a.botnet, b.botnet, "same botnet cannot collaborate");
    }
}

#[test]
fn collab_events_partition_their_members() {
    let c = CollabAnalysis::compute(ds());
    let mut seen = std::collections::HashSet::new();
    for e in &c.events {
        assert!(e.attacks.len() >= 2);
        assert!(e.botnets >= 2);
        for &i in &e.attacks {
            assert!(seen.insert(i), "attack {i} in two events");
        }
    }
    // Every paired attack belongs to exactly one event.
    let members: std::collections::HashSet<usize> =
        c.pairs.iter().flat_map(|p| [p.a, p.b]).collect();
    assert_eq!(members, seen);
}

#[test]
fn every_chain_link_satisfies_the_margin() {
    let m = MultistageAnalysis::compute(ds());
    let attacks = ds().attacks();
    assert!(!m.chains.is_empty());
    let mut seen = std::collections::HashSet::new();
    for chain in &m.chains {
        assert!(chain.len() >= 2);
        for w in chain.attacks.windows(2) {
            let (a, b) = (&attacks[w[0]], &attacks[w[1]]);
            assert_eq!(a.target_ip, chain.target);
            assert_eq!(b.target_ip, chain.target);
            assert!(a.start <= b.start, "chain out of order");
            let gap = (b.start - a.end).get();
            assert!(gap.abs() <= CHAIN_MARGIN_S, "gap {gap} outside margin");
        }
        for &i in &chain.attacks {
            assert!(seen.insert(i), "attack {i} in two chains");
        }
    }
    // The reported gap sample matches the chain structure.
    let expected_gaps: usize = m.chains.iter().map(|c| c.len() - 1).sum();
    assert_eq!(m.gaps.len(), expected_gaps);
}

#[test]
fn concurrency_events_share_exact_starts() {
    let c = ddos_analytics::overview::intervals::ConcurrencyAnalysis::compute(ds());
    let attacks = ds().attacks();
    for e in c.single_family_events.iter().chain(&c.multi_family_events) {
        assert!(e.attacks.len() >= 2);
        for &i in &e.attacks {
            assert_eq!(attacks[i].start, e.start);
        }
        let mut fams: Vec<Family> = e.attacks.iter().map(|&i| attacks[i].family).collect();
        fams.sort_unstable();
        fams.dedup();
        assert_eq!(fams, e.families);
    }
}

#[test]
fn dispersion_is_bounded_by_geometry() {
    let bots = BotIndex::build(ds());
    for family in [Family::Dirtjumper, Family::Pandora] {
        for a in ds().attacks_of(family).take(300) {
            let coords = bots.coords_of(&a.sources);
            let Some(d) = ddos_geo::dispersion(&coords) else {
                continue;
            };
            assert!(d.value().is_finite());
            // |signed sum| <= n * max distance from center.
            let max_dist = coords
                .iter()
                .map(|&p| distance_km(d.center, p))
                .fold(0.0f64, f64::max);
            assert!(
                d.value() <= coords.len() as f64 * max_dist + 1e-6,
                "{} > {} * {}",
                d.value(),
                coords.len(),
                max_dist
            );
        }
    }
}

#[test]
fn daily_counts_conserve_attacks() {
    let d = DailyDistribution::compute(ds());
    let total: usize = d.counts.iter().sum();
    assert_eq!(total, ds().len(), "every attack starts inside the window");
}

#[test]
fn recurrence_trains_are_sorted_and_sized() {
    let r = RecurrenceAnalysis::compute(ds(), None);
    assert!(!r.trains.is_empty());
    for train in &r.trains {
        assert!(train.len() >= MIN_TRAIN_LEN);
        for w in train.starts.windows(2) {
            assert!(w[0] <= w[1], "train out of order");
        }
        assert!(!train.families.is_empty());
    }
    for o in &r.outcomes {
        assert!(o.abs_error_s >= 0.0);
        assert!(o.relative_error >= 0.0);
    }
}

#[test]
fn blacklist_rounds_and_coverage_are_sane() {
    let sim = BlacklistSim::run(ds());
    assert!(!sim.hits.is_empty());
    for h in &sim.hits {
        assert!((0.0..=1.0).contains(&h.coverage), "coverage {}", h.coverage);
        assert!(h.round >= 1);
    }
    // Target reuse via Zipf means warmed-up blacklists pre-block a
    // meaningful share of repeat attacks (same pools get resampled).
    let mean = sim.mean_coverage().unwrap();
    assert!(mean > 0.05, "mean blacklist coverage {mean}");
}

#[test]
fn interval_stats_are_internally_consistent() {
    for family in Family::ACTIVE {
        let ivs = ddos_analytics::overview::intervals::family_intervals(ds(), family);
        let Some(s) = ddos_analytics::overview::intervals::IntervalStats::compute(&ivs) else {
            continue;
        };
        assert_eq!(s.count, ivs.len());
        assert!(s.p80 <= s.max + 1e-9);
        let zeros = ivs.iter().filter(|&&v| v == 0).count();
        assert!((s.concurrent_fraction - zeros as f64 / ivs.len() as f64).abs() < 1e-12);
        assert!(s.mean >= 0.0);
    }
}

#[test]
fn latency_sweep_is_monotone_on_real_data() {
    let sweep = ddos_analytics::defense::detection_latency_sweep(
        ds(),
        &[0.0, 60.0, 600.0, 3_600.0, 14_400.0, 86_400.0],
    );
    assert_eq!(sweep[0].mitigable_fraction, 1.0);
    for w in sweep.windows(2) {
        assert!(w[0].mitigable_fraction >= w[1].mitigable_fraction);
        assert!(w[0].missed_attacks <= w[1].missed_attacks);
    }
    // §III-D shape: a 1-minute automatic responder mitigates almost all
    // attack time; a 4-hour manual one misses most attacks entirely.
    assert!(sweep[1].mitigable_fraction > 0.8, "{:?}", sweep[1]);
    assert!(sweep[4].missed_attacks > 0.5, "{:?}", sweep[4]);
}

#[test]
fn asn_analysis_is_consistent_with_summary() {
    let a = ddos_analytics::target::asn::AsnAnalysis::compute(ds(), None);
    let summary = ds().summary();
    assert_eq!(a.distinct_asns(), summary.victims.asns);
    let total: usize = a.pressure.iter().map(|p| p.attacks).sum();
    assert_eq!(total, ds().len());
    // Pressure is sorted descending and shares are monotone in k.
    for w in a.pressure.windows(2) {
        assert!(w[0].attacks >= w[1].attacks);
    }
    assert!(a.top_k_share(5) <= a.top_k_share(50));
    assert!(a.top_k_share(usize::MAX) > 0.999);
}

#[test]
fn activity_levels_rank_dirtjumper_first() {
    let levels = ddos_analytics::overview::activity::activity_levels(ds());
    assert_eq!(levels[0].family, Family::Dirtjumper);
    // Dirtjumper is constantly active (duty near 1.0 at any scale).
    assert!(levels[0].duty_cycle > 0.8, "{}", levels[0].duty_cycle);
    let be = levels
        .iter()
        .find(|l| l.family == Family::Blackenergy)
        .unwrap();
    assert!(be.duty_cycle < levels[0].duty_cycle);
}
