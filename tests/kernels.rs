//! Kernel-equivalence property suite (DESIGN.md §12).
//!
//! PR 7's chunked pass kernels promise byte-identical reports to the
//! reference (PR 6) pass bodies for *any* chunking. The golden-report
//! suite pins that on the canonical trace; this suite extends it to
//! arbitrary simulated traces and adversarial chunk sizes — size 1
//! (every element its own chunk), a size that never divides the input
//! evenly, and a size larger than any input (one chunk, exercising the
//! single-partial merge path).
//!
//! Equivalence is asserted on serialized report bytes, so it covers
//! every kernel at once — the snapshot scans (dispersion, weekly
//! shifts), the sort-sweep collaboration detector, the overview
//! histogram merges, the dense country rankings, and the fused
//! blacklist replay — including each one's f64 ordering contract.

use ddos_analytics::collab::concurrent::CollabAnalysis;
use ddos_analytics::{Analysis, AnalysisContext, KernelPolicy};
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;
use proptest::prelude::*;

fn report_json(ds: &ddos_schema::Dataset, kernels: KernelPolicy, parallel: bool) -> String {
    let report = Analysis::new(ds)
        .kernels(kernels)
        .parallel(parallel)
        .telemetry(false)
        .run();
    serde_json::to_string(&report).expect("report serializes")
}

proptest! {
    // Trace generation and six full pipeline runs per case dominate the
    // cost; a handful of configurations across seeds, scales, and
    // injection toggles covers the kernels' merge paths (the unit tests
    // in each module already sweep chunk sizes on crafted fixtures).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every kernel policy — reference, auto, and forced chunk sizes
    /// including 1 and one larger than the trace — produces the same
    /// report bytes, serial and parallel.
    #[test]
    fn chunked_kernels_match_reference_bytes_for_any_config(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.01,
        spike in any::<bool>(),
        collaborations in any::<bool>(),
        chains in any::<bool>(),
        chunk in 1usize..64,
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots: false,
            spike,
            collaborations,
            chains,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        let ds = &trace.dataset;
        let want = report_json(ds, KernelPolicy::Reference, true);
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Chunked(chunk),
            KernelPolicy::Chunked(1),
            // Larger than any input slice: one chunk per kernel, so the
            // partial-merge path degenerates to a single partial.
            KernelPolicy::Chunked(ds.len() + ds.bots().len() + 1),
        ] {
            let got = report_json(ds, policy, true);
            prop_assert!(got == want, "{policy:?} parallel diverged from the reference bytes");
        }
        // Serial scheduling must not interact with chunking either.
        prop_assert_eq!(&report_json(ds, KernelPolicy::Chunked(chunk), false), &want);
    }

    /// The sort-sweep concurrent-attack detector reproduces the
    /// pairwise reference scan exactly on arbitrary traces (the unit
    /// suite pins crafted chain/window fixtures; this covers simulated
    /// collaboration injection).
    #[test]
    fn sweep_matches_pairwise_on_arbitrary_traces(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.01,
        collaborations in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots: false,
            collaborations,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        let ctx = AnalysisContext::build(&trace.dataset, ArimaSpec::DEFAULT);
        let sweep = CollabAnalysis::compute_ctx(&ctx);
        let pairwise = CollabAnalysis::compute_ctx_reference(&ctx);
        prop_assert_eq!(
            serde_json::to_string(&sweep).expect("collab serializes"),
            serde_json::to_string(&pairwise).expect("collab serializes")
        );
    }
}
