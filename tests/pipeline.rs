//! End-to-end integration: generate a trace with `ddos-sim`, run the
//! full `ddos-analytics` pipeline, and check structural soundness.

use std::sync::OnceLock;

use ddos_analytics::AnalysisReport;
use ddos_schema::{Family, Protocol};
use ddos_sim::{generate, GeneratedTrace, SimConfig};

fn trace() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&SimConfig::small()))
}

fn report() -> &'static AnalysisReport {
    static REPORT: OnceLock<AnalysisReport> = OnceLock::new();
    REPORT.get_or_init(|| AnalysisReport::run(&trace().dataset))
}

#[test]
fn trace_volume_scales() {
    let ds = &trace().dataset;
    // 5% of 50,704, modulo per-cell rounding and injection trimming.
    assert!((2_200..=2_700).contains(&ds.len()), "attacks {}", ds.len());
    assert!(!ds.bots().is_empty());
    assert!(!ds.botnets().is_empty());
}

#[test]
fn every_section_of_the_report_is_populated() {
    let r = report();
    assert!(!r.protocols.counts.is_empty());
    assert!(!r.protocol_rows.is_empty());
    assert!(r.durations.is_some());
    assert!(r.all_interval_stats.is_some());
    assert!(!r.daily.counts.is_empty());
    assert!(!r.shifts.weeks.is_empty());
    assert!(!r.dispersion.is_empty());
    assert!(!r.target_countries.is_empty());
    assert!(!r.overall_targets.is_empty());
    assert!(!r.collaborations.pairs.is_empty());
    assert!(!r.multistage.chains.is_empty());
}

#[test]
fn protocol_rows_sum_to_attack_total() {
    let r = report();
    let total: usize = r.protocol_rows.iter().map(|row| row.attacks).sum();
    assert_eq!(total, trace().dataset.len());
}

#[test]
fn interval_stats_cover_families_with_attacks() {
    let r = report();
    for &(family, stats) in &r.interval_stats {
        let n = trace().dataset.attacks_of(family).count();
        assert_eq!(stats.is_some(), n >= 2, "{family}: {n} attacks");
        if let Some(s) = stats {
            assert!(s.mean >= 0.0);
            assert!(s.concurrent_fraction <= 1.0);
        }
    }
}

#[test]
fn dispersion_series_lengths_match_attack_counts() {
    let r = report();
    for fd in &r.dispersion {
        let attacks = trace().dataset.attacks_of(fd.family).count();
        assert!(fd.series.len() <= attacks);
        assert!(!fd.series.is_empty());
        // Dispersion values are finite and non-negative.
        for &(_, v) in &fd.series {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}

#[test]
fn generation_and_analysis_are_deterministic() {
    let a = generate(&SimConfig::small());
    let b = generate(&SimConfig::small());
    assert_eq!(a.dataset.attacks(), b.dataset.attacks());
    let ra = AnalysisReport::run(&a.dataset);
    let rb = AnalysisReport::run(&b.dataset);
    assert_eq!(ra.summary.measured, rb.summary.measured);
    assert_eq!(ra.collaborations.pairs.len(), rb.collaborations.pairs.len());
    assert_eq!(ra.multistage.chains.len(), rb.multistage.chains.len());
}

#[test]
fn http_dominates_like_table_ii() {
    let r = report();
    assert_eq!(r.protocols.dominant(), Some(Protocol::Http));
    // Table II: HTTP is ~94% of attacks; connection-oriented ≈ 95.6%.
    assert!(r.protocols.connection_oriented_fraction() > 0.85);
}

#[test]
fn dirtjumper_is_the_most_aggressive_family() {
    let ds = &trace().dataset;
    let dj = ds.attacks_of(Family::Dirtjumper).count();
    for f in Family::ACTIVE {
        if f != Family::Dirtjumper {
            assert!(dj > ds.attacks_of(f).count(), "{f} out-attacked Dirtjumper");
        }
    }
}

#[test]
fn snapshots_cover_active_families_and_validate() {
    let ds = &trace().dataset;
    for family in [Family::Dirtjumper, Family::Pandora] {
        let series = ds.snapshots(family).expect("active family has snapshots");
        assert!(series.len() > 10);
        for snap in series {
            snap.validate().unwrap();
        }
    }
}

#[test]
fn bot_records_are_consistent() {
    let ds = &trace().dataset;
    for bot in ds.bots() {
        bot.validate().unwrap();
        assert!(bot.first_seen <= bot.last_seen);
    }
}
