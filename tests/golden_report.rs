//! Golden-report conformance suite.
//!
//! `tests/golden/report_small.digest` pins the FNV-1a 64 digest of the
//! canonical small-trace report (`SimConfig::small`, the same trace the
//! rest of the integration suite analyzes). The variant enumeration —
//! schedulers, kernel policies, context builds (batch fold, incremental
//! append, streaming feed replay), ingest round-trips, and the
//! pre-refactor monolithic baseline — lives in `ddos_testkit::matrix`;
//! this suite pins every cell of it, plus the variants the lattice
//! cannot express (telemetry off, a pre-built context handed straight
//! to the scheduler), to the committed digest byte for byte.
//!
//! If a change *intends* to alter report output, regenerate the file:
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- --report-digest \
//!     > tests/golden/report_small.digest
//! ```
//!
//! The property tests below extend the guarantee off the golden trace:
//! on arbitrary sim configurations, recording telemetry never perturbs
//! report bytes.

use ddos_analytics::{Analysis, AnalysisContext, AnalysisReport};
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;
use ddos_testkit::{
    assert_cells_match_golden, golden_digest, matrix, report_digest, small_dataset,
};
use proptest::prelude::*;

#[test]
fn every_pipeline_variant_matches_the_golden_digest() {
    assert_cells_match_golden(small_dataset(), &matrix(), &golden_digest());
}

/// The variants the lattice cannot express: telemetry switched off, and
/// a context built outside the pipeline then handed to the scheduler
/// (columnar serial build under the parallel schedule, reference build
/// under the serial one).
#[test]
fn off_lattice_variants_match_the_golden_digest() {
    let ds = small_dataset();
    let columnar_serial = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
    let reference = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
    let variants: Vec<(&str, AnalysisReport)> = vec![
        (
            "parallel, telemetry off",
            Analysis::new(ds).telemetry(false).run(),
        ),
        (
            "scheduler over columnar serial context",
            Analysis::over(&columnar_serial).parallel(true).run(),
        ),
        (
            "scheduler over reference-built context",
            Analysis::over(&reference).parallel(false).run(),
        ),
    ];
    let want = golden_digest();
    for (name, report) in &variants {
        assert_eq!(
            report_digest(report),
            want,
            "pipeline variant `{name}` diverged from the golden report \
             digest; if the report change is intentional, regenerate with \
             `repro --report-digest`"
        );
    }
}

#[test]
fn golden_digest_file_is_well_formed() {
    let d = golden_digest();
    assert!(
        d.starts_with("fnv1a64:") && d.len() == "fnv1a64:".len() + 16,
        "digest file malformed: {d:?}"
    );
}

proptest! {
    // Trace generation dominates the cost; a handful of configurations
    // across seeds, scales, and injection toggles is plenty to catch a
    // telemetry path that leaks into report bytes.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn telemetry_never_perturbs_report_bytes(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.01,
        spike in any::<bool>(),
        collaborations in any::<bool>(),
        chains in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots: false,
            spike,
            collaborations,
            chains,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        let ds = &trace.dataset;
        let on = Analysis::new(ds).run();
        let off = Analysis::new(ds).telemetry(false).run();
        let off_serial = Analysis::new(ds).telemetry(false).parallel(false).run();
        let json = |r: &AnalysisReport| serde_json::to_string(r).expect("report serializes");
        prop_assert_eq!(json(&on), json(&off));
        prop_assert_eq!(json(&on), json(&off_serial));
        // The artifact itself differs exactly as documented: recording
        // runs populate it, quiet runs leave it empty.
        prop_assert!(!on.telemetry.spans.is_empty());
        prop_assert!(off.telemetry.is_empty());
        prop_assert!(off_serial.telemetry.is_empty());
    }
}
