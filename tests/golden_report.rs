//! Golden-report conformance suite.
//!
//! `tests/golden/report_small.digest` pins the FNV-1a 64 digest of the
//! canonical small-trace report (`SimConfig::small`, the same trace the
//! rest of the integration suite analyzes). One table-driven test runs
//! the pipeline every way it can be run — parallel, serial, telemetry
//! off, the pass scheduler over a columnar or reference-built context,
//! the pre-refactor monolithic baseline, a framed-v2 round-tripped
//! copy of the trace, every kernel policy (the PR 6
//! reference bodies, intra-pass parallelism forced on via fixed chunk
//! sizes), and the epoch-sharded engine
//! (batch fold, incremental append, streaming feed replay) — and asserts each variant's
//! serialized report matches the committed digest byte for byte.
//!
//! If a change *intends* to alter report output, regenerate the file:
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- --report-digest \
//!     > tests/golden/report_small.digest
//! ```
//!
//! The property tests below extend the guarantee off the golden trace:
//! on arbitrary sim configurations, recording telemetry never perturbs
//! report bytes.

use std::sync::OnceLock;

use ddos_analytics::{AnalysisContext, AnalysisReport, KernelPolicy, PipelineOptions, StreamFold};
use ddos_obs::{fnv1a_64_hex, Obs};
use ddos_schema::{framed, Seconds};
use ddos_sim::{generate, GeneratedTrace, SimConfig};
use ddos_stats::ArimaSpec;
use proptest::prelude::*;

fn trace() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&SimConfig::small()))
}

fn digest(report: &AnalysisReport) -> String {
    let json = serde_json::to_string(report).expect("report serializes");
    fnv1a_64_hex(json.as_bytes())
}

fn golden_digest() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/report_small.digest"
    );
    std::fs::read_to_string(path)
        .expect("reading tests/golden/report_small.digest")
        .trim()
        .to_string()
}

#[test]
fn every_pipeline_variant_matches_the_golden_digest() {
    let ds = &trace().dataset;
    let serial_opts = PipelineOptions {
        parallel: false,
        ..PipelineOptions::default()
    };
    let quiet_opts = PipelineOptions {
        telemetry: false,
        ..PipelineOptions::default()
    };
    let variants: Vec<(&str, AnalysisReport)> = vec![
        (
            "parallel",
            AnalysisReport::run_opts(ds, PipelineOptions::default()),
        ),
        ("serial", AnalysisReport::run_opts(ds, serial_opts)),
        (
            "parallel, telemetry off",
            AnalysisReport::run_opts(ds, quiet_opts),
        ),
        (
            "monolithic baseline",
            AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT),
        ),
        (
            "framed v2 round-tripped dataset",
            AnalysisReport::run(
                &framed::decode(&framed::encode(ds)).expect("framed v2 round trip"),
            ),
        ),
        (
            "scheduler over columnar serial context",
            AnalysisReport::run_on(
                &AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false),
                true,
            ),
        ),
        (
            "scheduler over reference-built context",
            AnalysisReport::run_on(
                &AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT),
                false,
            ),
        ),
        (
            "reference kernel policy (PR 6 pass bodies)",
            AnalysisReport::run_opts(
                ds,
                PipelineOptions {
                    kernels: KernelPolicy::Reference,
                    ..PipelineOptions::default()
                },
            ),
        ),
        (
            "intra-pass parallelism forced on (chunk size 1)",
            AnalysisReport::run_opts(
                ds,
                PipelineOptions {
                    kernels: KernelPolicy::Chunked(1),
                    ..PipelineOptions::default()
                },
            ),
        ),
        (
            "intra-pass parallelism forced on (chunk size 3)",
            AnalysisReport::run_opts(
                ds,
                PipelineOptions {
                    kernels: KernelPolicy::Chunked(3),
                    ..PipelineOptions::default()
                },
            ),
        ),
        (
            "epoch-folded (weekly)",
            AnalysisReport::run_epochs(ds, PipelineOptions::default(), Seconds::WEEK),
        ),
        (
            "epoch-folded (odd epoch length)",
            AnalysisReport::run_epochs(ds, serial_opts, Seconds(100_000)),
        ),
        (
            "incremental (weekly)",
            AnalysisReport::run_incremental(ds, PipelineOptions::default(), Seconds::WEEK),
        ),
        ("streamed fold (weekly)", {
            let obs = Obs::disabled();
            let mut fold = StreamFold::new(ds.window());
            for batch in ddos_sim::feed::replay_epochs(ds, Seconds::WEEK) {
                fold.push(&batch, &obs);
            }
            AnalysisReport::run_on(
                &fold
                    .finish()
                    .expect("the golden trace has at least one epoch")
                    .into_context(ds, ArimaSpec::DEFAULT),
                false,
            )
        }),
    ];
    let want = golden_digest();
    for (name, report) in &variants {
        assert_eq!(
            digest(report),
            want,
            "pipeline variant `{name}` diverged from the golden report \
             digest; if the report change is intentional, regenerate with \
             `repro --report-digest`"
        );
    }
}

#[test]
fn golden_digest_file_is_well_formed() {
    let d = golden_digest();
    assert!(
        d.starts_with("fnv1a64:") && d.len() == "fnv1a64:".len() + 16,
        "digest file malformed: {d:?}"
    );
}

proptest! {
    // Trace generation dominates the cost; a handful of configurations
    // across seeds, scales, and injection toggles is plenty to catch a
    // telemetry path that leaks into report bytes.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn telemetry_never_perturbs_report_bytes(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.01,
        spike in any::<bool>(),
        collaborations in any::<bool>(),
        chains in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots: false,
            spike,
            collaborations,
            chains,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        let ds = &trace.dataset;
        let on = AnalysisReport::run_opts(ds, PipelineOptions::default());
        let off = AnalysisReport::run_opts(
            ds,
            PipelineOptions {
                telemetry: false,
                ..PipelineOptions::default()
            },
        );
        let off_serial = AnalysisReport::run_opts(
            ds,
            PipelineOptions {
                telemetry: false,
                parallel: false,
                ..PipelineOptions::default()
            },
        );
        let json = |r: &AnalysisReport| serde_json::to_string(r).expect("report serializes");
        prop_assert_eq!(json(&on), json(&off));
        prop_assert_eq!(json(&on), json(&off_serial));
        // The artifact itself differs exactly as documented: recording
        // runs populate it, quiet runs leave it empty.
        prop_assert!(!on.telemetry.spans.is_empty());
        prop_assert!(off.telemetry.is_empty());
        prop_assert!(off_serial.telemetry.is_empty());
    }
}
