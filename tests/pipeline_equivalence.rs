//! The pass-based pipeline's contract: every cell of the testkit's
//! variant matrix — schedulers, kernel policies, context builds, ingest
//! round-trips, and the pre-refactor baseline — serializes to the exact
//! same report, on simulated traces and on arbitrary small datasets.
//! Likewise for the context build underneath: the columnar parallel
//! build, the columnar serial build, and the pre-columnar reference
//! build carry bit-identical analysis inputs.
//!
//! The variant enumeration itself lives in `ddos_testkit::matrix` (one
//! definition shared with the golden suite and the soak loop); this
//! suite only owns the dataset shapes it runs the matrix against.

use ddos_analytics::AnalysisContext;
use ddos_schema::record::{AttackRecord, BotRecord, Location};
use ddos_schema::{
    Asn, BotnetId, CityId, CountryCode, Dataset, DatasetBuilder, DdosId, Family, IpAddr4, LatLon,
    OrgId, Protocol, Timestamp, Window,
};
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;
use ddos_testkit::{assert_cells_agree, matrix, small_dataset};
use proptest::prelude::*;

/// Builds the context all three ways and asserts the analysis inputs
/// (dispersion series bit-for-bit, weekly bot maps, timelines) agree.
/// Digest agreement across matrix cells checks the *outputs*; this
/// checks the intermediate inputs, so a compensating double-bug cannot
/// slip through.
fn assert_context_builds_agree(ds: &Dataset) {
    let serial = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
    let parallel = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true);
    let reference = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
    serial.assert_same_analysis(&parallel);
    serial.assert_same_analysis(&reference);
}

#[test]
fn simulated_trace_reports_are_byte_identical() {
    assert_cells_agree(small_dataset(), &matrix());
}

#[test]
fn simulated_trace_context_builds_are_bit_identical() {
    assert_context_builds_agree(small_dataset());
}

/// Paper-scale variant of the equivalence check (~50k attacks). Slow in
/// debug builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale trace; minutes in debug builds"]
fn paper_scale_reports_are_byte_identical() {
    let trace = generate(&SimConfig::default());
    assert_cells_agree(&trace.dataset, &matrix());
    assert_context_builds_agree(&trace.dataset);
}

// ------------------------------------------------------ property tests

/// Source/bot IPs live in a small space so random attacks frequently
/// reference geolocatable bots (exercising the shared geolocation join).
fn ip(last: u8) -> IpAddr4 {
    IpAddr4::from_octets(203, 0, 113, last)
}

fn arb_location() -> impl Strategy<Value = Location> {
    (
        prop::sample::select(vec!["US", "RU", "DE", "CN", "BR"]),
        0u32..50,
        0u32..50,
        1u32..5_000,
        -89.0f64..89.0,
        -179.0f64..179.0,
    )
        .prop_map(|(cc, city, org, asn, lat, lon)| Location {
            country: cc.parse::<CountryCode>().unwrap(),
            city: CityId(city),
            org: OrgId(org),
            asn: Asn(asn),
            coords: LatLon::new(lat, lon).unwrap(),
        })
}

fn arb_attack(id: u64) -> impl Strategy<Value = AttackRecord> {
    (
        0u32..6,
        prop::sample::select(Family::ACTIVE.to_vec()),
        prop::sample::select(Protocol::ALL.to_vec()),
        0u8..8,
        arb_location(),
        0i64..800_000,
        0i64..50_000,
        prop::collection::vec(any::<u8>(), 1..12),
    )
        .prop_map(
            move |(botnet, family, category, target, loc, start, dur, sources)| AttackRecord {
                id: DdosId(id),
                botnet: BotnetId(botnet),
                family,
                category,
                target_ip: ip(target),
                target: loc,
                start: Timestamp(start),
                end: Timestamp(start + dur),
                sources: sources.into_iter().map(ip).collect(),
            },
        )
}

fn arb_bot(last: u8) -> impl Strategy<Value = BotRecord> {
    (
        0u32..6,
        prop::sample::select(Family::ACTIVE.to_vec()),
        arb_location(),
    )
        .prop_map(move |(botnet, family, location)| BotRecord {
            ip: ip(last),
            botnet: BotnetId(botnet),
            family,
            location,
            first_seen: Timestamp(0),
            last_seen: Timestamp(1_000_000),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_datasets_report_identically(
        attacks in prop::collection::vec((0u64..u64::MAX).prop_flat_map(arb_attack), 0..30),
        bots in prop::collection::vec((0u8..64).prop_flat_map(arb_bot), 0..24),
    ) {
        let window = Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap();
        let mut builder = DatasetBuilder::new(window);
        let mut seen_bots = std::collections::HashSet::new();
        for b in bots {
            if seen_bots.insert(b.ip) {
                builder.push_bot(b).unwrap();
            }
        }
        let mut seen = std::collections::HashSet::new();
        for a in attacks {
            if seen.insert(a.id) {
                builder.push_attack(a).unwrap();
            }
        }
        let ds = builder.build().unwrap();
        assert_cells_agree(&ds, &matrix());
        assert_context_builds_agree(&ds);
    }
}
