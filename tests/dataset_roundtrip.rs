//! Persistence round-trips: the binary trace codec and JSON interchange
//! over full generated datasets, plus property tests on arbitrary
//! records.

use ddos_schema::record::{AttackRecord, Location};
use ddos_schema::{
    codec, Asn, BotnetId, CityId, CountryCode, DatasetBuilder, DdosId, Family, IpAddr4, LatLon,
    OrgId, Protocol, Timestamp, Window,
};
use ddos_sim::{generate, SimConfig};
use proptest::prelude::*;

#[test]
fn generated_trace_binary_round_trip() {
    let mut config = SimConfig::small();
    config.snapshots = true;
    let trace = generate(&config);
    let bytes = codec::encode(&trace.dataset);
    let back = codec::decode(&bytes).expect("decode own encoding");
    assert_eq!(back.attacks(), trace.dataset.attacks());
    assert_eq!(back.bots(), trace.dataset.bots());
    assert_eq!(back.botnets(), trace.dataset.botnets());
    for family in trace.dataset.snapshot_families() {
        assert_eq!(back.snapshots(family), trace.dataset.snapshots(family));
    }
}

#[test]
fn generated_trace_json_round_trip() {
    let mut config = SimConfig::small();
    config.snapshots = false; // keep the JSON manageable
    let trace = generate(&config);
    let json = codec::to_json(&trace.dataset);
    let back = codec::from_json(&json).expect("parse own JSON");
    assert_eq!(back.attacks(), trace.dataset.attacks());
    // Indexes are rebuilt on deserialization.
    assert_eq!(
        back.attacks_of(Family::Dirtjumper).count(),
        trace.dataset.attacks_of(Family::Dirtjumper).count()
    );
}

#[test]
fn binary_encoding_is_much_denser_than_json() {
    let mut config = SimConfig::small();
    config.snapshots = false;
    let trace = generate(&config);
    let bytes = codec::encode(&trace.dataset).len();
    let json = codec::to_json(&trace.dataset).len();
    assert!(
        bytes * 3 < json,
        "binary {bytes} vs json {json}: expected ≥3× denser"
    );
}

// ------------------------------------------------- promoted regressions

/// The shrunk counterexample from `dataset_roundtrip.proptest-regressions`
/// (seed `98fd6852…`), promoted to a named test so it re-runs on every
/// CI build regardless of the proptest runner's regression-file support.
/// The original failure was a single-attack dataset whose record mixes
/// extremes: zero-valued ids alongside a near-`u64::MAX` attack id,
/// a southern-hemisphere coordinate, and a full 5-source list.
#[test]
fn regression_single_extreme_record_round_trips() {
    let attack = AttackRecord {
        id: DdosId(3945675640486820723),
        botnet: BotnetId(0),
        family: Family::Aldibot,
        category: Protocol::Http,
        target_ip: IpAddr4(0),
        target: Location {
            country: "US".parse::<CountryCode>().unwrap(),
            city: CityId(0),
            org: OrgId(0),
            asn: Asn(9866),
            coords: LatLon::new(-70.51412646754858, 95.69015784959879).unwrap(),
        },
        start: Timestamp(405931),
        end: Timestamp(490838),
        sources: [
            3926682790u32,
            3594714260,
            2735647511,
            1921924798,
            4000217094,
        ]
        .into_iter()
        .map(IpAddr4)
        .collect(),
    };
    let window = Window::new(Timestamp(0), Timestamp(2_000_000)).unwrap();
    let mut builder = DatasetBuilder::new(window);
    builder.push_attack(attack).unwrap();
    let ds = builder.build().unwrap();
    let back = codec::decode(&codec::encode(&ds)).unwrap();
    assert_eq!(back.attacks(), ds.attacks());
    let back_json = codec::from_json(&codec::to_json(&ds)).unwrap();
    assert_eq!(back_json.attacks(), ds.attacks());
}

// ------------------------------------------------------ property tests

fn arb_location() -> impl Strategy<Value = Location> {
    (
        prop::sample::select(vec!["US", "RU", "DE", "CN", "BR"]),
        0u32..1_000,
        0u32..1_000,
        1u32..100_000,
        -89.0f64..89.0,
        -179.0f64..179.0,
    )
        .prop_map(|(cc, city, org, asn, lat, lon)| Location {
            country: cc.parse::<CountryCode>().unwrap(),
            city: CityId(city),
            org: OrgId(org),
            asn: Asn(asn),
            coords: LatLon::new(lat, lon).unwrap(),
        })
}

fn arb_attack(id: u64) -> impl Strategy<Value = AttackRecord> {
    (
        0usize..10,
        prop::sample::select(Family::ALL.to_vec()),
        prop::sample::select(Protocol::ALL.to_vec()),
        any::<u32>(),
        arb_location(),
        0i64..1_000_000,
        0i64..100_000,
        prop::collection::vec(any::<u32>(), 1..20),
    )
        .prop_map(
            move |(botnet, family, category, target, loc, start, dur, sources)| AttackRecord {
                id: DdosId(id),
                botnet: BotnetId(botnet as u32),
                family,
                category,
                target_ip: IpAddr4(target),
                target: loc,
                start: Timestamp(start),
                end: Timestamp(start + dur),
                sources: sources.into_iter().map(IpAddr4).collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_datasets_round_trip(
        attacks in prop::collection::vec((0u64..u64::MAX).prop_flat_map(arb_attack), 0..25)
    ) {
        let window = Window::new(Timestamp(0), Timestamp(2_000_000)).unwrap();
        let mut builder = DatasetBuilder::new(window);
        let mut seen = std::collections::HashSet::new();
        for a in attacks {
            if seen.insert(a.id) {
                builder.push_attack(a).unwrap();
            }
        }
        let ds = builder.build().unwrap();
        let back = codec::decode(&codec::encode(&ds)).unwrap();
        prop_assert_eq!(back.attacks(), ds.attacks());
        let back_json = codec::from_json(&codec::to_json(&ds)).unwrap();
        prop_assert_eq!(back_json.attacks(), ds.attacks());
    }

    #[test]
    fn decode_never_panics_on_corruption(
        mut bytes in prop::collection::vec(any::<u8>(), 0..300),
        flip in any::<u8>(),
        pos in any::<usize>(),
    ) {
        // Random bytes.
        let _ = codec::decode(&bytes);
        // A real header with corrupted tail.
        let window = Window::new(Timestamp(0), Timestamp(1_000)).unwrap();
        let ds = DatasetBuilder::new(window).build().unwrap();
        let mut valid = codec::encode(&ds).to_vec();
        if !valid.is_empty() {
            let i = pos % valid.len();
            valid[i] ^= flip;
            let _ = codec::decode(&valid);
        }
        bytes.clear();
    }
}
