//! Shape-level checks of the paper's headline claims on a generated
//! trace.
//!
//! These assertions are deliberately *bands*, not exact numbers: the
//! trace is synthetic and scaled down (20% volume here), so we verify
//! who wins, rough factors, and where crossovers fall — the same bar
//! EXPERIMENTS.md applies to the full-scale run.

use std::sync::OnceLock;

use ddos_analytics::collab::concurrent::{CollabAnalysis, PairFocus};
use ddos_analytics::collab::multistage::MultistageAnalysis;
use ddos_analytics::overview::daily::DailyDistribution;
use ddos_analytics::overview::duration::DurationAnalysis;
use ddos_analytics::overview::intervals::{self, ConcurrencyAnalysis};
use ddos_analytics::source::dispersion::FamilyDispersion;
use ddos_analytics::source::prediction::{predict_family, Exclusion};
use ddos_analytics::source::shift::ShiftAnalysis;
use ddos_analytics::target::country::{overall_top_countries, FamilyCountryProfile};
use ddos_analytics::target::organization::widest_presence;
use ddos_analytics::util::BotIndex;
use ddos_schema::{Dataset, Family};
use ddos_sim::{generate, GeneratedTrace, SimConfig};
use ddos_stats::ArimaSpec;

/// A 20%-scale trace: big enough for the statistical claims, small
/// enough for CI.
fn trace() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        generate(&SimConfig {
            scale: 0.2,
            ..SimConfig::default()
        })
    })
}

fn ds() -> &'static Dataset {
    &trace().dataset
}

fn bots() -> &'static BotIndex {
    static IDX: OnceLock<BotIndex> = OnceLock::new();
    IDX.get_or_init(|| BotIndex::build(ds()))
}

// ---------------------------------------------------------------- §III-A

#[test]
fn daily_peak_is_the_dirtjumper_spike_day() {
    let d = DailyDistribution::compute(ds());
    let (day, peak) = d.peak().unwrap();
    // §III-A: the max day is 2012-08-30 (day index 1), Dirtjumper-driven.
    assert_eq!(day, 1, "peak on day {day}");
    assert!(
        peak as f64 > 3.0 * d.mean_per_day(),
        "peak {peak} not an outlier"
    );
    let dj = DailyDistribution::compute_for(ds(), Family::Dirtjumper);
    assert_eq!(dj.peak().unwrap().0, 1);
}

#[test]
fn no_weekly_periodicity() {
    let d = DailyDistribution::compute(ds());
    // §III-A: no diurnal/weekly pattern. Lag-7 autocorrelation ≈ 0.
    let ac = d.autocorrelation(7).unwrap();
    assert!(ac.abs() < 0.35, "lag-7 autocorrelation {ac}");
}

// ---------------------------------------------------------------- §III-B

#[test]
fn majority_of_family_intervals_are_concurrent() {
    // Fig. 3: >50% of family-based intervals are simultaneous. Dirtjumper
    // dominates the pooled count.
    let mut zeros = 0usize;
    let mut total = 0usize;
    for f in Family::ACTIVE {
        let ivs = intervals::family_intervals(ds(), f);
        zeros += ivs.iter().filter(|&&v| v == 0).count();
        total += ivs.len();
    }
    let frac = zeros as f64 / total as f64;
    assert!(frac > 0.45, "concurrent interval fraction {frac}");
}

#[test]
fn floor_families_have_no_sub_minute_intervals() {
    // Fig. 5: Aldibot and Optima never strike twice within 60 s.
    for f in [Family::Aldibot, Family::Optima] {
        let ivs = intervals::family_intervals(ds(), f);
        // The scheduled attacks always respect the floor; the paper's own
        // Table VI nevertheless lists one Optima collaboration (within
        // 60 s of a partner), so a few injected exceptions are allowed.
        let below = ivs.iter().filter(|&&v| v <= 60).count();
        assert!(below <= 3, "{f} has {below} sub-minute intervals");
    }
}

#[test]
fn interval_modes_match_fig_4() {
    let ivs = intervals::family_intervals(ds(), Family::Dirtjumper);
    let bands = intervals::interval_bands(&ivs);
    // The 1–10 min, 10–60 min, and 1–6 h bands each hold a solid share
    // of the non-simultaneous intervals.
    let nonzero: usize = bands.iter().map(|&(_, n)| n).sum();
    for idx in [1, 2, 3] {
        let share = bands[idx].1 as f64 / nonzero as f64;
        assert!(share > 0.15, "band {} share {share}", bands[idx].0);
    }
}

#[test]
fn concurrency_split_single_vs_multi_family() {
    let c = ConcurrencyAnalysis::compute(ds());
    let single = c.single_family_events.len();
    let multi = c.multi_family_events.len();
    // Paper full scale: 3,692 vs 956 (ratio ≈ 3.9). At 20% scale we
    // check the ratio band and that both kinds exist.
    assert!(single > 0 && multi > 0);
    let ratio = single as f64 / multi as f64;
    assert!((2.0..=8.0).contains(&ratio), "ratio {ratio}");
    // Seven of the ten families exhibit single-family simultaneity.
    let fams = c.families_with_simultaneous();
    assert!((6..=8).contains(&fams.len()), "{} families", fams.len());
    assert!(!fams.contains(&Family::Aldibot));
    assert!(!fams.contains(&Family::Optima));
}

#[test]
fn dirtjumper_partners_dominate_multi_family_events() {
    let c = ConcurrencyAnalysis::compute(ds());
    let pairs = c.pair_counts();
    // §III-B: the two most common combinations are Dirtjumper with
    // Blackenergy and Dirtjumper with Pandora.
    assert!(pairs.len() >= 2);
    let top2: Vec<(Family, Family)> = pairs.iter().take(2).map(|&(p, _)| p).collect();
    for p in &top2 {
        assert!(
            p.0 == Family::Dirtjumper || p.1 == Family::Dirtjumper,
            "top combo {p:?} lacks Dirtjumper"
        );
    }
    let be = pairs
        .iter()
        .find(|&&((a, b), _)| (a, b) == (Family::Blackenergy, Family::Dirtjumper))
        .map(|&(_, n)| n)
        .unwrap_or(0);
    let pa = pairs
        .iter()
        .find(|&&((a, b), _)| (a, b) == (Family::Dirtjumper, Family::Pandora))
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(be > 0 && pa > 0, "be {be} pa {pa}");
}

// ---------------------------------------------------------------- §III-C

#[test]
fn durations_are_heavy_tailed_with_four_hour_p80() {
    let d = DurationAnalysis::compute(ds()).unwrap();
    // Paper: mean 10,308 s vs median 1,766 s (heavy right tail).
    assert!(
        d.mean > 2.0 * d.median,
        "mean {} median {}",
        d.mean,
        d.median
    );
    // Paper: 80% of attacks last under ~four hours (13,882 s).
    assert!(
        (4_000.0..30_000.0).contains(&d.p80),
        "p80 {} out of band",
        d.p80
    );
    // Paper (§II-D): fewer than 10% of attacks last under 60 s.
    assert!(d.fraction_under(60.0) < 0.10);
}

// ---------------------------------------------------------------- §IV-A

#[test]
fn sources_are_regionalized() {
    let s = ShiftAnalysis::compute(ds(), bots());
    let ratio = s.regionalization_ratio().unwrap();
    // Fig. 8 plots existing-country shifts on a 10^4 axis and
    // new-country shifts on 10^3: about an order of magnitude apart.
    assert!(ratio > 5.0, "regionalization ratio {ratio}");
}

#[test]
fn symmetric_fractions_match_the_paper_ordering() {
    let pandora = FamilyDispersion::compute(ds(), bots(), Family::Pandora);
    let blackenergy = FamilyDispersion::compute(ds(), bots(), Family::Blackenergy);
    let dirtjumper = FamilyDispersion::compute(ds(), bots(), Family::Dirtjumper);
    // §IV-A: 76.7% for Pandora, 89.5% for Blackenergy; Fig. 9 shows >40%
    // zeros for Dirtjumper.
    assert!(
        (0.68..=0.86).contains(&pandora.symmetric_fraction()),
        "pandora {}",
        pandora.symmetric_fraction()
    );
    assert!(
        (0.82..=0.97).contains(&blackenergy.symmetric_fraction()),
        "blackenergy {}",
        blackenergy.symmetric_fraction()
    );
    assert!(
        dirtjumper.symmetric_fraction() > 0.35,
        "dirtjumper {}",
        dirtjumper.symmetric_fraction()
    );
    assert!(blackenergy.symmetric_fraction() > pandora.symmetric_fraction());
}

#[test]
fn pandora_dispersion_is_smaller_than_blackenergy() {
    let pandora = FamilyDispersion::compute(ds(), bots(), Family::Pandora);
    let blackenergy = FamilyDispersion::compute(ds(), bots(), Family::Blackenergy);
    let pm = pandora.asymmetric_mean().unwrap();
    let bm = blackenergy.asymmetric_mean().unwrap();
    // Fig. 10 vs Fig. 11: Pandora ≈ 566 km, Blackenergy ≈ 4,304 km —
    // the regional-vs-intercontinental gap must be a clear factor.
    assert!(bm > 2.0 * pm, "pandora {pm} vs blackenergy {bm}");
}

#[test]
fn dirtjumper_prediction_is_accurate() {
    // Table IV: similarity 0.848 for Dirtjumper at full scale. At 20%
    // the series is ~6,900 values; the fitted model must stay well above
    // an uninformed baseline.
    let row = predict_family(ds(), bots(), Family::Dirtjumper, ArimaSpec::DEFAULT)
        .expect("dirtjumper qualifies");
    assert!(
        row.forecast.eval.cosine > 0.70,
        "cosine {}",
        row.forecast.eval.cosine
    );
    // Prediction and truth agree on the level.
    let e = &row.forecast.eval;
    assert!(
        (e.pred_mean - e.truth_mean).abs() / e.truth_mean < 0.25,
        "means {} vs {}",
        e.pred_mean,
        e.truth_mean
    );
}

#[test]
fn sparse_families_are_excluded_from_prediction() {
    // Darkshell: the paper drops it ("not enough data points").
    let err = predict_family(ds(), bots(), Family::Darkshell, ArimaSpec::DEFAULT).unwrap_err();
    assert!(matches!(
        err,
        Exclusion::TooFewActiveDays { .. } | Exclusion::SeriesTooShort { .. }
    ));
    // Aldibot has almost no attacks at all.
    assert!(predict_family(ds(), bots(), Family::Aldibot, ArimaSpec::DEFAULT).is_err());
}

// ---------------------------------------------------------------- §IV-B

#[test]
fn top_victim_countries_match_table_v() {
    let top = overall_top_countries(ds(), 5);
    let codes: Vec<&str> = top.iter().map(|(cc, _)| cc.as_str()).collect();
    // Paper: USA, Russia, Germany, Ukraine, Netherlands (in that order).
    assert_eq!(codes[0], "US", "top5 {codes:?}");
    assert_eq!(codes[1], "RU", "top5 {codes:?}");
    assert!(codes.contains(&"DE"), "top5 {codes:?}");
}

#[test]
fn family_favourites_match_table_v() {
    // Families whose Table V leader is far ahead must rank it first.
    for (family, fav) in [
        (Family::Dirtjumper, "US"),
        (Family::Colddeath, "IN"),
        (Family::Darkshell, "CN"),
        (Family::Nitol, "CN"),
        // Ddoser is omitted here: at 20% scale its trace is dominated by
        // the injected 22-attack chain on a single target, so the
        // favourite is decided by one draw (checked at full scale in
        // EXPERIMENTS.md instead).
        (Family::Pandora, "RU"),
    ] {
        let p = FamilyCountryProfile::compute(ds(), family);
        assert_eq!(
            p.favourite().unwrap().as_str(),
            fav,
            "{family} favourite mismatch: {:?}",
            p.top(3)
        );
    }
    // Photo-finish races in Table V (Optima RU 171 vs DE 155; YZF RU 120
    // vs UA 105; Blackenergy NL 949 vs US 820 vs SG 729): the leader must
    // land within the measured top-k of the tied group.
    for (family, fav, k) in [
        (Family::Optima, "RU", 2),
        (Family::Yzf, "RU", 2),
        (Family::Blackenergy, "NL", 3),
    ] {
        let p = FamilyCountryProfile::compute(ds(), family);
        let top: Vec<&str> = p.top(k).iter().map(|(cc, _)| cc.as_str()).collect();
        assert!(top.contains(&fav), "{family}: {fav} not in top {k} {top:?}");
    }
}

#[test]
fn dirtjumper_attacks_the_most_organizations() {
    let (f, n) = widest_presence(ds()).unwrap();
    assert_eq!(f, Family::Dirtjumper);
    assert!(n > 50, "{n} organizations");
}

// ------------------------------------------------------------------- §V

#[test]
fn collaboration_structure_matches_table_vi() {
    let c = CollabAnalysis::compute(ds());
    // Dirtjumper has the most intra-family pairs.
    let dj = *c.intra_pairs.get(&Family::Dirtjumper).unwrap_or(&0);
    assert!(dj > 0);
    for (f, &n) in &c.intra_pairs {
        if *f != Family::Dirtjumper {
            assert!(dj >= n, "{f} has more intra pairs than Dirtjumper");
        }
    }
    // Inter-family collaborations exist and involve Dirtjumper+Pandora.
    let dj_inter = *c.inter_pairs.get(&Family::Dirtjumper).unwrap_or(&0);
    let pa_inter = *c.inter_pairs.get(&Family::Pandora).unwrap_or(&0);
    assert!(dj_inter > 0 && pa_inter > 0);
    // Blackenergy starts simultaneously with Dirtjumper often (§III-B)
    // but almost never passes the duration rule (Table VI: 1).
    let be_inter = *c.inter_pairs.get(&Family::Blackenergy).unwrap_or(&0);
    assert!(
        be_inter < pa_inter / 4 + 2,
        "blackenergy {be_inter} vs pandora {pa_inter}"
    );
}

#[test]
fn flagship_pair_has_paper_like_shape() {
    let c = CollabAnalysis::compute(ds());
    let focus = PairFocus::compute(ds(), &c, Family::Dirtjumper, Family::Pandora).unwrap();
    // §V-A: 96 unique targets in 16 countries at full scale — scaled
    // down here, but plural on both axes.
    assert!(
        focus.unique_targets >= 3,
        "{} targets",
        focus.unique_targets
    );
    assert!(focus.countries.len() >= 2, "{:?}", focus.countries);
    // Pandora attacks outlast Dirtjumper's (6,420 s vs 5,083 s).
    assert!(
        focus.mean_duration_b > 0.8 * focus.mean_duration_a,
        "durations {} vs {}",
        focus.mean_duration_a,
        focus.mean_duration_b
    );
    // Magnitudes nearly equal (Fig. 16).
    let close = focus
        .series
        .iter()
        .filter(|&&(_, _, _, ma, mb)| {
            let (ma, mb) = (ma as f64, mb as f64);
            (ma - mb).abs() / ma.max(mb) < 0.5
        })
        .count();
    assert!(close * 10 >= focus.series.len() * 8, "magnitudes diverge");
}

#[test]
fn chains_are_intra_family_and_in_the_right_families() {
    let m = MultistageAnalysis::compute(ds());
    assert!(!m.chains.is_empty());
    let intra = m.chains.iter().filter(|c| c.is_intra_family()).count();
    // §V-B: "only intra-family collaborations were involved".
    assert!(
        intra * 10 >= m.chains.len() * 9,
        "{intra}/{} intra",
        m.chains.len()
    );
    // The chain families are (a subset of) the paper's four.
    let allowed = [
        Family::Darkshell,
        Family::Ddoser,
        Family::Dirtjumper,
        Family::Nitol,
    ];
    let chain_attacks: usize = m
        .chains
        .iter()
        .filter(|c| c.families.iter().all(|f| allowed.contains(f)))
        .map(|c| c.len())
        .sum();
    let total: usize = m.chains.iter().map(|c| c.len()).sum();
    assert!(
        chain_attacks * 10 >= total * 8,
        "{chain_attacks}/{total} in the four chain families"
    );
}

// ------------------------------------------------------------ extensions

#[test]
fn activity_levels_quantify_s3a() {
    let levels = ddos_analytics::overview::activity::activity_levels(ds());
    assert_eq!(levels[0].family, Family::Dirtjumper);
    let be = levels
        .iter()
        .find(|l| l.family == Family::Blackenergy)
        .unwrap();
    // §III-A: Blackenergy active ~1/3 of the period.
    assert!(
        (0.2..=0.45).contains(&be.duty_cycle),
        "blackenergy duty {}",
        be.duty_cycle
    );
}

#[test]
fn next_attack_prediction_is_usable() {
    let r = ddos_analytics::target::recurrence::RecurrenceAnalysis::compute(ds(), None);
    assert!(r.outcomes.len() > 50, "{} outcomes", r.outcomes.len());
    // Accuracy must be judged against each target's own attack cadence
    // (per-target gaps span minutes to weeks): count predictions that
    // land within half a typical gap of the true start (abstract
    // finding 2's "accurate start time prediction").
    let close = r
        .outcomes
        .iter()
        .filter(|o| o.relative_error <= 0.5)
        .count() as f64
        / r.outcomes.len() as f64;
    // Our per-target trains are Zipf-recurrent, not periodic, so the
    // median-interval predictor is only moderately accurate — the honest
    // measurement for this claim (see x2 in the repro harness).
    assert!(close > 0.2, "close-prediction fraction {close}");
}

#[test]
fn blacklist_warmup_pays_off() {
    let sim = ddos_analytics::defense::BlacklistSim::run(ds());
    let mean = sim.mean_coverage().unwrap();
    // Bot pools persist per family, so repeat attacks reuse sources.
    assert!(mean > 0.2, "mean coverage {mean}");
    // Coverage improves (or at least does not collapse) over rounds.
    let rounds = sim.coverage_by_round(5);
    assert!(rounds.len() >= 3);
    let first = rounds.first().unwrap().1;
    let last = rounds.last().unwrap().1;
    assert!(last >= first * 0.8, "coverage degraded: {first} -> {last}");
}

#[test]
fn takedown_priority_is_front_loaded() {
    let steps = ddos_analytics::defense::takedown_priority(ds(), bots(), 10);
    assert!(steps.len() >= 5);
    // Regionalization (Fig. 8): the top three countries host most of the
    // attack participation.
    let third = steps[2].cumulative_participation_removed;
    assert!(third > 0.5, "top-3 countries remove only {third}");
}

#[test]
fn chain_gaps_match_fig_17() {
    let m = MultistageAnalysis::compute(ds());
    let cdf = m.gap_cdf().unwrap();
    // Fig. 17: ≈65% under 10 s, ≈80% under 30 s.
    assert!(cdf.eval(10.0) > 0.5, "under-10s {}", cdf.eval(10.0));
    assert!(cdf.eval(30.0) > 0.7, "under-30s {}", cdf.eval(30.0));
}
