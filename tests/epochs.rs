//! Epoch-sharded engine equivalence suite.
//!
//! The epoch fold must reproduce the monolithic context build
//! **bit-identically** for any partition of the trace — empty epochs,
//! boundary-straddling attacks, duplicate bot records arbitrated across
//! epochs, and sources that only resolve against another epoch's bots.
//! `EpochContext::merge` must also be associative, so a streaming fold,
//! a balanced tree fold, and an incremental append all agree.

use ddos_analytics::{
    Analysis, AnalysisContext, AnalysisReport, EpochContext, IncrementalPipeline, PipelineOptions,
    StreamFold,
};
use ddos_obs::Obs;
use ddos_schema::record::Location;
use ddos_schema::{
    Asn, AttackRecord, BotRecord, BotnetId, CityId, Dataset, DatasetBuilder, DdosId, Family,
    IpAddr4, LatLon, OrgId, Protocol, Seconds, Timestamp, Window,
};
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;
use proptest::prelude::*;

fn fold_shards(ds: &Dataset, epoch_len: Seconds) -> EpochContext {
    let obs = Obs::disabled();
    ds.shards(epoch_len)
        .iter()
        .map(|s| EpochContext::build(s, &obs))
        .reduce(|a, b| a.merge(b).0)
        .expect("a dataset always has at least one shard")
}

/// Folding the trace epoch by epoch matches the monolithic build on
/// every analysis input, and the report serializes byte-identically.
fn assert_fold_equals_build(ds: &Dataset, epoch_len: Seconds) {
    let built = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
    let folded = fold_shards(ds, epoch_len).into_context(ds, ArimaSpec::DEFAULT);
    built.assert_same_analysis(&folded);
    let json = |ctx: &AnalysisContext| {
        serde_json::to_string(&Analysis::over(ctx).parallel(false).run())
            .expect("report serializes")
    };
    assert_eq!(json(&built), json(&folded), "report bytes diverged");
}

fn location(cc: &str, city: u32, lat: f64) -> Location {
    Location {
        country: cc.parse().unwrap(),
        city: CityId(city),
        org: OrgId(city),
        asn: Asn(64_000 + city),
        coords: LatLon::new_unchecked(lat, 20.0),
    }
}

fn src(last: u8) -> IpAddr4 {
    IpAddr4::from_octets(203, 0, 113, last)
}

fn bot(last: u8, cc: &str, lat: f64, first_day: i64, last_day: i64) -> BotRecord {
    BotRecord {
        ip: src(last),
        botnet: BotnetId(1),
        family: Family::Pandora,
        location: location(cc, 5, lat),
        first_seen: Timestamp(first_day * 86_400),
        last_seen: Timestamp(last_day * 86_400),
    }
}

fn attack(family: Family, id: u64, start: i64, duration: i64, sources: Vec<u8>) -> AttackRecord {
    AttackRecord {
        id: DdosId(id),
        botnet: BotnetId(family.index() as u32 * 10 + 1),
        family,
        category: Protocol::Http,
        target_ip: IpAddr4::from_octets(198, 51, 100, (id % 7) as u8 + 1),
        target: location("US", 1, 38.0),
        start: Timestamp(start),
        end: Timestamp(start + duration),
        sources: sources.into_iter().map(src).collect(),
    }
}

/// A 10-day handcrafted trace exercising every merge edge at once:
///
/// * days 4–5 have no attacks at all (zero-attack epochs);
/// * attack 2 starts late on day 1 and runs into day 2 (an epoch
///   boundary straddle under daily epochs);
/// * bot 1 is recorded twice with different countries/coords, the
///   records observable in different epochs — the merge must arbitrate
///   last-wins and re-resolve every attack that used the stale record;
/// * attack 1's source 9 has no bot record until day 6, so the early
///   epoch leaves it unresolved and the merge must promote it.
fn edge_case_dataset() -> Dataset {
    let day = 86_400;
    let window = Window::new(Timestamp(0), Timestamp(10 * day)).unwrap();
    let mut b = DatasetBuilder::new(window);
    b.push_bot(bot(1, "RU", 55.0, 0, 1)).unwrap();
    b.push_bot(bot(2, "US", 40.0, 0, 9)).unwrap();
    b.push_bot(bot(1, "DE", 52.0, 6, 7)).unwrap();
    b.push_bot(bot(9, "BR", -10.0, 6, 9)).unwrap();
    // Never sourced by an attack; observable only on days 4–5, so
    // under two-day epochs the third epoch appends a bot row without
    // contributing a single attack.
    b.push_bot(bot(7, "CN", 30.0, 4, 5)).unwrap();
    b.push_attack(attack(Family::Pandora, 1, 1_000, 600, vec![1, 9, 2]))
        .unwrap();
    b.push_attack(attack(Family::Pandora, 2, 2 * day - 300, 3_000, vec![1, 2]))
        .unwrap();
    b.push_attack(attack(Family::Dirtjumper, 3, 3 * day, 900, vec![2]))
        .unwrap();
    b.push_attack(attack(Family::Pandora, 4, 6 * day + 50, 700, vec![1, 9]))
        .unwrap();
    b.push_attack(attack(Family::Optima, 5, 9 * day, 400, vec![2, 1]))
        .unwrap();
    b.build().unwrap()
}

#[test]
fn edge_cases_fold_to_the_monolithic_build() {
    let ds = edge_case_dataset();
    for days in [1i64, 2, 3, 7, 30] {
        assert_fold_equals_build(&ds, Seconds::days(days));
    }
    // An odd epoch length that divides nothing cleanly.
    assert_fold_equals_build(&ds, Seconds(100_000));
}

#[test]
fn merge_promotes_cross_epoch_sources_and_arbitrates_duplicates() {
    let ds = edge_case_dataset();
    let obs = Obs::disabled();
    let shards = ds.shards(Seconds::days(2));
    let ctxs: Vec<EpochContext> = shards
        .iter()
        .map(|s| EpochContext::build(s, &obs))
        .collect();
    assert!(ctxs.iter().any(|c| c.is_empty()), "no empty epoch covered");
    let mut it = ctxs.into_iter();
    let first = it.next().unwrap();
    let (folded, deltas) = it.fold((first, Vec::new()), |(acc, mut deltas), next| {
        let (merged, delta) = acc.merge(next);
        deltas.push(delta);
        (merged, deltas)
    });
    // The day-6 bots (the DE duplicate of bot 1 and the new bot 9)
    // arrive in the fourth epoch: that merge appends rows and
    // re-resolves the early attacks that used the stale/unresolved IPs.
    assert!(
        deltas.iter().any(|d| d.appended_bots > 0),
        "no merge appended bot rows"
    );
    assert!(
        deltas.iter().any(|d| !d.reresolved.is_empty()),
        "no merge re-resolved an attack"
    );
    let folded = folded.into_context(&ds, ArimaSpec::DEFAULT);
    AnalysisContext::build_opts(&ds, ArimaSpec::DEFAULT, false).assert_same_analysis(&folded);
}

#[test]
fn merge_is_associative_over_sim_epochs() {
    let cfg = SimConfig {
        scale: 0.004,
        snapshots: false,
        ..SimConfig::small()
    };
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let obs = Obs::disabled();
    let ctxs: Vec<EpochContext> = ds
        .shards(Seconds::WEEK)
        .iter()
        .map(|s| EpochContext::build(s, &obs))
        .collect();
    assert!(ctxs.len() > 3, "need several epochs to vary fold shape");

    let left = ctxs
        .iter()
        .cloned()
        .reduce(|a, b| a.merge(b).0)
        .unwrap()
        .into_context(ds, ArimaSpec::DEFAULT);
    let right = ctxs
        .iter()
        .cloned()
        .rev()
        .reduce(|b, a| a.merge(b).0)
        .unwrap()
        .into_context(ds, ArimaSpec::DEFAULT);
    fn balanced(mut ctxs: Vec<EpochContext>) -> EpochContext {
        while ctxs.len() > 1 {
            ctxs = ctxs
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => a.clone().merge(b.clone()).0,
                    [a] => a.clone(),
                    _ => unreachable!(),
                })
                .collect();
        }
        ctxs.pop().unwrap()
    }
    let tree = balanced(ctxs).into_context(ds, ArimaSpec::DEFAULT);

    left.assert_same_analysis(&right);
    left.assert_same_analysis(&tree);
    AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false).assert_same_analysis(&left);
}

#[test]
fn streamed_fold_matches_batch() {
    let cfg = SimConfig {
        scale: 0.004,
        ..SimConfig::small()
    };
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let obs = Obs::enabled();
    let mut fold = StreamFold::new(ds.window());
    for batch in ddos_sim::feed::replay_epochs(ds, Seconds::WEEK) {
        fold.push(&batch, &obs);
    }
    assert!(fold.peak_resident_rows() > 0);
    assert!(
        (fold.peak_resident_rows() as usize) < ds.len() + ds.bots().len() + ds.bots().len() / 2,
        "streaming never held the whole raw trace at once"
    );
    let t = obs.finish(false);
    assert!(t.span("epoch/build").is_some(), "missing epoch/build span");
    assert!(t.span("epoch/merge").is_some(), "missing epoch/merge span");
    assert!(t.metrics.gauge("epoch/resident_rows").is_some());
    let folded = fold
        .finish()
        .expect("batches were pushed")
        .into_context(ds, ArimaSpec::DEFAULT);
    AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false).assert_same_analysis(&folded);
}

#[test]
fn epoch_engine_report_matches_the_batch_pipeline() {
    let cfg = SimConfig {
        scale: 0.004,
        ..SimConfig::small()
    };
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
    let batch = json(&Analysis::new(ds).run());
    for parallel in [false, true] {
        let r = Analysis::new(ds)
            .parallel(parallel)
            .epochs(Seconds::WEEK)
            .run();
        assert_eq!(json(&r), batch, "epoch fold (parallel={parallel}) diverged");
        assert!(r.telemetry.span("epoch/build").is_some());
        assert!(r.telemetry.span("epoch/merge").is_some());
    }
}

#[test]
fn incremental_pipeline_matches_batch_and_skips_clean_passes() {
    let ds = edge_case_dataset();
    let opts = PipelineOptions::new().parallel(false).telemetry(false);
    let mut inc = IncrementalPipeline::new(&ds, opts, Seconds::days(2));
    assert_eq!(inc.epochs(), 5);
    let mut stats = Vec::new();
    while let Some(s) = inc.append_epoch() {
        stats.push(s);
    }
    assert!(inc.is_complete());
    assert_eq!(inc.appended(), 5);
    assert_eq!(stats.len(), 5);
    // The first append must fill every slot.
    assert_eq!(stats[0].reran.len(), ddos_analytics::passes::REGISTRY.len());
    // The third epoch (days 4–5) holds no attacks, only the never-
    // sourced CN bot: just the roster readers re-run.
    assert_eq!(stats[2].attacks, 0);
    assert_eq!(stats[2].reran, vec!["summary"], "bot-only epoch over-ran");
    // Epochs contributing attacks re-run the attack readers.
    assert!(stats[1].reran.len() > 1);
    let final_report = inc.into_report();
    let batch = Analysis::new(&ds).options(opts).run();
    let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
    assert_eq!(json(&final_report), json(&batch));
    // And the one-call builder spelling agrees.
    let wrapped = Analysis::new(&ds)
        .options(opts)
        .epochs(Seconds::days(2))
        .incremental()
        .run();
    assert_eq!(json(&wrapped), json(&batch));
}

#[test]
fn incremental_pipeline_on_sim_trace_matches_batch() {
    let cfg = SimConfig {
        scale: 0.004,
        ..SimConfig::small()
    };
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let json = |r: &AnalysisReport| serde_json::to_string(r).unwrap();
    let incremental = Analysis::new(ds).epochs(Seconds::WEEK).incremental().run();
    assert_eq!(json(&incremental), json(&Analysis::new(ds).run()));
}

proptest! {
    // Trace generation dominates the cost; a handful of random
    // partitions across seeds and scales covers the merge paths.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// An arbitrary epoch partition of an arbitrary sim trace folds to
    /// a context bit-identical to the monolithic build.
    #[test]
    fn arbitrary_partition_folds_bit_identically(
        seed in 0u64..(1u64 << 48),
        scale in 0.002f64..0.008,
        epoch_secs in 3_600i64..(40 * 86_400),
        spike in any::<bool>(),
        collaborations in any::<bool>(),
    ) {
        let cfg = SimConfig {
            seed,
            scale,
            snapshots: false,
            spike,
            collaborations,
            ..SimConfig::small()
        };
        let trace = generate(&cfg);
        assert_fold_equals_build(&trace.dataset, Seconds(epoch_secs));
    }
}
