//! Minimal offline stand-in for the `memmap2` crate.
//!
//! Implements the one thing the workspace needs: a read-only mapping of
//! a whole file that derefs to `&[u8]`. On unix the mapping is a real
//! `mmap(2)` (pages are faulted in lazily by the decoder, nothing is
//! copied up front); elsewhere — or if the kernel refuses the mapping —
//! it silently falls back to reading the file into an owned buffer, so
//! callers get identical bytes either way.
//!
//! One deliberate API difference from the real crate: [`Mmap::map`] is a
//! *safe* function here. The real `memmap2::Mmap::map` is `unsafe`
//! because another process can truncate the file and turn reads into
//! `SIGBUS`; this workspace only maps trace files it just wrote (or that
//! the user points a CLI at), and its consumers `forbid(unsafe_code)`,
//! so the shim accepts that caveat once, centrally, instead of at every
//! call site.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

/// A read-only memory map of an entire file.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(unix)]
    Map { ptr: *const u8, len: usize },
    /// Buffered fallback (empty files, non-unix, or a refused mapping).
    Owned(Vec<u8>),
}

// The region is private (MAP_PRIVATE), read-only, and exclusively owned
// by this handle, so sharing it across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only from offset 0 to its current length.
    ///
    /// Never fails over to a partial view: any mapping problem degrades
    /// to an owned in-memory copy of the file.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        if usize::try_from(len).is_ok() {
            if let Some(inner) = sys::map_read_only(file, len as usize) {
                return Ok(Mmap { inner });
            }
        }
        let mut data = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(0))?;
        f.read_to_end(&mut data)?;
        Ok(Mmap {
            inner: Inner::Owned(data),
        })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Map { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(data) => data,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Map { ptr, len } = self.inner {
            // Failure here leaks the mapping until process exit; there
            // is nothing useful to do about it in a destructor.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    use super::Inner;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Attempts the mapping; `None` means "use the buffered fallback".
    pub fn map_read_only(file: &File, len: usize) -> Option<Inner> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        let failed = ptr.is_null() || ptr as isize == -1;
        (!failed).then(|| Inner::Map {
            ptr: ptr as *const u8,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2-shim-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path = temp_path("threads");
        File::create(&path).unwrap().write_all(b"abcdef").unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        let total: usize = std::thread::scope(|s| {
            let a = s.spawn(|| map[..3].len());
            let b = s.spawn(|| map[3..].len());
            a.join().unwrap() + b.join().unwrap()
        });
        assert_eq!(total, 6);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
