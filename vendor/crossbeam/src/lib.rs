//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 calling
//! convention (outer `Result`, joinable handles) implemented over
//! `std::thread::scope`. The only behavioral difference from the real
//! crate is that the `Scope` handle is passed by value (it is `Copy`),
//! which call sites using inferred closure parameters never observe.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Handle for spawning threads inside a [`scope`] call.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope again
        /// so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns. Returns
    /// `Err` with the panic payload if the closure (or an unjoined
    /// spawned thread) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum: i32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn panics_surface_through_join() {
        let joined: Result<(), _> = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(joined.is_err());
    }
}
