//! Minimal offline stand-in for `proptest`.
//!
//! Keeps the `proptest!` surface the workspace tests use — strategies
//! built from ranges / `any` / `collection::vec` / `sample::select`,
//! combinators `prop_map` and `prop_flat_map`, and the assertion
//! macros — on top of a deterministic per-test RNG. Differences from
//! the real crate: no shrinking (a failing case reports its inputs via
//! the panic message only) and no persisted failure seeds. Each test
//! derives its seed from the test name, so runs are reproducible.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! uint_ranges {
        ($($ty:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let width = (self.end - self.start) as u64;
                        self.start + rng.below(width) as $ty
                    }
                }

                impl Strategy for ::std::ops::RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let width = (end - start) as u64;
                        if width == u64::MAX {
                            rng.next_u64() as $ty
                        } else {
                            start + rng.below(width + 1) as $ty
                        }
                    }
                }
            )*
        };
    }

    uint_ranges!(u8, u16, u32, u64, usize);

    macro_rules! int_ranges {
        ($($ty:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                        (self.start as i64).wrapping_add(rng.below(width) as i64) as $ty
                    }
                }

                impl Strategy for ::std::ops::RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let width = (end as i64).wrapping_sub(start as i64) as u64;
                        if width == u64::MAX {
                            rng.next_u64() as $ty
                        } else {
                            (start as i64).wrapping_add(rng.below(width + 1) as i64) as $ty
                        }
                    }
                }
            )*
        };
    }

    int_ranges!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.f64() * (self.end() - self.start())
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {
            $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            })*
        };
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            })*
        };
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.f64()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections (half-open).
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy that picks uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// Test configuration, RNG, and case outcomes.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed.
        Fail(String),
    }

    /// Deterministic RNG (xoshiro-style splitmix stream) seeded from
    /// the test name so every run regenerates the same cases.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash | 1, // never all-zero
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift (Lemire); a little biased for huge n, which
            // is irrelevant for test-case generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced access mirroring real proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Each function body runs once per case with
/// its arguments generated from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::__proptest_run!(($cfg, stringify!($name)) ($($args)*) $body);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (($cfg:expr, $name:expr) ($($pat:pat in $strat:expr),+ $(,)?) $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __strategy = ($($strat,)+);
        let mut __rng = $crate::test_runner::TestRng::from_name($name);
        for __case in 0..__config.cases {
            let ($($pat,)+) =
                $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
            match __outcome {
                ::std::result::Result::Ok(()) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    ::std::panic!("proptest case #{} of {} failed: {}", __case, $name, __msg);
                }
            }
        }
    }};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", __left, __right),
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(v in 3u32..10, f in -1.0f64..1.0, k in 0u8..=4) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(k <= 4);
        }

        #[test]
        fn combinators_compose(
            xs in prop::collection::vec(any::<u32>(), 1..5),
            tag in prop::sample::select(vec!["a", "b"]),
            mapped in (0u64..10).prop_flat_map(|n| (n..n + 10)).prop_map(|n| n * 2),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(tag == "a" || tag == "b");
            prop_assert!(mapped < 40);
            prop_assert_eq!(mapped % 2, 0);
        }
    }
}
