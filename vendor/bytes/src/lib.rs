//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the workspace uses: `BytesMut` as a
//! growable write buffer, `Bytes` as a cheaply-consumable read cursor,
//! and the `Buf`/`BufMut` traits carrying the fixed-width big-endian
//! accessors. Semantics (byte order, cursor consumption) match the real
//! crate so traces written by either are interchangeable.

/// Read-side cursor over an immutable byte buffer.
///
/// `get_*` calls consume from the front, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (network byte order, like `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice out of bounds: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write access to a byte buffer (network byte order, like `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_i64(-5);
        w.put_f64(1.5);
        w.put_slice(b"ab");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 1.5);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"ab");
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_views_remaining_bytes() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        b.get_u8();
        assert_eq!(&b[..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![2, 3]);
    }
}
