//! Deserialization traits over a concrete content model.
//!
//! Instead of serde's visitor machinery, a [`Deserializer`] produces a
//! [`Content`] tree (the self-describing data model of the underlying
//! format) and `Deserialize` impls pattern-match it. Borrowed string
//! content (`Content::Str`) preserves zero-copy `&str` deserialization.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::marker::PhantomData;

/// Error trait every deserializer error must implement.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The self-describing content model a format produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Content<'de> {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String borrowed from the input.
    Str(&'de str),
    /// Owned string (input contained escapes).
    String(String),
    /// Sequence of values.
    Seq(Vec<Content<'de>>),
    /// Key/value entries in input order.
    Map(Vec<(Content<'de>, Content<'de>)>),
}

impl<'de> Content<'de> {
    /// One-word description of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) | Content::String(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// The string slice if this content is textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            Content::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A format backend that can produce a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Produces the content tree for the next value.
    fn deserialize_content(self) -> Result<Content<'de>, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;

    /// Called by derived impls when a struct field is absent from the
    /// input. Errors by default; `Option<T>` overrides it to `None`.
    #[doc(hidden)]
    fn missing_field<E: Error>(field: &'static str) -> Result<Self, E> {
        Err(E::custom(format!("missing field `{field}`")))
    }
}

/// Adapter that re-deserializes an already-produced [`Content`] value —
/// the glue derived impls use for nested fields.
pub struct ContentDeserializer<'de, E> {
    content: Content<'de>,
    marker: PhantomData<fn() -> E>,
}

impl<'de, E> ContentDeserializer<'de, E> {
    /// Wraps a content value.
    pub fn new(content: Content<'de>) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<'de, E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content<'de>, E> {
        Ok(self.content)
    }
}

fn unexpected<T, E: Error>(expected: &str, got: &Content<'_>) -> Result<T, E> {
    Err(E::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------- impls

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => unexpected("boolean", &other),
        }
    }
}

macro_rules! deserialize_uint {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let v = match content {
                    Content::U64(v) => v,
                    other => return unexpected("unsigned integer", &other),
                };
                <$ty>::try_from(v).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {v} out of range for {}", stringify!($ty)
                    ))
                })
            }
        })*
    };
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let out = match content {
                    Content::I64(v) => <$ty>::try_from(v).ok(),
                    Content::U64(v) => <$ty>::try_from(v).ok(),
                    other => return unexpected("integer", &other),
                };
                out.ok_or_else(|| {
                    D::Error::custom(format!("integer out of range for {}", stringify!($ty)))
                })
            }
        })*
    };
}

deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => unexpected("number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s.to_owned()),
            Content::String(s) => Ok(s),
            other => unexpected("string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            Content::String(_) => Err(D::Error::custom("cannot borrow escaped string as &str")),
            other => unexpected("string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        let s = content
            .as_str()
            .ok_or_else(|| D::Error::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => unexpected("null", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => T::deserialize(ContentDeserializer::<D::Error>::new(content)).map(Some),
        }
    }

    fn missing_field<E: Error>(_field: &'static str) -> Result<Self, E> {
        Ok(None)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| T::deserialize(ContentDeserializer::<D::Error>::new(item)))
                .collect(),
            other => unexpected("sequence", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+))*) => {
        $(impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                const LEN: usize = deserialize_tuple!(@count $($name)+);
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        if items.len() != LEN {
                            return Err(__D::Error::custom(format!(
                                "expected tuple of length {LEN}, got {}", items.len()
                            )));
                        }
                        let mut iter = items.into_iter();
                        Ok(($({
                            let item = iter.next().expect("length checked");
                            $name::deserialize(ContentDeserializer::<__D::Error>::new(item))?
                        },)+))
                    }
                    other => unexpected("sequence", &other),
                }
            }
        })*
    };
    (@count $($name:ident)+) => { [$(deserialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

deserialize_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        K::deserialize(ContentDeserializer::<D::Error>::new(k))?,
                        V::deserialize(ContentDeserializer::<D::Error>::new(v))?,
                    ))
                })
                .collect(),
            other => unexpected("map", &other),
        }
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        K::deserialize(ContentDeserializer::<D::Error>::new(k))?,
                        V::deserialize(ContentDeserializer::<D::Error>::new(v))?,
                    ))
                })
                .collect(),
            other => unexpected("map", &other),
        }
    }
}
