//! Minimal offline stand-in for `serde`.
//!
//! The serialization side mirrors real serde's `Serializer` shape (the
//! workspace contains hand-written `Serialize` impls against it). The
//! deserialization side is simplified to a concrete self-describing
//! content model ([`de::Content`]): a `Deserializer` produces a content
//! tree and `Deserialize` impls pattern-match it. This trades serde's
//! zero-copy visitor machinery for something small enough to vendor,
//! while keeping the public trait names and module paths the code uses.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
