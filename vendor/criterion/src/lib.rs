//! Minimal offline stand-in for `criterion`.
//!
//! Keeps criterion's API shape (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`) but measures plain wall-clock time: a short
//! warmup, then `sample_size` timed iterations, reporting min / mean /
//! max per iteration to stdout. There is no statistical analysis, no
//! HTML report, and no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.default_sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_benchmark_id(), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let sample_size = self.sample_size;
        run_benchmark(&id, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from just a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id types to a display string.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: at least one call, up to ~100ms.
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() > Duration::from_millis(100) {
                break;
            }
            if self.sample_size == 0 {
                break;
            }
            // A single warmup call is enough for slow routines.
            if warmup_start.elapsed() > Duration::from_millis(5) {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {id}: [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}\u{b5}s", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &v| {
            b.iter(|| black_box(v * 2));
        });
        g.finish();
        assert_eq!(runs, 1);
    }
}
