//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the item is parsed by walking its raw `TokenTree`s and
//! the impls are emitted by building Rust source strings and re-parsing
//! them into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields
//! - single-field tuple structs (serialized as the inner value, which
//!   also covers `#[serde(transparent)]`)
//! - enums with unit variants, newtype variants, and struct variants
//!   (externally tagged, like real serde)
//!
//! Supported attributes: `#[serde(transparent)]` on containers and
//! `#[serde(skip)]` on named fields (omitted when serializing, filled
//! from `Default` when deserializing). Anything else is a compile error
//! rather than a silent behavior change.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    ty: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype(String),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(String),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let source = match parse_input(input) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("::std::compile_error!({:?});", msg),
    };
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}"))
}

// ------------------------------------------------------------- parsing

/// Consumes leading `#[...]` attributes, returning the idents found
/// inside `#[serde(...)]` ones (all other attributes are ignored).
fn parse_attrs(iter: &mut TokenIter) -> Result<Vec<String>, String> {
    let mut serde_idents = Vec::new();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                let group = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    _ => return Err("expected [...] after #".into()),
                };
                let mut inner = group.stream().into_iter().peekable();
                if let Some(TokenTree::Ident(id)) = inner.peek() {
                    if id.to_string() == "serde" {
                        inner.next();
                        let args = match inner.next() {
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                g
                            }
                            _ => return Err("expected serde(...)".into()),
                        };
                        for tt in args.stream() {
                            match tt {
                                TokenTree::Ident(id) => serde_idents.push(id.to_string()),
                                TokenTree::Punct(p) if p.as_char() == ',' => {}
                                other => {
                                    return Err(format!(
                                        "unsupported serde attribute token `{other}`"
                                    ))
                                }
                            }
                        }
                    }
                }
            }
            _ => return Ok(serde_idents),
        }
    }
}

/// Consumes `pub` / `pub(...)` if present.
fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn expect_ident(iter: &mut TokenIter, what: &str) -> Result<String, String> {
    match iter.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected {what}, found {other:?}")),
    }
}

/// Consumes tokens up to (and including) a top-level `,`, tracking
/// angle-bracket depth so commas inside generics don't split. Returns
/// the consumed tokens rendered as source.
fn take_until_comma(iter: &mut TokenIter) -> String {
    let mut out = String::new();
    let mut depth: i32 = 0;
    let mut prev_dash = false;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            if p.as_char() == ',' && depth == 0 {
                iter.next();
                break;
            }
        }
        let tt = iter.next().expect("peeked");
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                // `->` must not close an angle bracket.
                '>' if !prev_dash => depth -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        out.push_str(&tt.to_string());
        out.push(' ');
    }
    out
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// variant bodies).
fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let attrs = parse_attrs(&mut iter)?;
        for attr in &attrs {
            if attr != "skip" {
                return Err(format!("unsupported field attribute `#[serde({attr})]`"));
            }
        }
        skip_visibility(&mut iter);
        let name = expect_ident(&mut iter, "field name")?;
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let ty = take_until_comma(&mut iter);
        if ty.trim().is_empty() {
            return Err(format!("missing type for field `{name}`"));
        }
        fields.push(Field {
            name,
            ty,
            skip: attrs.iter().any(|a| a == "skip"),
        });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        let attrs = parse_attrs(&mut iter)?;
        if let Some(attr) = attrs.first() {
            return Err(format!("unsupported variant attribute `#[serde({attr})]`"));
        }
        let name = expect_ident(&mut iter, "variant name")?;
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Struct(parse_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                let has_top_level_comma = {
                    let mut depth = 0i32;
                    let mut found = false;
                    let mut prev_dash = false;
                    let mut trailing = true;
                    for tt in g.stream() {
                        trailing = false;
                        if let TokenTree::Punct(p) = &tt {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' if !prev_dash => depth -= 1,
                                ',' if depth == 0 => {
                                    found = true;
                                    trailing = true;
                                }
                                _ => {}
                            }
                            prev_dash = p.as_char() == '-';
                        } else {
                            prev_dash = false;
                        }
                    }
                    found && !trailing
                };
                if has_top_level_comma {
                    return Err(format!(
                        "multi-field tuple variant `{name}` is not supported"
                    ));
                }
                let ty = g
                    .stream()
                    .into_iter()
                    .map(|tt| tt.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                VariantKind::Newtype(ty.trim_end_matches([' ', ',']).to_string())
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then the
        // separating comma.
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                iter.next();
                take_until_comma(&mut iter);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
            }
            None => {}
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    let container_attrs = parse_attrs(&mut iter)?;
    for attr in &container_attrs {
        if attr != "transparent" {
            return Err(format!(
                "unsupported container attribute `#[serde({attr})]`"
            ));
        }
    }
    skip_visibility(&mut iter);
    let kw = expect_ident(&mut iter, "`struct` or `enum`")?;
    let name = expect_ident(&mut iter, "type name")?;
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    let data = match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut inner = g.stream().into_iter().peekable();
                parse_attrs(&mut inner)?;
                skip_visibility(&mut inner);
                let ty = take_until_comma(&mut inner);
                if inner.peek().is_some() {
                    return Err(format!(
                        "tuple struct `{name}` with more than one field is not supported"
                    ));
                }
                Data::TupleStruct(ty)
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, data })
}

// ------------------------------------------------------------- codegen

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut body = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut __state, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            body
        }
        Data::TupleStruct(_) => {
            "::serde::ser::Serialize::serialize(&self.0, __serializer)\n".to_string()
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Newtype(_) => arms.push_str(&format!(
                        "{name}::{vname}(__field0) => \
                         ::serde::ser::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\", __field0),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pattern = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut arm = format!(
                            "{name}::{vname} {{ {pattern} }} => {{\n\
                             let mut __state = \
                             ::serde::ser::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __state, \"{0}\", {0})?;\n",
                                f.name
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

/// Emits a block expression that consumes a `Content` expression
/// expected to be a map and evaluates to `Result<ctor { .. }, E>`.
fn gen_fields_from_map(content_expr: &str, ctor: &str, fields: &[Field]) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    let mut out = format!(
        "{{\nlet __entries = match {content_expr} {{\n\
         ::serde::de::Content::Map(__entries) => __entries,\n\
         __other => return ::std::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(::std::format!(\
         \"expected map for `{ctor}`, found {{}}\", \
         ::serde::de::Content::kind(&__other)))),\n}};\n"
    );
    for f in &live {
        out.push_str(&format!(
            "let mut __f_{}: ::std::option::Option<{}> = ::std::option::Option::None;\n",
            f.name, f.ty
        ));
    }
    if !live.is_empty() {
        out.push_str("for (__key, __val) in __entries {\n");
        out.push_str("match ::serde::de::Content::as_str(&__key) {\n");
        for f in &live {
            out.push_str(&format!(
                "::std::option::Option::Some(\"{0}\") => {{ __f_{0} = \
                 ::std::option::Option::Some(<{1} as ::serde::de::Deserialize<'de>>\
                 ::deserialize(::serde::de::ContentDeserializer::<__D::Error>::new(__val))?); \
                 }}\n",
                f.name, f.ty
            ));
        }
        out.push_str("_ => {}\n}\n}\n");
    } else {
        out.push_str("let _ = __entries;\n");
    }
    out.push_str(&format!("::std::result::Result::Ok({ctor} {{\n"));
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: match __f_{0} {{\n\
                 ::std::option::Option::Some(__v) => __v,\n\
                 ::std::option::Option::None => \
                 <{1} as ::serde::de::Deserialize<'de>>::missing_field::<__D::Error>(\"{0}\")?,\n\
                 }},\n",
                f.name, f.ty
            ));
        }
    }
    out.push_str("})\n}\n");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut body = String::from(
                "let __content = ::serde::de::Deserializer::deserialize_content(__deserializer)?;\n",
            );
            body.push_str(&gen_fields_from_map("__content", name, fields));
            body
        }
        Data::TupleStruct(ty) => format!(
            "::std::result::Result::Ok({name}(\
             <{ty} as ::serde::de::Deserialize<'de>>::deserialize(__deserializer)?))\n"
        ),
        Data::Enum(variants) => {
            let has_unit = variants.iter().any(|v| matches!(v.kind, VariantKind::Unit));
            let has_data = variants
                .iter()
                .any(|v| !matches!(v.kind, VariantKind::Unit));
            let mut body = String::from(
                "let __content = ::serde::de::Deserializer::deserialize_content(__deserializer)?;\n\
                 match __content {\n",
            );
            if has_unit {
                let mut str_arms = String::new();
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        str_arms.push_str(&format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ));
                    }
                }
                str_arms.push_str(&format!(
                    "__other => ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{__other}}` of enum `{name}`\"))),\n"
                ));
                body.push_str(&format!(
                    "::serde::de::Content::Str(__s) => match __s {{\n{str_arms}}},\n\
                     ::serde::de::Content::String(ref __owned) => match __owned.as_str() \
                     {{\n{str_arms}}},\n"
                ));
            }
            if has_data {
                let mut var_arms = String::new();
                for v in variants {
                    match &v.kind {
                        VariantKind::Unit => {}
                        VariantKind::Newtype(ty) => var_arms.push_str(&format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}(\
                             <{ty} as ::serde::de::Deserialize<'de>>::deserialize(\
                             ::serde::de::ContentDeserializer::<__D::Error>::new(__value))?)),\n",
                            v.name
                        )),
                        VariantKind::Struct(fields) => var_arms.push_str(&format!(
                            "\"{0}\" => {1}\n",
                            v.name,
                            gen_fields_from_map("__value", &format!("{name}::{}", v.name), fields)
                        )),
                    }
                }
                var_arms.push_str(&format!(
                    "__other => ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{__other}}` of enum `{name}`\"))),\n"
                ));
                body.push_str(&format!(
                    "::serde::de::Content::Map(__entries) => {{\n\
                     let mut __iter = __entries.into_iter();\n\
                     let (__key, __value) = match (__iter.next(), __iter.next()) {{\n\
                     (::std::option::Option::Some(__entry), ::std::option::Option::None) \
                     => __entry,\n\
                     _ => return ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     \"expected a single-entry map for enum `{name}`\")),\n}};\n\
                     let __variant = match ::serde::de::Content::as_str(&__key) {{\n\
                     ::std::option::Option::Some(__v) => \
                     ::std::string::ToString::to_string(__v),\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     \"expected string variant key for enum `{name}`\")),\n}};\n\
                     match __variant.as_str() {{\n{var_arms}}}\n}},\n"
                ));
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"unexpected {{}} for enum `{name}`\", \
                 ::serde::de::Content::kind(&__other)))),\n}}\n"
            ));
            body
        }
    };
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
