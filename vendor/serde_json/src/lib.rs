//! Minimal offline stand-in for `serde_json`.
//!
//! Serializes through the vendored `serde::ser::Serializer` trait and
//! parses into the vendored `serde::de::Content` model. Only the API
//! surface the workspace uses is provided: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].
//!
//! Formatting intentionally matches the real crate's layout (compact
//! with no spaces; pretty with two-space indent, `[]`/`{}` for empty
//! containers) so golden output is stable. Floats are written with the
//! standard library's shortest-roundtrip formatter rather than ryu; the
//! output differs from real serde_json only in cosmetic cases like
//! `1` vs `1.0`, and always round-trips through [`from_str`].

use serde::de::{Content, ContentDeserializer};
use serde::{de, ser};
use std::fmt::{self, Display, Write as _};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ser::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut writer = Writer {
        out: String::new(),
        pretty: false,
        depth: 0,
    };
    value.serialize(&mut writer)?;
    Ok(writer.out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: ser::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut writer = Writer {
        out: String::new(),
        pretty: true,
        depth: 0,
    };
    value.serialize(&mut writer)?;
    Ok(writer.out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: de::Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

// ------------------------------------------------------------ writing

struct Writer {
    out: String,
    pretty: bool,
    depth: usize,
}

impl Writer {
    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    fn write_escaped(&mut self, s: &str) {
        write_escaped_into(&mut self.out, s);
    }

    fn colon(&mut self) {
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Comma/newline bookkeeping before an element or key.
    fn before_item(&mut self, has_items: &mut bool) {
        if *has_items {
            self.out.push(',');
        }
        if self.pretty {
            self.newline_indent();
        }
        *has_items = true;
    }

    /// Closes a container opened with `open`; `close` is `]` or `}`.
    fn close(&mut self, has_items: bool, close: char) {
        self.depth -= 1;
        if has_items && self.pretty {
            self.newline_indent();
        }
        self.out.push(close);
    }
}

fn write_escaped_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compound state for sequences and tuples.
pub struct SeqWriter<'a> {
    writer: &'a mut Writer,
    has_items: bool,
}

/// Compound state for maps.
pub struct MapWriter<'a> {
    writer: &'a mut Writer,
    has_items: bool,
}

/// Compound state for structs.
pub struct StructWriter<'a> {
    writer: &'a mut Writer,
    has_items: bool,
}

/// Compound state for struct variants (closes both the inner object and
/// the outer `{"Variant": ...}` wrapper).
pub struct VariantWriter<'a> {
    writer: &'a mut Writer,
    has_items: bool,
}

impl<'a> ser::Serializer for &'a mut Writer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqWriter<'a>;
    type SerializeTuple = SeqWriter<'a>;
    type SerializeMap = MapWriter<'a>;
    type SerializeStruct = StructWriter<'a>;
    type SerializeStructVariant = VariantWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.write_escaped(v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ser::Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.write_escaped(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: ser::Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ser::Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        self.depth += 1;
        if self.pretty {
            self.newline_indent();
        }
        self.write_escaped(variant);
        self.colon();
        value.serialize(&mut *self)?;
        self.depth -= 1;
        if self.pretty {
            self.newline_indent();
        }
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqWriter<'a>, Error> {
        self.out.push('[');
        self.depth += 1;
        Ok(SeqWriter {
            writer: self,
            has_items: false,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<SeqWriter<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapWriter<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(MapWriter {
            writer: self,
            has_items: false,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructWriter<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(StructWriter {
            writer: self,
            has_items: false,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<VariantWriter<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        if self.pretty {
            self.newline_indent();
        }
        self.write_escaped(variant);
        self.colon();
        self.out.push('{');
        self.depth += 1;
        Ok(VariantWriter {
            writer: self,
            has_items: false,
        })
    }
}

impl ser::SerializeSeq for SeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ser::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.writer.before_item(&mut self.has_items);
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.close(self.has_items, ']');
        Ok(())
    }
}

impl ser::SerializeTuple for SeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ser::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeMap for MapWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: ser::Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.writer.before_item(&mut self.has_items);
        key.serialize(MapKeySerializer {
            writer: &mut *self.writer,
        })
    }

    fn serialize_value<T: ser::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.writer.colon();
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.close(self.has_items, '}');
        Ok(())
    }
}

impl ser::SerializeStruct for StructWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ser::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.writer.before_item(&mut self.has_items);
        self.writer.write_escaped(key);
        self.writer.colon();
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.close(self.has_items, '}');
        Ok(())
    }
}

impl ser::SerializeStructVariant for VariantWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ser::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.writer.before_item(&mut self.has_items);
        self.writer.write_escaped(key);
        self.writer.colon();
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.writer.close(self.has_items, '}');
        let pretty = self.writer.pretty;
        self.writer.depth -= 1;
        if pretty {
            self.writer.newline_indent();
        }
        self.writer.out.push('}');
        Ok(())
    }
}

/// Serializer for map keys: only values with a natural string form are
/// accepted, and numbers are quoted, matching real serde_json.
struct MapKeySerializer<'a> {
    writer: &'a mut Writer,
}

/// Uninhabited compound state for serializers that reject containers.
pub enum Impossible {}

macro_rules! impossible_compound {
    ($($trait:ident $method:ident),*) => {
        $(impl ser::$trait for Impossible {
            type Ok = ();
            type Error = Error;
            fn $method<T: ser::Serialize + ?Sized>(
                &mut self,
                _: &T,
            ) -> Result<(), Error> {
                match *self {}
            }
            fn end(self) -> Result<(), Error> {
                match self {}
            }
        })*
    };
}

impossible_compound!(SerializeSeq serialize_element, SerializeTuple serialize_element);

impl ser::SerializeMap for Impossible {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: ser::Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn serialize_value<T: ser::Serialize + ?Sized>(&mut self, _: &T) -> Result<(), Error> {
        match *self {}
    }
    fn end(self) -> Result<(), Error> {
        match self {}
    }
}

macro_rules! impossible_struct {
    ($($trait:ident),*) => {
        $(impl ser::$trait for Impossible {
            type Ok = ();
            type Error = Error;
            fn serialize_field<T: ser::Serialize + ?Sized>(
                &mut self,
                _: &'static str,
                _: &T,
            ) -> Result<(), Error> {
                match *self {}
            }
            fn end(self) -> Result<(), Error> {
                match self {}
            }
        })*
    };
}

impossible_struct!(SerializeStruct, SerializeStructVariant);

fn key_error(kind: &str) -> Error {
    Error::new(format!("JSON map key must be a string, got {kind}"))
}

impl ser::Serializer for MapKeySerializer<'_> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Impossible;
    type SerializeTuple = Impossible;
    type SerializeMap = Impossible;
    type SerializeStruct = Impossible;
    type SerializeStructVariant = Impossible;

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.writer.write_escaped(v);
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.writer.write_escaped(variant);
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.writer.out, "\"{v}\"");
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.writer.out, "\"{v}\"");
        Ok(())
    }

    fn serialize_newtype_struct<T: ser::Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_bool(self, _: bool) -> Result<(), Error> {
        Err(key_error("bool"))
    }
    fn serialize_f64(self, _: f64) -> Result<(), Error> {
        Err(key_error("float"))
    }
    fn serialize_unit(self) -> Result<(), Error> {
        Err(key_error("null"))
    }
    fn serialize_none(self) -> Result<(), Error> {
        Err(key_error("null"))
    }
    fn serialize_some<T: ser::Serialize + ?Sized>(self, _: &T) -> Result<(), Error> {
        Err(key_error("option"))
    }
    fn serialize_newtype_variant<T: ser::Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: &T,
    ) -> Result<(), Error> {
        Err(key_error("enum variant"))
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Impossible, Error> {
        Err(key_error("sequence"))
    }
    fn serialize_tuple(self, _: usize) -> Result<Impossible, Error> {
        Err(key_error("tuple"))
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Impossible, Error> {
        Err(key_error("map"))
    }
    fn serialize_struct(self, _: &'static str, _: usize) -> Result<Impossible, Error> {
        Err(key_error("struct"))
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Impossible, Error> {
        Err(key_error("enum variant"))
    }
}

// ------------------------------------------------------------ parsing

const MAX_DEPTH: usize = 128;

struct Parser<'de> {
    input: &'de str,
    bytes: &'de [u8],
    pos: usize,
}

impl<'de> Parser<'de> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content<'de>, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Content<'de>) -> Result<Content<'de>, Error> {
        if self.input[self.pos..].starts_with(keyword) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Content<'de>, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if text == "-" || text.is_empty() {
            return Err(Error::new("invalid number"));
        }
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<Content<'de>, Error> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: borrow the slice when there are no escapes.
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(Content::Str(s));
                }
                Some(b'\\') => break,
                Some(b) if b < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
                None => return Err(Error::new("unterminated string")),
            }
        }
        // Slow path: build an owned string with unescaping.
        let mut owned = self.input[start..self.pos].to_string();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Content::String(owned));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => owned.push('"'),
                        b'\\' => owned.push('\\'),
                        b'/' => owned.push('/'),
                        b'n' => owned.push('\n'),
                        b't' => owned.push('\t'),
                        b'r' => owned.push('\r'),
                        b'b' => owned.push('\u{08}'),
                        b'f' => owned.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(Error::new("unpaired low surrogate"));
                            } else {
                                first
                            };
                            owned.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                Some(_) => {
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().expect("non-empty");
                    owned.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi \"you\"").unwrap(), "\"hi \\\"you\\\"\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let nested: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let json = to_string(&nested).unwrap();
        assert_eq!(json, "[[1,\"a\"],[2,\"b\"]]");
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), nested);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        let empty: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
