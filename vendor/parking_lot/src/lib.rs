//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `read()`/`write()`/`lock()` return guards directly instead of
//! `LockResult`s. A poisoned std lock is recovered transparently, which
//! matches parking_lot's behavior of not tracking poison at all.

/// Shared-read, exclusive-write lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
