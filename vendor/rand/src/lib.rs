//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace pins its own PRNG algorithms (see `ddos-stats::rng`) and
//! only uses `rand` for the `RngCore` trait so those generators stay
//! plug-compatible with the wider ecosystem. This shim provides exactly
//! that trait surface.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// workspace's infallible generators).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface, mirroring `rand_core`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
