//! Attack scheduling: start times, intervals, durations, magnitudes.
//!
//! The interval model is a five-component mixture matching the paper's
//! observations (Figs. 3–5): a point mass at zero (simultaneous attacks —
//! more than half of all intervals), log-normal modes at 6–7 minutes,
//! 20–40 minutes, and 2–3 hours ("most commonly shared by all botnet
//! families", Fig. 4), and a broad long tail. Multi-day and multi-week
//! intervals are *not* drawn from the mixture: they emerge from duty
//! cycles and activity-window gaps, exactly as the paper's 59-day
//! Blackenergy gap did.

use ddos_schema::{Seconds, Timestamp, Window};
use ddos_stats::dist::{Categorical, Distribution, LogNormal, Normal};
use ddos_stats::Rng;

use crate::profile::FamilyProfile;

/// Upper clamp on a single within-day interval draw (the long-tail
/// component occasionally produces more; anything longer is represented
/// by day gaps instead).
const MAX_INTERVAL_S: f64 = 100_000.0;

/// Upper clamp on a duration draw: two days.
const MAX_DURATION_S: f64 = 172_800.0;

/// Per-family interval sampler.
#[derive(Debug)]
pub struct IntervalSampler {
    weights: Categorical,
    floor_60s: bool,
    concurrent_fraction: f64,
    components: [IntervalComponent; 5],
}

#[derive(Debug, Clone, Copy)]
enum IntervalComponent {
    Zero,
    LogNormal(LogNormal),
}

impl IntervalSampler {
    /// Builds the sampler from a family profile.
    pub fn new(profile: &FamilyProfile) -> IntervalSampler {
        IntervalSampler {
            weights: Categorical::new(&profile.cal.interval_weights)
                .expect("calibrated weights are a distribution"),
            floor_60s: profile.cal.min_interval_60s,
            concurrent_fraction: profile.cal.interval_weights[0],
            components: [
                IntervalComponent::Zero,
                // 6–7 minute mode.
                IntervalComponent::LogNormal(LogNormal::from_median(390.0, 0.25)),
                // 20–40 minute mode.
                IntervalComponent::LogNormal(LogNormal::from_median(1_800.0, 0.35)),
                // 2–3 hour mode.
                IntervalComponent::LogNormal(LogNormal::from_median(9_000.0, 0.45)),
                // Broad long tail.
                IntervalComponent::LogNormal(LogNormal::from_median(25_000.0, 0.9)),
            ],
        }
    }

    /// Draws one inter-attack interval in whole seconds.
    pub fn sample(&self, rng: &mut Rng) -> i64 {
        let i = self.weights.sample_index(rng);
        let raw = match self.components[i] {
            IntervalComponent::Zero => 0.0,
            IntervalComponent::LogNormal(ln) => ln.sample(rng).min(MAX_INTERVAL_S),
        };
        let v = raw.round() as i64;
        if self.floor_60s {
            v.max(61)
        } else {
            v
        }
    }

    /// Whether this family never attacks twice within 60 seconds.
    pub fn floor_60s(&self) -> bool {
        self.floor_60s
    }

    /// Draws a strictly positive interval (the gap between two concurrency
    /// events; the zero component is handled by bursts instead).
    pub fn sample_positive(&self, rng: &mut Rng) -> i64 {
        for _ in 0..64 {
            let v = self.sample(rng);
            if v > 0 {
                return v;
            }
        }
        60 // calibrated weights always leave positive mass; defensive only
    }

    /// The calibrated fraction of *attacks* that are simultaneous
    /// (interval-mixture weight 0).
    pub fn concurrent_attack_fraction(&self) -> f64 {
        self.concurrent_fraction
    }

    /// Probability that a scheduling event is a simultaneous *burst*,
    /// derived so that bursts of mean length [`Self::MEAN_BURST`] yield
    /// the calibrated fraction of simultaneous attacks. The paper's §III-B
    /// arithmetic (3,692 single-family concurrent events covering more
    /// than half of all attacks) implies runs of ≈7 simultaneous attacks
    /// per event, not independent coin flips.
    pub fn burst_event_prob(&self) -> f64 {
        let w0 = self.concurrent_fraction;
        if w0 <= 0.0 {
            return 0.0;
        }
        w0 / (Self::MEAN_BURST - w0 * (Self::MEAN_BURST - 1.0))
    }

    /// Mean simultaneous-burst length (§III-B's 3,692 single-family
    /// events over ~25k simultaneous attacks imply runs of ≈7–8).
    pub const MEAN_BURST: f64 = 8.0;

    /// Draws a burst length (mean [`Self::MEAN_BURST`]).
    pub fn burst_len(&self, rng: &mut Rng) -> usize {
        4 + rng.below(9) as usize
    }
}

/// Samples an attack duration in seconds for a family.
pub fn sample_duration(profile: &FamilyProfile, rng: &mut Rng) -> Seconds {
    let ln = LogNormal::from_median(profile.cal.duration_median_s, profile.cal.duration_sigma);
    Seconds(ln.sample(rng).clamp(10.0, MAX_DURATION_S).round() as i64)
}

/// Samples an attack magnitude (number of participating bot IPs).
pub fn sample_magnitude(profile: &FamilyProfile, rng: &mut Rng) -> usize {
    let ln = LogNormal::from_median(profile.cal.magnitude_median, 0.8);
    (ln.sample(rng).round() as usize).clamp(4, 500)
}

/// Distributes `total` attacks over the family's active days.
///
/// Daily weights are log-normal (bursty but not periodic — the paper
/// found no diurnal/weekly pattern, §III-A). `spike` optionally forces a
/// minimum count onto one day (the 2012-08-30 Dirtjumper event); the
/// total is preserved by thinning other days.
pub fn allocate_daily_counts(
    active_days: &[usize],
    total: u32,
    spike: Option<(usize, u32)>,
    rng: &mut Rng,
) -> Vec<(usize, u32)> {
    assert!(!active_days.is_empty());
    let noise = LogNormal::new(0.0, 0.6);
    let weights: Vec<f64> = active_days.iter().map(|_| noise.sample(rng)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut counts: Vec<u32> = weights
        .iter()
        .map(|w| ((total as f64) * w / wsum).floor() as u32)
        .collect();
    // Distribute the rounding remainder one by one.
    let mut assigned: u32 = counts.iter().sum();
    while assigned < total {
        let i = rng.below(counts.len() as u64) as usize;
        counts[i] += 1;
        assigned += 1;
    }

    if let Some((spike_day, spike_min)) = spike {
        if let Some(pos) = active_days.iter().position(|&d| d == spike_day) {
            while counts[pos] < spike_min.min(total) {
                // Move one attack from the currently largest other day.
                let donor = counts
                    .iter()
                    .enumerate()
                    .filter(|&(i, &c)| i != pos && c > 0)
                    .max_by_key(|&(_, &c)| c)
                    .map(|(i, _)| i);
                match donor {
                    Some(i) => {
                        counts[i] -= 1;
                        counts[pos] += 1;
                    }
                    None => break,
                }
            }
        }
    }

    active_days
        .iter()
        .copied()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect()
}

/// Generates `count` start timestamps within one day by walking the
/// interval mixture from an early-day phase. Simultaneous attacks arrive
/// in *bursts* (runs at one timestamp, §III-B); positive intervals come
/// from the mixture's log-normal modes. Runs may spill past midnight;
/// that is deliberate (real attacks do not respect day boundaries).
pub fn day_start_times(
    window: Window,
    day: usize,
    count: u32,
    sampler: &IntervalSampler,
    rng: &mut Rng,
) -> Vec<Timestamp> {
    let day_start = window.day_start(day);
    let day_end = day_start + Seconds::DAY;
    let mut t = day_start + Seconds(rng.below(4 * 3_600) as i64);
    let burst_prob = sampler.burst_event_prob();
    let mut out: Vec<Timestamp> = Vec::with_capacity(count as usize);
    while out.len() < count as usize {
        if !out.is_empty() {
            t += Seconds(sampler.sample_positive(rng));
        }
        // Busy days wrap instead of spilling: the walk re-anchors at a
        // fresh phase inside the same day, so daily counts (and the
        // 2012-08-30 spike) stay on the day they were allocated to.
        if t >= day_end.min(window.end) {
            t = day_start + Seconds(rng.below(86_400) as i64);
            if t >= window.end {
                t = window.end - Seconds(1 + rng.below(3_600) as i64);
            }
        }
        let remaining = count as usize - out.len();
        let run = if burst_prob > 0.0 && rng.chance(burst_prob) {
            sampler.burst_len(rng).min(remaining)
        } else {
            1
        };
        out.extend(std::iter::repeat(t).take(run));
    }
    out.sort_unstable();
    if sampler.floor_60s() {
        // Re-anchoring on busy days can interleave two walks; restore
        // the family's 60-second spacing guarantee (Fig. 5).
        for i in 1..out.len() {
            if out[i] < out[i - 1] + Seconds(61) {
                out[i] = out[i - 1] + Seconds(61);
            }
        }
        if let Some(&last) = out.last() {
            if last >= window.end {
                // Extremely dense floor-family days cannot occur with the
                // calibrated volumes; clamp defensively anyway.
                let mut t = window.end - Seconds(1);
                for slot in out.iter_mut().rev() {
                    if *slot >= window.end {
                        *slot = t;
                        t = t - Seconds(61);
                    }
                }
                out.sort_unstable();
            }
        }
    }
    out
}

/// Slowly drifting per-family attack-magnitude process.
///
/// Campaign sizes persist: the number of bots a botmaster commits to an
/// attack stays at a similar level for many consecutive attacks and
/// drifts over days. Modeled as a log-AR(1) level plus per-attack
/// log-normal noise. The persistence is what makes the dispersion series
/// (which scales with magnitude) predictable enough for the paper's
/// Table IV similarities.
#[derive(Debug)]
pub struct MagnitudeProcess {
    log_median: f64,
    level: f64,
}

impl MagnitudeProcess {
    /// AR(1) persistence of the log-level.
    const PHI: f64 = 0.995;
    /// Innovation std of the log-level.
    const INNOV: f64 = 0.05;
    /// Per-attack log-normal noise around the level.
    const NOISE: f64 = 0.2;

    /// Starts the process at a family's calibrated median.
    pub fn new(profile: &FamilyProfile, rng: &mut Rng) -> MagnitudeProcess {
        let stationary = Self::INNOV / (1.0 - Self::PHI * Self::PHI).sqrt();
        let init = Normal::new(0.0, stationary);
        MagnitudeProcess {
            log_median: profile.cal.magnitude_median.ln(),
            level: init.sample(rng),
        }
    }

    /// Draws the next attack's magnitude (bot IP count).
    pub fn next(&mut self, rng: &mut Rng) -> usize {
        let innov = Normal::new(0.0, Self::INNOV);
        self.level = Self::PHI * self.level + innov.sample(rng);
        let noise = Normal::new(0.0, Self::NOISE);
        let m = (self.log_median + self.level + noise.sample(rng)).exp();
        (m.round() as usize).clamp(4, 500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibration_for;
    use crate::config::SimConfig;
    use ddos_schema::Family;

    fn profile(family: Family) -> FamilyProfile {
        let mut rng = Rng::new(2).fork(family.index() as u64);
        FamilyProfile::resolve(
            calibration_for(family).unwrap(),
            &SimConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn concurrent_mass_matches_weight() {
        let p = profile(Family::Dirtjumper);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(1);
        let n = 20_000;
        let zeros = (0..n).filter(|_| s.sample(&mut rng) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.72).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn floor_families_never_sample_below_60s() {
        for family in [Family::Aldibot, Family::Optima] {
            let p = profile(family);
            let s = IntervalSampler::new(&p);
            let mut rng = Rng::new(2);
            for _ in 0..5_000 {
                assert!(s.sample(&mut rng) > 60, "{family}");
            }
        }
    }

    #[test]
    fn interval_modes_cover_paper_bands() {
        let p = profile(Family::Pandora);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(3);
        let xs: Vec<i64> = (0..50_000).map(|_| s.sample(&mut rng)).collect();
        let in_band = |lo: i64, hi: i64| xs.iter().filter(|&&x| x >= lo && x < hi).count();
        // 6–7 min, 20–40 min, and 2–3 h bands must all be populated.
        assert!(in_band(360, 420) > 500, "6-7 min band");
        assert!(in_band(1_200, 2_400) > 1_000, "20-40 min band");
        assert!(in_band(7_200, 10_800) > 1_000, "2-3 h band");
        assert!(xs.iter().all(|&x| x <= MAX_INTERVAL_S as i64));
    }

    #[test]
    fn durations_are_heavy_tailed_lognormal() {
        let p = profile(Family::Dirtjumper);
        let mut rng = Rng::new(4);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_duration(&p, &mut rng).as_f64())
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median / 1_600.0 - 1.0).abs() < 0.15, "median {median}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean} vs median {median}");
        assert!(xs.iter().all(|&x| x <= MAX_DURATION_S));
    }

    #[test]
    fn magnitudes_are_bounded() {
        let p = profile(Family::Blackenergy);
        let mut rng = Rng::new(5);
        for _ in 0..5_000 {
            let m = sample_magnitude(&p, &mut rng);
            assert!((4..=500).contains(&m));
        }
    }

    #[test]
    fn daily_allocation_conserves_total() {
        let days: Vec<usize> = (0..100).collect();
        let mut rng = Rng::new(6);
        let alloc = allocate_daily_counts(&days, 5_000, None, &mut rng);
        assert_eq!(alloc.iter().map(|&(_, c)| c).sum::<u32>(), 5_000);
        assert!(alloc.iter().all(|&(d, _)| d < 100));
    }

    #[test]
    fn spike_forces_minimum_on_spike_day() {
        let days: Vec<usize> = (0..207).collect();
        let mut rng = Rng::new(7);
        let alloc = allocate_daily_counts(&days, 34_620, Some((1, 900)), &mut rng);
        let spike = alloc.iter().find(|&&(d, _)| d == 1).unwrap().1;
        assert!(spike >= 900, "spike day has {spike}");
        assert_eq!(alloc.iter().map(|&(_, c)| c).sum::<u32>(), 34_620);
    }

    #[test]
    fn spike_on_inactive_day_is_ignored() {
        let days: Vec<usize> = (10..20).collect();
        let mut rng = Rng::new(8);
        let alloc = allocate_daily_counts(&days, 100, Some((1, 50)), &mut rng);
        assert_eq!(alloc.iter().map(|&(_, c)| c).sum::<u32>(), 100);
        assert!(alloc.iter().all(|&(d, _)| d >= 10));
    }

    #[test]
    fn day_start_times_are_ordered_and_in_window() {
        let p = profile(Family::Pandora);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(9);
        let w = Window::PAPER;
        let times = day_start_times(w, 50, 200, &s, &mut rng);
        assert_eq!(times.len(), 200);
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!(times.iter().all(|&t| w.contains(t)));
        // Starts on (or shortly after) the requested day.
        assert_eq!(w.day_index(times[0]), Some(50));
    }

    #[test]
    fn bursts_make_simultaneous_runs() {
        let p = profile(Family::Dirtjumper);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(11);
        let w = Window::PAPER;
        let times = day_start_times(w, 10, 2_000, &s, &mut rng);
        // Fraction of attacks sharing a timestamp with a neighbour ≈ the
        // calibrated concurrent fraction.
        let mut concurrent = 0;
        for (i, &t) in times.iter().enumerate() {
            let prev = i > 0 && times[i - 1] == t;
            let next = i + 1 < times.len() && times[i + 1] == t;
            if prev || next {
                concurrent += 1;
            }
        }
        let frac = concurrent as f64 / times.len() as f64;
        assert!((frac - 0.72).abs() < 0.08, "concurrent fraction {frac}");
        // Runs are bursts (length > 2 exists), not just pairs.
        let mut best_run = 1;
        let mut run = 1;
        for pair in times.windows(2) {
            if pair[0] == pair[1] {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(best_run >= 4, "longest run {best_run}");
    }

    #[test]
    fn no_burst_families_have_distinct_times() {
        let p = profile(Family::Optima);
        let s = IntervalSampler::new(&p);
        assert_eq!(s.burst_event_prob(), 0.0);
        let mut rng = Rng::new(12);
        let times = day_start_times(Window::PAPER, 30, 300, &s, &mut rng);
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1], "floor-60s family repeated a timestamp");
        }
    }

    #[test]
    fn sample_positive_is_positive() {
        let p = profile(Family::Dirtjumper);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(13);
        for _ in 0..2_000 {
            assert!(s.sample_positive(&mut rng) > 0);
        }
    }

    #[test]
    fn late_day_times_clamp_to_window() {
        let p = profile(Family::Dirtjumper);
        let s = IntervalSampler::new(&p);
        let mut rng = Rng::new(10);
        let w = Window::PAPER;
        let times = day_start_times(w, 206, 500, &s, &mut rng);
        assert!(times.iter().all(|&t| w.contains(t)));
    }
}
