//! The monitoring feed's hourly-report mechanism (§II-B).
//!
//! The vendor publishes, per family, *"a snapshot ... every hour ...
//! There are 24 hourly reports per day for each botnet family. The set
//! of bots or controllers listed in each report are cumulative over the
//! past 24 hours. The 24-hour time span is measured using the timestamp
//! of the last known bot activity and the time of logged snapshot."*
//!
//! This module reconstructs that report stream from a trace: a bot is
//! listed in the report at hour `t` when it participated in an attack in
//! `(t − 24h, t]`. [`report_population`] computes the whole population
//! curve with a sliding window; [`report_at`] materializes one report
//! (full-scale streams would hold hundreds of millions of entries, so
//! whole-stream materialization is deliberately not offered).

use std::collections::HashMap;

use ddos_schema::{Dataset, Family, IpAddr4, Seconds, Timestamp};

/// One hourly report: the bots active in the trailing 24 hours, with
/// their last-activity timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct HourlyReport {
    /// The family reported on.
    pub family: Family,
    /// The report instant (top of an hour).
    pub taken_at: Timestamp,
    /// `(bot, last activity ≤ taken_at)` for every bot active in the
    /// trailing 24 hours, sorted by address.
    pub bots: Vec<(IpAddr4, Timestamp)>,
}

/// Per-bot activity instants of one family, time-sorted.
///
/// Build once, query many reports.
#[derive(Debug, Clone)]
pub struct ActivityLog {
    family: Family,
    /// `(instant, bot)` sorted by instant.
    events: Vec<(Timestamp, IpAddr4)>,
}

impl ActivityLog {
    /// Extracts the activity log from a trace (every attack start is an
    /// activity instant for each participating bot).
    pub fn build(ds: &Dataset, family: Family) -> ActivityLog {
        let mut events = Vec::new();
        for a in ds.attacks_of(family) {
            for &ip in &a.sources {
                events.push((a.start, ip));
            }
        }
        events.sort_unstable_by_key(|&(t, ip)| (t, ip));
        ActivityLog { family, events }
    }

    /// Number of activity events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The population count of every hourly report across the window:
    /// `(report instant, distinct bots in the trailing 24 h)`. One
    /// sliding-window pass over the activity log.
    pub fn report_population(&self, ds: &Dataset) -> Vec<(Timestamp, usize)> {
        let window = ds.window();
        let mut out = Vec::new();
        let mut lo = 0usize; // first event inside the trailing window
        let mut hi = 0usize; // first event after the report instant
        let mut counts: HashMap<IpAddr4, u32> = HashMap::new();
        for t in window.hours() {
            let cutoff = t - Seconds::DAY;
            while hi < self.events.len() && self.events[hi].0 <= t {
                *counts.entry(self.events[hi].1).or_insert(0) += 1;
                hi += 1;
            }
            while lo < hi && self.events[lo].0 <= cutoff {
                let ip = self.events[lo].1;
                let c = counts.get_mut(&ip).expect("entered before leaving");
                *c -= 1;
                if *c == 0 {
                    counts.remove(&ip);
                }
                lo += 1;
            }
            out.push((t, counts.len()));
        }
        out
    }

    /// Materializes the report at one instant (rounded down to the
    /// hour): the bots active in the trailing 24 hours with their last
    /// activity time.
    pub fn report_at(&self, at: Timestamp) -> HourlyReport {
        let taken_at = at.floor_hour();
        let cutoff = taken_at - Seconds::DAY;
        let mut last: HashMap<IpAddr4, Timestamp> = HashMap::new();
        // Events are time-sorted: binary search the window bounds.
        let start = self.events.partition_point(|&(t, _)| t <= cutoff);
        let end = self.events.partition_point(|&(t, _)| t <= taken_at);
        for &(t, ip) in &self.events[start..end] {
            let e = last.entry(ip).or_insert(t);
            *e = (*e).max(t);
        }
        let mut bots: Vec<(IpAddr4, Timestamp)> = last.into_iter().collect();
        bots.sort_unstable_by_key(|&(ip, _)| ip);
        HourlyReport {
            family: self.family,
            taken_at,
            bots,
        }
    }
}

/// Replay a trace as a sequence of owned epoch batches, each holding
/// only the records observable in that epoch.
///
/// This is the feed-side producer for the epoch-sharded engine: a
/// bounded-memory consumer (`ddos-analytics`' `StreamFold`) can fold
/// the batches one at a time instead of materializing the whole trace
/// as one context. Batches arrive in epoch order with contiguous
/// `attack_base` offsets, exactly as `StreamFold::push` requires.
pub fn replay_epochs(
    ds: &Dataset,
    epoch_len: Seconds,
) -> impl Iterator<Item = ddos_schema::EpochBatch> + '_ {
    ds.shards(epoch_len).into_iter().map(|s| s.to_batch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, SimConfig};

    fn small() -> crate::GeneratedTrace {
        let mut config = SimConfig::small();
        config.snapshots = false;
        generate(&config)
    }

    #[test]
    fn report_lists_exactly_the_trailing_day() {
        let trace = small();
        let ds = &trace.dataset;
        let log = ActivityLog::build(ds, Family::Dirtjumper);
        assert!(!log.is_empty());
        // Pick an instant in the middle of dirtjumper's activity.
        let mid = ds
            .attacks_of(Family::Dirtjumper)
            .nth(log.len() / 40)
            .unwrap()
            .start;
        let report = log.report_at(mid);
        assert_eq!(report.taken_at, mid.floor_hour());
        assert!(!report.bots.is_empty());
        let cutoff = report.taken_at - Seconds::DAY;
        for &(ip, last) in &report.bots {
            assert!(last > cutoff && last <= report.taken_at);
            // The listed bot really participated at that instant.
            let participated = ds
                .attacks_of(Family::Dirtjumper)
                .any(|a| a.start == last && a.sources.contains(&ip));
            assert!(participated, "bot {ip} last activity {last} not found");
        }
    }

    #[test]
    fn population_curve_matches_materialized_reports() {
        let trace = small();
        let ds = &trace.dataset;
        let log = ActivityLog::build(ds, Family::Pandora);
        let curve = log.report_population(ds);
        assert_eq!(curve.len(), ds.window().hours().count());
        // Cross-check a scatter of hours against report_at.
        for &(t, count) in curve.iter().step_by(curve.len() / 24 + 1) {
            let report = log.report_at(t);
            assert_eq!(report.bots.len(), count, "at {t}");
        }
    }

    #[test]
    fn population_is_zero_outside_activity() {
        let trace = small();
        let ds = &trace.dataset;
        // Darkshell is only active days 5..=17: before that, reports are
        // empty; during the burst they are not.
        let log = ActivityLog::build(ds, Family::Darkshell);
        let curve = log.report_population(ds);
        assert_eq!(curve[24].1, 0, "day 1 should be quiet");
        let peak = curve.iter().map(|&(_, c)| c).max().unwrap();
        assert!(peak > 0, "darkshell burst invisible");
    }

    #[test]
    fn idle_family_produces_empty_log() {
        let trace = small();
        // Dormant families never attack.
        let log = ActivityLog::build(&trace.dataset, Family::Zemra);
        assert!(log.is_empty());
        let report = log.report_at(trace.dataset.window().start + Seconds::days(3));
        assert!(report.bots.is_empty());
    }

    #[test]
    fn reports_are_cumulative_within_a_day() {
        // A bot active at hour h appears in every report up to h+24.
        let trace = small();
        let ds = &trace.dataset;
        let log = ActivityLog::build(ds, Family::Dirtjumper);
        let attack = ds.attacks_of(Family::Dirtjumper).nth(10).unwrap();
        let bot = attack.sources[0];
        let t0 = attack.start;
        for hours_later in [1i64, 6, 23] {
            let report = log.report_at(t0 + Seconds::hours(hours_later));
            assert!(
                report.bots.iter().any(|&(ip, _)| ip == bot),
                "bot missing {hours_later}h later"
            );
        }
        // 25 hours later the bot is gone unless it re-participated.
        let later = log.report_at(t0 + Seconds::hours(25));
        let reappeared = ds.attacks_of(Family::Dirtjumper).any(|a| {
            a.start > t0 && a.start <= t0 + Seconds::hours(25) && a.sources.contains(&bot)
        });
        if !reappeared {
            assert!(!later.bots.iter().any(|&(ip, _)| ip == bot));
        }
    }
}
