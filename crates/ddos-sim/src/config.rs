//! Generator configuration.

use ddos_geo::GeoConfig;
use ddos_schema::Window;

/// Configuration of one trace generation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Master seed; everything else derives from it deterministically.
    pub seed: u64,
    /// Volume scale: `1.0` reproduces the paper's 50,704 attacks; tests
    /// use small fractions. Counts scale linearly (each Table II cell is
    /// scaled and rounded, minimum 1 where the original is non-zero).
    pub scale: f64,
    /// Observation window (defaults to the paper's 207 days).
    pub window: Window,
    /// World-synthesis configuration.
    pub geo: GeoConfig,
    /// Emit per-family hourly population snapshots (6-hour cadence) into
    /// the dataset. Off saves memory when only attack records matter.
    pub snapshots: bool,
    /// Inject the 2012-08-30 Dirtjumper spike (§III-A).
    pub spike: bool,
    /// Inject intra-/inter-family concurrent collaborations (§V-A).
    pub collaborations: bool,
    /// Inject multistage consecutive chains (§V-B).
    pub chains: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 0x0DD0_5EED,
            scale: 1.0,
            window: Window::PAPER,
            geo: GeoConfig::default(),
            snapshots: true,
            spike: true,
            collaborations: true,
            chains: true,
        }
    }
}

impl SimConfig {
    /// Full paper-scale configuration.
    pub fn paper() -> SimConfig {
        SimConfig::default()
    }

    /// A fast, small configuration for tests (~5% volume, slimmer world).
    pub fn small() -> SimConfig {
        SimConfig {
            scale: 0.05,
            geo: GeoConfig {
                city_scale: 2.0,
                max_cities_per_country: 20,
                ..GeoConfig::default()
            },
            ..SimConfig::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Scales a calibrated count, keeping non-zero counts at least 1.
    pub fn scaled(&self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        (((n as f64) * self.scale).round() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = SimConfig::default();
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.window, Window::PAPER);
        assert!(c.spike && c.collaborations && c.chains && c.snapshots);
    }

    #[test]
    fn scaled_rounds_and_floors_at_one() {
        let c = SimConfig {
            scale: 0.05,
            ..SimConfig::default()
        };
        assert_eq!(c.scaled(0), 0);
        assert_eq!(c.scaled(1), 1);
        assert_eq!(c.scaled(26), 1);
        assert_eq!(c.scaled(34_620), 1_731);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let c = SimConfig::small().with_seed(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.scale, 0.05);
    }
}
