//! Runtime family profiles: calibration resolved against a config and
//! the synthesized world.

use ddos_geo::country::COUNTRIES;
use ddos_geo::GeoDb;
use ddos_schema::{CountryCode, Family, Protocol};
use ddos_stats::dist::Categorical;
use ddos_stats::Rng;

use crate::calibration::FamilyCalibration;
use crate::config::SimConfig;

/// A family's generation-time profile: scaled counts and samplers.
#[derive(Debug)]
pub struct FamilyProfile {
    /// The underlying calibration constants.
    pub cal: &'static FamilyCalibration,
    /// Scaled total attack count for this run.
    pub total_attacks: u32,
    /// Scaled per-protocol counts (same order as the calibration).
    pub protocol_counts: Vec<(Protocol, u32)>,
    /// Scaled botnet generation count (≥ 3 so collaborating generations
    /// can coexist).
    pub botnets: u32,
    /// Scaled bot-pool size.
    pub bot_pool: u32,
    /// Scaled victim-pool size.
    pub target_pool: u32,
    /// Resolved victim-country distribution (codes + weights).
    pub target_countries: Vec<(CountryCode, f64)>,
    /// Sampler over `target_countries`.
    pub target_country_dist: Categorical,
    /// Resolved home countries (codes + weights).
    pub home_countries: Vec<(CountryCode, f64)>,
    /// The family's active day indices within the window, sorted.
    pub active_days: Vec<usize>,
}

impl FamilyProfile {
    /// Resolves a calibration against the run configuration.
    ///
    /// `rng` drives the duty-cycle day selection; callers pass a
    /// family-forked stream so profiles are independent across families.
    pub fn resolve(cal: &'static FamilyCalibration, config: &SimConfig, rng: &mut Rng) -> Self {
        let protocol_counts: Vec<(Protocol, u32)> = cal
            .protocol_counts
            .iter()
            .map(|&(p, n)| (p, config.scaled(n)))
            .collect();
        let total_attacks = protocol_counts.iter().map(|&(_, n)| n).sum();

        // Victim countries: the published top-5 plus a tail of further
        // countries (Table V column 2 gives the full count) drawn from
        // the registry's internet-heavy countries, with geometrically
        // decaying weights below the published minimum.
        let mut target_countries: Vec<(CountryCode, f64)> = cal
            .target_prefs
            .iter()
            .map(|&(code, n)| (code.parse().expect("calibrated code"), n as f64))
            .collect();
        let tail_n = cal.target_countries.saturating_sub(target_countries.len());
        let min_top = target_countries
            .iter()
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        let mut candidates: Vec<&ddos_geo::CountryInfo> = COUNTRIES
            .iter()
            .filter(|c| !target_countries.iter().any(|&(code, _)| code == c.code))
            .collect();
        candidates.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
        // Shuffle the internet-heavy candidates per family so family tail
        // sets diverge — the union across families is what produces the
        // paper's 84 distinct victim countries.
        let top = candidates.len().min(90);
        rng.shuffle(&mut candidates[..top]);
        // Table V prints only the top five; when they sum to less than
        // the family's Table II total, the deficit went to the remaining
        // countries (most visibly Pandora: top-5 sum 2,409 of 6,906
        // attacks). Distribute that mass over the tail with geometric
        // decay; families whose top-5 already cover the total get a
        // residual trickle.
        let explicit: f64 = target_countries.iter().map(|&(_, w)| w).sum();
        let deficit = (cal.total_attacks() as f64 - explicit).max(0.0);
        for (rank, info) in candidates.iter().take(tail_n).enumerate() {
            let trickle = ((min_top * 0.8) * 0.88f64.powi(rank as i32)).max(min_top * 0.05);
            // Flat split keeps every tail country well below the
            // published #5, so the printed top-5 ranking is preserved.
            let w = if deficit > explicit * 0.1 && tail_n > 0 {
                deficit / tail_n as f64
            } else {
                trickle
            };
            target_countries.push((info.code, w));
        }
        let weights: Vec<f64> = target_countries.iter().map(|&(_, w)| w).collect();
        let target_country_dist = Categorical::new(&weights).expect("positive weights");

        let home_countries: Vec<(CountryCode, f64)> = cal
            .home_countries
            .iter()
            .map(|&(code, w)| (code.parse().expect("calibrated code"), w))
            .collect();

        let (first, last, duty) = cal.active;
        let last = last.min(config.window.num_days().saturating_sub(1));
        let mut active_days: Vec<usize> = (first..=last)
            .filter(|_| duty >= 1.0 || rng.chance(duty))
            .collect();
        if active_days.is_empty() {
            active_days.push(first.min(last));
        }

        FamilyProfile {
            cal,
            total_attacks,
            protocol_counts,
            botnets: config.scaled(cal.botnets).max(3),
            bot_pool: config.scaled(cal.bot_pool).max(100),
            target_pool: config.scaled(cal.target_pool).max(5),
            target_countries,
            target_country_dist,
            home_countries,
            active_days,
        }
    }

    /// The family.
    #[inline]
    pub fn family(&self) -> Family {
        self.cal.family
    }

    /// Builds the exact protocol multiset for the run (shuffled by the
    /// caller) — this is what makes Table II reproduce exactly.
    pub fn protocol_multiset(&self) -> Vec<Protocol> {
        let mut v = Vec::with_capacity(self.total_attacks as usize);
        for &(p, n) in &self.protocol_counts {
            v.extend(std::iter::repeat(p).take(n as usize));
        }
        v
    }

    /// Samples a victim country.
    pub fn sample_target_country(&self, rng: &mut Rng) -> CountryCode {
        self.target_countries[self.target_country_dist.sample_index(rng)].0
    }

    /// Cities available to the family's bots, resolved against the world.
    ///
    /// Each home country contributes cities proportional to its weight —
    /// a wide footprint (the Botlist spans thousands of cities, Table
    /// III) even though any single attack draws from only a few.
    pub fn home_cities(&self, geo: &GeoDb) -> Vec<ddos_schema::CityId> {
        let mut cities = Vec::new();
        let total_w: f64 = self.home_countries.iter().map(|&(_, w)| w).sum();
        for &(code, w) in &self.home_countries {
            let pool = geo.cities_in(code);
            if pool.is_empty() {
                continue;
            }
            let n = ((w / total_w * 48.0).ceil() as usize).clamp(1, pool.len());
            cities.extend(pool[..n].iter().map(|c| c.id));
        }
        cities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{calibration_for, ACTIVE_FAMILIES};
    use ddos_geo::GeoConfig;

    fn profile(family: Family, config: &SimConfig) -> FamilyProfile {
        let cal = calibration_for(family).unwrap();
        let mut rng = Rng::new(1).fork(family.index() as u64);
        FamilyProfile::resolve(cal, config, &mut rng)
    }

    #[test]
    fn full_scale_totals_match_table_ii() {
        let config = SimConfig::default();
        let total: u32 = ACTIVE_FAMILIES
            .iter()
            .map(|cal| {
                let mut rng = Rng::new(1).fork(cal.family.index() as u64);
                FamilyProfile::resolve(cal, &config, &mut rng).total_attacks
            })
            .sum();
        assert_eq!(total, 50_704);
    }

    #[test]
    fn protocol_multiset_has_exact_counts() {
        let p = profile(Family::Blackenergy, &SimConfig::default());
        let ms = p.protocol_multiset();
        assert_eq!(ms.len(), 3_496);
        assert_eq!(ms.iter().filter(|&&x| x == Protocol::Http).count(), 3_048);
        assert_eq!(ms.iter().filter(|&&x| x == Protocol::Syn).count(), 31);
    }

    #[test]
    fn scaled_profile_shrinks_but_keeps_nonzero_cells() {
        let p = profile(Family::Yzf, &SimConfig::small());
        // yzf: 177/182/187 at 5% → 9/9/9-ish, all cells ≥ 1.
        assert!(p.total_attacks >= 3);
        assert!(p.protocol_counts.iter().all(|&(_, n)| n >= 1));
        assert!(p.botnets >= 3);
    }

    #[test]
    fn target_country_list_matches_table_v_size() {
        let p = profile(Family::Dirtjumper, &SimConfig::default());
        assert_eq!(p.target_countries.len(), 71);
        // Top country is the published favourite.
        assert_eq!(p.target_countries[0].0, CountryCode::literal("US"));
    }

    #[test]
    fn target_sampling_favours_top_countries() {
        let p = profile(Family::Dirtjumper, &SimConfig::default());
        let mut rng = Rng::new(7);
        let us = CountryCode::literal("US");
        let ru = CountryCode::literal("RU");
        let (mut n_us, mut n_ru) = (0, 0);
        for _ in 0..5_000 {
            let c = p.sample_target_country(&mut rng);
            if c == us {
                n_us += 1;
            } else if c == ru {
                n_ru += 1;
            }
        }
        assert!(n_us > 900, "US {n_us}");
        assert!(n_ru > 700, "RU {n_ru}");
        assert!(n_us > n_ru, "US {n_us} vs RU {n_ru}");
    }

    #[test]
    fn active_days_respect_window() {
        let config = SimConfig::default();
        let p = profile(Family::Blackenergy, &config);
        assert!(p.active_days.iter().all(|&d| (60..=130).contains(&d)));
        let dj = profile(Family::Dirtjumper, &config);
        assert_eq!(dj.active_days.len(), 207);
    }

    #[test]
    fn duty_cycle_thins_days() {
        let p = profile(Family::Colddeath, &SimConfig::default());
        let span = 150 - 30 + 1;
        assert!(p.active_days.len() < span, "{} days", p.active_days.len());
        assert!(p.active_days.len() > span / 4);
    }

    #[test]
    fn home_cities_resolve() {
        let geo = GeoDb::synthesize(&GeoConfig {
            city_scale: 2.0,
            max_cities_per_country: 20,
            ..GeoConfig::default()
        });
        let p = profile(Family::Pandora, &SimConfig::small());
        let cities = p.home_cities(&geo);
        assert!(!cities.is_empty());
        for c in cities {
            let info = geo.city(c).unwrap();
            assert!(p
                .home_countries
                .iter()
                .any(|&(code, _)| code == info.country));
        }
    }
}
