//! Calibrated synthetic botnet DDoS trace generator.
//!
//! The paper's dataset — seven months of verified DDoS attacks from a
//! commercial botnet-monitoring feed — is proprietary and unavailable.
//! This crate is the substitution mandated by our reproduction plan (see
//! `DESIGN.md` §1): a generative model of the ten active botnet families,
//! calibrated to **every number the paper publishes**, that emits the
//! same record schemas the paper's pipeline consumes.
//!
//! What is calibrated (inputs) vs emergent (results) is spelled out per
//! experiment in `DESIGN.md` §5. Headline calibrations:
//!
//! * per-family × per-protocol attack counts exactly as Table II (at
//!   `scale = 1.0` the 50,704 total is exact);
//! * per-family activity windows (Blackenergy active ~⅓ of the period,
//!   Dirtjumper always on, Darkshell/Nitol bursty — §III-A, Table IV's
//!   exclusions);
//! * inter-attack interval mixtures (concurrent mass + the 6–7 min /
//!   20–40 min / 2–3 h modes of Fig. 4 + a Pareto tail for the 59-day
//!   outlier);
//! * log-normal durations (median ≈ 1,766 s, heavy tail — Figs. 6–7);
//! * target-country preferences per family (Table V), with Zipf reuse of
//!   a bounded per-family target pool;
//! * per-family **source city rosters** that evolve slowly week to week
//!   (Fig. 8's shift patterns) and control the dispersion series the
//!   ARIMA prediction consumes (Figs. 9–13, Table IV);
//! * collaboration injection: intra-family concurrent groups,
//!   Dirtjumper×Pandora long-term pairing, and the multistage consecutive
//!   chains of §V-B (including Ddoser's 22-attack chain on 2012-08-30);
//! * the 2012-08-30 Dirtjumper spike against one Russian subnet
//!   (983-attack peak day, §III-A).
//!
//! Everything is deterministic given [`SimConfig::seed`]; per-family
//! generation runs in parallel on `crossbeam` scoped threads with forked
//! RNG streams, so adding a family never perturbs another's randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod collab;
pub mod config;
pub mod feed;
pub mod generator;
pub mod profile;
pub mod roster;
pub mod schedule;

pub use config::SimConfig;
pub use generator::{generate, GeneratedTrace};
pub use profile::FamilyProfile;
