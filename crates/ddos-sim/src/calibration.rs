//! The paper's published numbers, collected in one place.
//!
//! Every constant here is traceable to a table, figure, or sentence of
//! the paper; the comment on each field cites the source. Where the paper
//! is internally inconsistent (it is a measurement paper with a few
//! typos — e.g. Aldibot's Table V top-5 sums to 63 while Table II gives
//! it 26 attacks; Pandora's Table V row repeats Optima's), the rule used
//! here is: **Table II totals are authoritative for attack counts** (they
//! sum exactly to the headline 50,704), and Table V provides *relative*
//! country preferences. EXPERIMENTS.md reports every deviation.

use ddos_schema::{Family, Protocol};

/// Calibrated per-family constants.
#[derive(Debug, Clone)]
pub struct FamilyCalibration {
    /// The family these constants describe.
    pub family: Family,
    /// Table II: exact attack count per transport category.
    pub protocol_counts: &'static [(Protocol, u32)],
    /// Table V top-5 target countries and attack counts (used as relative
    /// weights).
    pub target_prefs: &'static [(&'static str, u32)],
    /// Table V column 2: how many distinct countries the family targets.
    pub target_countries: usize,
    /// Number of botnet generations (sums to 674 with the inactive
    /// families — Table III).
    pub botnets: u32,
    /// Size of the family's bot pool (distinct infectable IPs; the
    /// *observed* count is emergent — Table III's 310,950 total).
    pub bot_pool: u32,
    /// Size of the family's victim pool (distinct target IPs; Table III's
    /// 9,026 total across families, §IV-B "Dirtjumper has a wider
    /// presence").
    pub target_pool: u32,
    /// Activity window: first day, last day (inclusive), duty cycle
    /// (probability a day inside the window is active). §III-A: Dirtjumper
    /// constant, Blackenergy ~1/3 of the period; Table IV: Darkshell too
    /// short to train.
    pub active: (usize, usize, f64),
    /// Interval mixture weights `[concurrent, 6–7 min, 20–40 min, 2–3 h,
    /// long tail]` (Figs. 3–5). Families with a 60 s floor (Aldibot,
    /// Optima — §III-B) put zero mass on `concurrent`.
    pub interval_weights: [f64; 5],
    /// Whether the family avoids intervals under 60 s (Fig. 5: Aldibot
    /// and Optima).
    pub min_interval_60s: bool,
    /// Log-normal duration: median seconds and sigma (Figs. 6–7; §V-A
    /// gives per-family means for the collaborating pair).
    pub duration_median_s: f64,
    /// Log-normal sigma of durations.
    pub duration_sigma: f64,
    /// Median attack magnitude (participating bot IPs).
    pub magnitude_median: f64,
    /// Countries the family's bots live in, with weights (drives Fig. 8
    /// regionalization and the dispersion scale of Figs. 9–11).
    pub home_countries: &'static [(&'static str, f64)],
    /// Probability an attack's sources all come from a single city —
    /// which, at city-level geolocation resolution, makes the snapshot
    /// exactly symmetric (the zero mode of Fig. 9; 76.7% for Pandora,
    /// 89.5% for Blackenergy per §IV-A).
    pub p_single_city: f64,
    /// Number of cities a multi-city attack draws from (2..=this).
    pub max_cities: usize,
    /// Fraction of a multi-city attack's bots that come from the
    /// secondary (stray) cities. Together with the home geography this
    /// sets the family's asymmetric-dispersion scale: the signed sum is
    /// ≈ magnitude × stray_share × inter-city distance (two-city mixes
    /// cancel exactly — the metric needs a non-collinear third point).
    pub stray_share: f64,
    /// Whether stray cities prefer a country different from the primary
    /// city's. Intercontinental families (Blackenergy) need foreign
    /// strays for their thousands-of-km dispersion; tightly regional
    /// families (Colddeath, ≈342 km) stay domestic.
    pub foreign_strays: bool,
    /// Per-attack probability that the family's secondary-city mix
    /// shifts. Rare shifts → a dispersion series ARIMA predicts well
    /// (Blackenergy 0.960 similarity) vs frequent shifts (Colddeath
    /// 0.809) — Table IV.
    pub city_shift_prob: f64,
    /// Weekly probability that recruitment opens a *new* country
    /// (Fig. 8's small right-hand bars).
    pub new_country_prob: f64,
}

impl FamilyCalibration {
    /// Total attacks (sum of Table II protocol counts).
    pub fn total_attacks(&self) -> u32 {
        self.protocol_counts.iter().map(|&(_, n)| n).sum()
    }
}

/// Table II / III / V constants for the ten active families.
pub const ACTIVE_FAMILIES: &[FamilyCalibration] = &[
    FamilyCalibration {
        family: Family::Aldibot,
        protocol_counts: &[(Protocol::Udp, 26)],
        target_prefs: &[("US", 32), ("FR", 11), ("ES", 8), ("VE", 8), ("DE", 4)],
        target_countries: 14,
        botnets: 8,
        bot_pool: 2_000,
        target_pool: 21,
        active: (70, 140, 0.30),
        interval_weights: [0.0, 0.25, 0.30, 0.30, 0.15],
        min_interval_60s: true,
        duration_median_s: 1_500.0,
        duration_sigma: 1.5,
        magnitude_median: 15.0,
        home_countries: &[("ES", 3.0), ("VE", 2.0), ("DE", 1.0), ("FR", 1.0)],
        p_single_city: 0.50,
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.05,
        new_country_prob: 0.05,
    },
    FamilyCalibration {
        family: Family::Blackenergy,
        protocol_counts: &[
            (Protocol::Http, 3_048),
            (Protocol::Tcp, 199),
            (Protocol::Udp, 71),
            (Protocol::Icmp, 147),
            (Protocol::Syn, 31),
        ],
        target_prefs: &[
            ("NL", 949),
            ("US", 820),
            ("SG", 729),
            ("RU", 262),
            ("DE", 219),
        ],
        target_countries: 20,
        botnets: 70,
        bot_pool: 45_000,
        target_pool: 850,
        active: (60, 130, 1.0), // ~1/3 of 207 days, §III-A
        interval_weights: [0.50, 0.14, 0.14, 0.13, 0.09],
        min_interval_60s: false,
        duration_median_s: 2_500.0,
        duration_sigma: 1.7,
        magnitude_median: 40.0,
        // Intercontinental bot base (RU/UA plus US/SG/NL footholds):
        // multi-city draws span continents, hence the ~4,300 km
        // asymmetric-dispersion mean of Fig. 11.
        home_countries: &[
            ("RU", 4.0),
            ("UA", 2.0),
            ("US", 1.0),
            ("SG", 0.5),
            ("NL", 1.0),
        ],
        p_single_city: 0.895, // §IV-A: 89.5% symmetric
        max_cities: 3,
        stray_share: 0.10,
        foreign_strays: true,
        city_shift_prob: 0.01, // rare shifts: the most predictable series (0.960)
        new_country_prob: 0.03,
    },
    FamilyCalibration {
        family: Family::Colddeath,
        protocol_counts: &[(Protocol::Http, 826)],
        target_prefs: &[
            ("IN", 801),
            ("PK", 345),
            ("BW", 125),
            ("TH", 117),
            ("ID", 112),
        ],
        target_countries: 16,
        botnets: 30,
        bot_pool: 12_000,
        target_pool: 365,
        active: (30, 150, 0.50),
        interval_weights: [0.38, 0.18, 0.18, 0.17, 0.09],
        min_interval_60s: false,
        duration_median_s: 1_700.0,
        duration_sigma: 1.6,
        magnitude_median: 25.0,
        // Tight South-Asian cluster: smallest dispersion mean (≈342 km,
        // Table IV) but the least predictable series (0.809).
        home_countries: &[("IN", 6.0), ("PK", 1.0), ("TH", 0.4), ("ID", 0.4)],
        p_single_city: 0.55,
        max_cities: 3,
        stray_share: 0.08,
        foreign_strays: false,
        city_shift_prob: 0.08,
        new_country_prob: 0.05,
    },
    FamilyCalibration {
        family: Family::Darkshell,
        protocol_counts: &[(Protocol::Http, 999), (Protocol::Undetermined, 1_530)],
        target_prefs: &[
            ("CN", 1_880),
            ("KR", 1_004),
            ("US", 694),
            ("HK", 385),
            ("JP", 86),
        ],
        target_countries: 13,
        botnets: 60,
        bot_pool: 25_000,
        target_pool: 730,
        active: (5, 17, 1.0), // short burst: excluded from Table IV
        interval_weights: [0.58, 0.13, 0.13, 0.09, 0.07],
        min_interval_60s: false,
        duration_median_s: 1_200.0,
        duration_sigma: 1.5,
        magnitude_median: 35.0,
        home_countries: &[("CN", 5.0), ("KR", 1.5), ("HK", 1.0)],
        p_single_city: 0.50,
        max_cities: 3,
        stray_share: 0.05,
        foreign_strays: true,
        city_shift_prob: 0.02,
        new_country_prob: 0.04,
    },
    FamilyCalibration {
        family: Family::Ddoser,
        protocol_counts: &[(Protocol::Udp, 126)],
        target_prefs: &[("MX", 452), ("VE", 191), ("UY", 83), ("CL", 66), ("US", 48)],
        target_countries: 19,
        botnets: 20,
        bot_pool: 5_000,
        target_pool: 76,
        active: (0, 60, 0.25),
        interval_weights: [0.58, 0.13, 0.13, 0.09, 0.07],
        min_interval_60s: false,
        duration_median_s: 300.0, // short bursts: chains of §V-B
        duration_sigma: 1.2,
        magnitude_median: 20.0,
        home_countries: &[("MX", 3.0), ("VE", 2.0), ("CL", 1.0), ("UY", 1.0)],
        p_single_city: 0.50,
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.03,
        new_country_prob: 0.05,
    },
    FamilyCalibration {
        family: Family::Dirtjumper,
        protocol_counts: &[(Protocol::Http, 34_620)],
        // RU's Table V count (8,391) includes the ~760 spike attacks
        // and the Pandora-pool collaboration targets, which this
        // generator injects separately — the *sampled* weight is reduced
        // so the measured total still lands at the published value.
        target_prefs: &[
            // US raised above its Table V row: the paper's overall US
            // total (13,738) exceeds the sum of the per-family top-5
            // rows, i.e. the unlisted remainder skews American; folding
            // that into Dirtjumper keeps the US-over-Russia gap.
            ("US", 11_000),
            ("RU", 7_300),
            ("DE", 3_750),
            ("UA", 3_412),
            ("NL", 1_626),
        ],
        target_countries: 71,
        botnets: 280,
        bot_pool: 168_000,
        target_pool: 6_700,    // "wider presence ... than any other family"
        active: (0, 206, 1.0), // constantly active, §III-A
        interval_weights: [0.72, 0.10, 0.09, 0.06, 0.03],
        min_interval_60s: false,
        duration_median_s: 1_600.0,
        duration_sigma: 1.8,
        magnitude_median: 30.0,
        home_countries: &[("RU", 4.5), ("UA", 2.5), ("US", 0.8), ("DE", 1.2)],
        p_single_city: 0.45, // Fig. 9: >40% zero dispersion
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.02, // similarity 0.848
        new_country_prob: 0.06,
    },
    FamilyCalibration {
        family: Family::Nitol,
        protocol_counts: &[(Protocol::Http, 591), (Protocol::Tcp, 345)],
        target_prefs: &[("CN", 778), ("US", 176), ("CA", 15), ("GB", 10), ("NL", 6)],
        target_countries: 12,
        botnets: 35,
        bot_pool: 9_000,
        target_pool: 305,
        active: (100, 125, 1.0), // bursty; least active with Aldibot (Fig. 5)
        // No exact-simultaneous mass: with Aldibot and Optima this keeps
        // the count of families exhibiting single-family simultaneous
        // attacks at seven (§III-B).
        interval_weights: [0.0, 0.30, 0.30, 0.25, 0.15],
        min_interval_60s: false,
        duration_median_s: 1_800.0,
        duration_sigma: 1.6,
        magnitude_median: 25.0,
        home_countries: &[("CN", 5.0), ("US", 1.0)],
        p_single_city: 0.55,
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.03,
        new_country_prob: 0.04,
    },
    FamilyCalibration {
        family: Family::Optima,
        protocol_counts: &[(Protocol::Http, 567), (Protocol::Unknown, 126)],
        target_prefs: &[("RU", 171), ("DE", 155), ("US", 123), ("UA", 9), ("KG", 7)],
        target_countries: 12,
        botnets: 30,
        bot_pool: 10_000,
        target_pool: 245,
        active: (20, 180, 0.50),
        interval_weights: [0.0, 0.30, 0.30, 0.25, 0.15],
        min_interval_60s: true, // Fig. 5: no intervals under 60 s
        duration_median_s: 2_000.0,
        duration_sigma: 1.7,
        magnitude_median: 30.0,
        // RU/DE/US triangle: continental spread, ≈3,500 km dispersion
        // (Table IV), normal-shaped (Fig. 9).
        home_countries: &[("RU", 3.0), ("DE", 2.0), ("US", 2.0), ("UA", 1.0)],
        p_single_city: 0.45,
        max_cities: 3,
        stray_share: 0.08,
        foreign_strays: true,
        city_shift_prob: 0.08, // similarity 0.941
        new_country_prob: 0.03,
    },
    FamilyCalibration {
        family: Family::Pandora,
        protocol_counts: &[(Protocol::Http, 6_906)],
        // Table V's Pandora row repeats Optima's values (paper typo);
        // kept as printed — RU-dominant either way.
        target_prefs: &[
            ("RU", 2_115),
            ("DE", 155),
            ("US", 123),
            ("UA", 9),
            ("KG", 7),
        ],
        target_countries: 43,
        botnets: 90,
        bot_pool: 55_000,
        target_pool: 1_100,
        active: (14, 200, 0.95),
        interval_weights: [0.55, 0.14, 0.12, 0.12, 0.07],
        min_interval_60s: false,
        duration_median_s: 4_200.0, // §V-A: 6,420 s mean in collaborations
        duration_sigma: 1.6,
        magnitude_median: 30.0,
        // Near-exclusively RU/BY/UA cities: small asymmetric dispersion
        // (≈566 km mean, Fig. 10).
        home_countries: &[("RU", 6.0), ("BY", 1.0), ("UA", 1.5)],
        p_single_city: 0.767, // §IV-A: 76.7% symmetric
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.002, // similarity 0.946
        new_country_prob: 0.04,
    },
    FamilyCalibration {
        family: Family::Yzf,
        protocol_counts: &[
            (Protocol::Http, 177),
            (Protocol::Tcp, 182),
            (Protocol::Udp, 187),
        ],
        target_prefs: &[("RU", 120), ("UA", 105), ("US", 65), ("DE", 39), ("NL", 19)],
        target_countries: 11,
        botnets: 25,
        bot_pool: 7_000,
        target_pool: 180,
        active: (40, 90, 1.0),
        interval_weights: [0.38, 0.18, 0.18, 0.17, 0.09],
        min_interval_60s: false,
        duration_median_s: 1_500.0,
        duration_sigma: 1.5,
        magnitude_median: 20.0,
        home_countries: &[("RU", 3.0), ("UA", 2.0)],
        p_single_city: 0.50,
        max_cities: 3,
        stray_share: 0.06,
        foreign_strays: true,
        city_shift_prob: 0.02,
        new_country_prob: 0.04,
    },
];

/// Botnet generations for the thirteen mostly-dormant families (2 each —
/// with the active families' 648 this reaches Table III's 674 total).
pub const INACTIVE_BOTNETS_PER_FAMILY: u32 = 2;

/// Bot-pool size for each dormant family (they contribute bot records but
/// no attacks).
pub const INACTIVE_BOT_POOL: u32 = 70;

/// §III-A: the 2012-08-30 spike — "The maximum number of simultaneous
/// DDoS attacks per day was 983 ... launched by Dirtjumper and the
/// targets were located in the same subnet in Russia."
pub const SPIKE_DAY: usize = 1; // day index from 2012-08-29
/// Extra Dirtjumper attacks injected on the spike day (on top of its
/// baseline rate) so the daily max lands near 983.
pub const SPIKE_EXTRA_ATTACKS: u32 = 760;

/// §V-B: Ddoser's longest consecutive chain — 22 attacks, > 18 minutes,
/// on 2012-08-30.
pub const DDOSER_CHAIN_LEN: usize = 22;

/// Intra-family concurrent collaboration groups to inject, per family
/// (Table VI row 1; counts there are qualifying *pairs*, which our
/// group/chain injection reproduces approximately — see EXPERIMENTS.md).
pub const INTRA_COLLAB_GROUPS: &[(Family, u32)] = &[
    (Family::Darkshell, 115),
    (Family::Ddoser, 30),
    (Family::Dirtjumper, 330),
    (Family::Nitol, 8),
    (Family::Optima, 1),
    (Family::Pandora, 5),
    (Family::Yzf, 30),
];

/// Inter-family pairs with matched durations (pass the ±30 min rule):
/// `(family_a, family_b, events)`. §V-A / Table VI: Dirtjumper×Pandora
/// dominates with 118 collaborations over 96 unique targets in 16
/// countries, lasting from October to December 2012.
pub const INTER_COLLAB_MATCHED: &[(Family, Family, u32)] = &[
    (Family::Dirtjumper, Family::Pandora, 118),
    (Family::Dirtjumper, Family::Blackenergy, 1),
    (Family::Dirtjumper, Family::Colddeath, 1),
    (Family::Dirtjumper, Family::Optima, 1),
];

/// Inter-family pairs that start simultaneously but differ in duration
/// (counted in §III-B's 956 multi-family concurrent events but filtered
/// out of Table VI): Dirtjumper+Blackenergy 391 and Dirtjumper+Pandora
/// 338 are quoted explicitly; the remainder spreads over other partners.
pub const INTER_COLLAB_UNMATCHED: &[(Family, Family, u32)] = &[
    (Family::Dirtjumper, Family::Blackenergy, 390),
    (Family::Dirtjumper, Family::Pandora, 220),
    (Family::Dirtjumper, Family::Darkshell, 98),
    (Family::Dirtjumper, Family::Nitol, 63),
    (Family::Dirtjumper, Family::Yzf, 64),
];

/// Consecutive-chain injection per family (§V-B: only Darkshell, Ddoser,
/// Dirtjumper and Nitol exhibit multistage attacks): `(family, chains,
/// min_len, max_len)`.
pub const CONSECUTIVE_CHAINS: &[(Family, u32, usize, usize)] = &[
    (Family::Darkshell, 30, 2, 6),
    (Family::Ddoser, 5, 3, 4),
    (Family::Dirtjumper, 50, 2, 8),
    (Family::Nitol, 5, 2, 3),
];

/// Looks up the calibration of an active family.
pub fn calibration_for(family: Family) -> Option<&'static FamilyCalibration> {
    ACTIVE_FAMILIES.iter().find(|c| c.family == family)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_totals_sum_to_headline() {
        let total: u32 = ACTIVE_FAMILIES.iter().map(|c| c.total_attacks()).sum();
        assert_eq!(total, 50_704, "Table II must sum to the paper headline");
    }

    #[test]
    fn per_family_totals_match_table_ii() {
        let expect = [
            (Family::Aldibot, 26),
            (Family::Blackenergy, 3_496),
            (Family::Colddeath, 826),
            (Family::Darkshell, 2_529),
            (Family::Ddoser, 126),
            (Family::Dirtjumper, 34_620),
            (Family::Nitol, 936),
            (Family::Optima, 693),
            (Family::Pandora, 6_906),
            (Family::Yzf, 546),
        ];
        for (family, n) in expect {
            assert_eq!(
                calibration_for(family).unwrap().total_attacks(),
                n,
                "{family}"
            );
        }
    }

    #[test]
    fn botnet_counts_reach_674() {
        let active: u32 = ACTIVE_FAMILIES.iter().map(|c| c.botnets).sum();
        let total = active + 13 * INACTIVE_BOTNETS_PER_FAMILY;
        assert_eq!(total, 674, "Table III: 674 botnet ids");
    }

    #[test]
    fn all_ten_active_families_calibrated_once() {
        assert_eq!(ACTIVE_FAMILIES.len(), 10);
        for f in Family::ACTIVE {
            assert!(calibration_for(f).is_some(), "{f} missing");
        }
        assert!(calibration_for(Family::Zemra).is_none());
    }

    #[test]
    fn bot_pools_approach_table_iii() {
        let total: u32 =
            ACTIVE_FAMILIES.iter().map(|c| c.bot_pool).sum::<u32>() + 13 * INACTIVE_BOT_POOL;
        // Table III: 310,950 distinct bot IPs. Pools bound the observable
        // count from above; keep them within a few percent.
        assert!(
            (320_000..=355_000).contains(&total),
            "pool total {total} far above 310,950 (pools carry ~8% headroom \
             because observation never saturates every city stream)"
        );
    }

    #[test]
    fn target_pools_approach_table_iii() {
        let total: u32 = ACTIVE_FAMILIES.iter().map(|c| c.target_pool).sum();
        // Table III: 9,026 target IPs; pools carry ~15% headroom because
        // Zipf-selected reuse leaves cold pool entries unobserved.
        assert!((9_500..=12_000).contains(&total), "target pool {total}");
    }

    #[test]
    fn interval_weights_are_distributions() {
        for c in ACTIVE_FAMILIES {
            let sum: f64 = c.interval_weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: weights sum {sum}", c.family);
            if c.min_interval_60s {
                assert_eq!(c.interval_weights[0], 0.0, "{}", c.family);
            }
        }
    }

    #[test]
    fn activity_windows_fit_the_trace() {
        for c in ACTIVE_FAMILIES {
            let (start, end, duty) = c.active;
            assert!(start <= end && end <= 206, "{}", c.family);
            assert!(duty > 0.0 && duty <= 1.0, "{}", c.family);
        }
        // Blackenergy ≈ 1/3 of the 207 days (§III-A).
        let be = calibration_for(Family::Blackenergy).unwrap();
        let days = (be.active.1 - be.active.0 + 1) as f64 * be.active.2;
        assert!((days / 207.0 - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn home_countries_resolve_in_registry() {
        for c in ACTIVE_FAMILIES {
            for (code, w) in c.home_countries {
                assert!(*w > 0.0);
                let cc = code.parse().unwrap();
                assert!(
                    ddos_geo::country::lookup(cc).is_some(),
                    "{}: unknown country {code}",
                    c.family
                );
            }
            for (code, _) in c.target_prefs {
                let cc = code.parse().unwrap();
                assert!(ddos_geo::country::lookup(cc).is_some(), "{code}");
            }
        }
    }

    #[test]
    fn collab_tables_reference_active_families() {
        for (f, n) in INTRA_COLLAB_GROUPS {
            assert!(f.is_active());
            assert!(*n > 0);
        }
        for (a, b, _) in INTER_COLLAB_MATCHED.iter().chain(INTER_COLLAB_UNMATCHED) {
            assert!(a.is_active() && b.is_active());
            assert_ne!(a, b);
        }
        let unmatched_total: u32 = INTER_COLLAB_UNMATCHED.iter().map(|&(_, _, n)| n).sum();
        let matched_total: u32 = INTER_COLLAB_MATCHED.iter().map(|&(_, _, n)| n).sum();
        // §III-B: 956 multi-family concurrent events in total.
        assert_eq!(matched_total + unmatched_total, 956);
    }
}
