//! Collaboration and multistage-chain injection planning.
//!
//! §V of the paper finds three coordinated behaviours, all injected here:
//!
//! * **intra-family concurrent groups** — 2–3 botnet generations of one
//!   family hitting the same target at (nearly) the same instant with
//!   equal magnitudes (Fig. 15: "for most bars along the same timestamp,
//!   they have the same height");
//! * **inter-family pairs** — two families attacking one target
//!   simultaneously; a calibrated subset also matches durations within
//!   30 minutes and therefore passes the Table VI collaboration rule
//!   (Dirtjumper×Pandora), while the rest only share the start instant
//!   (§III-B's 956 multi-family concurrent events);
//! * **consecutive chains** — back-to-back attacks on one target with
//!   gaps mostly under 10 s (Fig. 17), only ever within one family
//!   (§V-B), including Ddoser's 22-attack chain of 2012-08-30.

use ddos_stats::Rng;

/// The collaboration detection window on start times (§V: "within a 60
/// second timeframe").
pub const START_WINDOW_S: i64 = 60;

/// The collaboration detection window on durations (§V: "duration
/// difference is within half an hour").
pub const DURATION_WINDOW_S: i64 = 1_800;

/// Samples the start offset of a collaborating partner attack:
/// simultaneous for most, within the 60 s window for the rest.
pub fn partner_start_offset(rng: &mut Rng) -> i64 {
    if rng.chance(0.85) {
        0
    } else {
        rng.below(START_WINDOW_S as u64) as i64
    }
}

/// Samples a partner duration that *passes* the ±30 min rule.
pub fn matched_duration(base: i64, rng: &mut Rng) -> i64 {
    let delta = rng.below(2 * (DURATION_WINDOW_S as u64) - 200) as i64 - (DURATION_WINDOW_S - 100);
    (base + delta).max(10)
}

/// Samples a partner duration that *fails* the ±30 min rule (for the
/// simultaneous-start-only events of §III-B).
pub fn unmatched_duration(base: i64, rng: &mut Rng) -> i64 {
    let delta = DURATION_WINDOW_S + 300 + rng.below(18_000) as i64;
    if rng.chance(0.5) || base <= delta + 10 {
        base + delta
    } else {
        base - delta
    }
}

/// Samples an intra-family group size (mean ≈ 2.2, matching the paper's
/// "average number of botnets involved in the collaboration is 2.19").
pub fn group_size(rng: &mut Rng) -> usize {
    if rng.chance(0.8) {
        2
    } else {
        3
    }
}

/// Samples the gap between two consecutive chain attacks (Fig. 17: ~65%
/// within 10 s, ~80% within 30 s; the paper's rule allows up to 60 s and
/// small overlaps).
pub fn chain_gap(rng: &mut Rng) -> i64 {
    let u = rng.f64();
    if u < 0.65 {
        rng.below(10) as i64
    } else if u < 0.80 {
        10 + rng.below(20) as i64
    } else if u < 0.95 {
        30 + rng.below(30) as i64
    } else {
        // Small overlap ("60 second margin over overlap").
        -(rng.below(5) as i64)
    }
}

/// Duration of one link in a chain: short bursts so a 22-attack chain
/// spans tens of minutes, like Ddoser's 18-minute chain.
pub fn chain_link_duration(rng: &mut Rng) -> i64 {
    20 + rng.below(60) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_offsets_stay_in_window() {
        let mut rng = Rng::new(1);
        let mut zeros = 0;
        for _ in 0..2_000 {
            let off = partner_start_offset(&mut rng);
            assert!((0..START_WINDOW_S).contains(&off));
            if off == 0 {
                zeros += 1;
            }
        }
        assert!(zeros > 1_500, "{zeros} exact-simultaneous");
    }

    #[test]
    fn matched_durations_pass_the_rule() {
        let mut rng = Rng::new(2);
        for _ in 0..2_000 {
            let base = 5_083;
            let d = matched_duration(base, &mut rng);
            assert!(d > 0);
            assert!((d - base).abs() <= DURATION_WINDOW_S, "diff {}", d - base);
        }
    }

    #[test]
    fn unmatched_durations_fail_the_rule() {
        let mut rng = Rng::new(3);
        for _ in 0..2_000 {
            let base = 5_083;
            let d = unmatched_duration(base, &mut rng);
            assert!(d > 0);
            assert!((d - base).abs() > DURATION_WINDOW_S, "diff {}", d - base);
        }
    }

    #[test]
    fn group_sizes_average_near_paper() {
        let mut rng = Rng::new(4);
        let n = 10_000;
        let sum: usize = (0..n).map(|_| group_size(&mut rng)).sum();
        let avg = sum as f64 / n as f64;
        assert!((avg - 2.2).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn chain_gaps_match_fig_17_shape() {
        let mut rng = Rng::new(5);
        let gaps: Vec<i64> = (0..20_000).map(|_| chain_gap(&mut rng)).collect();
        let frac = |pred: &dyn Fn(i64) -> bool| {
            gaps.iter().filter(|&&g| pred(g)).count() as f64 / gaps.len() as f64
        };
        let under10 = frac(&|g| g < 10);
        let under30 = frac(&|g| g < 30);
        assert!(under10 > 0.6, "under 10 s: {under10}");
        assert!(under30 > 0.75, "under 30 s: {under30}");
        assert!(gaps.iter().all(|&g| (-5..60).contains(&g)));
    }

    #[test]
    fn chain_links_are_short() {
        let mut rng = Rng::new(6);
        for _ in 0..1_000 {
            let d = chain_link_duration(&mut rng);
            assert!((20..80).contains(&d));
        }
        // A 22-link chain spans roughly the paper's 18 minutes.
        let mut rng = Rng::new(7);
        let total: i64 = (0..22)
            .map(|_| chain_link_duration(&mut rng) + chain_gap(&mut rng).max(0))
            .sum();
        assert!((600..2_400).contains(&total), "chain span {total} s");
    }
}
