//! Weekly source rosters and the attack-source sampler.
//!
//! Two paper behaviours live here:
//!
//! * **Shift patterns (Fig. 8)** — each family's bot population sits in a
//!   roster of cities drawn from its home countries; week over week the
//!   roster mostly persists (shifts within existing countries, the big
//!   left bars) and only occasionally recruits a city in a *new* country
//!   (the small right bars).
//! * **Dispersion structure (Figs. 9–13)** — attack sources are drawn
//!   either from a single city (at city-level geolocation resolution the
//!   population is then exactly symmetric: dispersion 0) or from a slowly
//!   changing mix of 2–4 cities. Because the mix persists across many
//!   attacks and shifts rarely, the per-attack dispersion series is
//!   strongly autocorrelated — which is precisely what makes the paper's
//!   ARIMA forecasts accurate for stable families (Table IV).

use std::collections::HashSet;

use ddos_geo::GeoDb;
use ddos_schema::{CityId, CountryCode, IpAddr4};
use ddos_stats::Rng;

use crate::profile::FamilyProfile;

/// One week of a family's source roster.
#[derive(Debug, Clone)]
pub struct WeekState {
    /// Cities hosting bots this week.
    pub cities: Vec<CityId>,
    /// Cities (subset of `cities`) whose *country* was first seen this
    /// week — Fig. 8's "new countries" cluster.
    pub new_country_cities: Vec<CityId>,
}

/// A family's roster over all weeks of the window.
#[derive(Debug, Clone)]
pub struct Roster {
    weeks: Vec<WeekState>,
    /// Bots available per city (indices into the deterministic per-city
    /// IP streams).
    pub pool_per_city: u64,
}

impl Roster {
    /// Builds the weekly roster for a family.
    pub fn build(profile: &FamilyProfile, geo: &GeoDb, num_weeks: usize, rng: &mut Rng) -> Roster {
        let home = profile.home_cities(geo);
        assert!(!home.is_empty(), "family without home cities");
        let pool_per_city = (u64::from(profile.bot_pool) / home.len() as u64).max(50);

        let mut seen_countries: HashSet<CountryCode> = home
            .iter()
            .map(|&c| geo.city(c).expect("home city").country)
            .collect();
        // Start with most of the home roster active.
        let mut current: Vec<CityId> = home.clone();
        let mut weeks = Vec::with_capacity(num_weeks);
        for _ in 0..num_weeks {
            let mut new_country_cities = Vec::new();
            // Churn: occasionally drop and re-add a home city (intra-
            // country shift; population keeps moving inside the same
            // footprint).
            if current.len() > 2 && rng.chance(0.3) {
                let i = rng.below(current.len() as u64) as usize;
                current.remove(i);
            }
            if current.len() < home.len() && rng.chance(0.5) {
                let missing: Vec<CityId> = home
                    .iter()
                    .copied()
                    .filter(|c| !current.contains(c))
                    .collect();
                if !missing.is_empty() {
                    current.push(*rng.choose(&missing));
                }
            }
            // Rare new-country recruitment.
            if rng.chance(profile.cal.new_country_prob) {
                if let Some(city) = pick_new_country_city(geo, &seen_countries, rng) {
                    seen_countries.insert(geo.city(city).expect("picked city").country);
                    current.push(city);
                    new_country_cities.push(city);
                }
            }
            weeks.push(WeekState {
                cities: current.clone(),
                new_country_cities,
            });
        }
        Roster {
            weeks,
            pool_per_city,
        }
    }

    /// The roster for a week (clamped to the last built week).
    pub fn week(&self, w: usize) -> &WeekState {
        &self.weeks[w.min(self.weeks.len() - 1)]
    }

    /// Number of weeks built.
    pub fn num_weeks(&self) -> usize {
        self.weeks.len()
    }
}

/// Scores a city mix's dispersion geometry: the signed-sum value of a
/// reference population (eight bots in the primary, one per stray city)
/// relative to the mean stray distance. Near zero means the mix cancels.
fn mix_quality(geo: &GeoDb, primary: CityId, secondary: &[CityId]) -> f64 {
    let Some(p) = geo.city(primary) else {
        return 0.0;
    };
    let mut pts: Vec<ddos_schema::LatLon> = vec![p.coords; 8];
    let mut dist_sum = 0.0;
    for &c in secondary {
        let Some(ci) = geo.city(c) else { continue };
        pts.push(ci.coords);
        dist_sum += ddos_geo::distance_km(p.coords, ci.coords);
    }
    if pts.len() <= 8 || dist_sum <= 0.0 {
        return 0.0;
    }
    let mean_dist = dist_sum / secondary.len() as f64;
    match ddos_geo::dispersion(&pts) {
        Some(d) => d.value() / mean_dist.max(1.0),
        None => 0.0,
    }
}

fn pick_new_country_city(
    geo: &GeoDb,
    seen: &HashSet<CountryCode>,
    rng: &mut Rng,
) -> Option<CityId> {
    // A few tries at random registry countries not seen yet.
    for _ in 0..8 {
        let info = &ddos_geo::COUNTRIES[rng.below(ddos_geo::COUNTRIES.len() as u64) as usize];
        if seen.contains(&info.code) {
            continue;
        }
        let cities = geo.cities_in(info.code);
        if !cities.is_empty() {
            return Some(rng.choose(cities).id);
        }
    }
    None
}

/// Stateful per-family source sampler.
///
/// Holds the current city mix; the mix shifts with the calibrated
/// per-attack probability, giving the dispersion series its
/// piecewise-stationary structure.
#[derive(Debug)]
pub struct SourceSampler {
    primary: CityId,
    secondary: Vec<CityId>,
    salt: u64,
}

impl SourceSampler {
    /// Creates a sampler positioned on an initial mix from week 0.
    pub fn new(
        profile: &FamilyProfile,
        roster: &Roster,
        geo: &GeoDb,
        rng: &mut Rng,
    ) -> SourceSampler {
        let week0 = roster.week(0);
        let primary = *rng.choose(&week0.cities);
        let mut s = SourceSampler {
            primary,
            secondary: Vec::new(),
            salt: rng.next_u64(),
        };
        s.reshuffle_secondary(profile, week0, geo, rng);
        s
    }

    fn reshuffle_secondary(
        &mut self,
        profile: &FamilyProfile,
        week: &WeekState,
        geo: &GeoDb,
        rng: &mut Rng,
    ) {
        // Aim for two secondaries: the dispersion metric cancels exactly
        // on collinear (two-city) populations, so asymmetric snapshots
        // need a non-collinear third point. Prefer cities in a country
        // other than the primary's — this pins the dispersion scale to
        // the family's inter-country geography (regional for Pandora,
        // intercontinental for Blackenergy) rather than to the luck of a
        // same-country draw.
        let want = (profile.cal.max_cities - 1).max(3);
        let primary_cc = geo.city(self.primary).map(|c| c.country);
        // Draw candidate mixes, preferring foreign cities, and keep the
        // first whose geometry does not cancel: a mix whose strays sit
        // east-west symmetric around the primary scores ~0 under the
        // signed metric regardless of distance, which would make the
        // family's dispersion level collapse for the whole regime.
        let mut best: (f64, Vec<CityId>) = (-1.0, Vec::new());
        for round in 0..6 {
            let mut candidate: Vec<CityId> = Vec::with_capacity(want);
            for attempt in 0..want * 8 {
                if candidate.len() >= want {
                    break;
                }
                let c = *rng.choose(&week.cities);
                let country_ok = if profile.cal.foreign_strays {
                    geo.city(c)
                        .map(|ci| Some(ci.country) != primary_cc)
                        .unwrap_or(true)
                } else {
                    geo.city(c)
                        .map(|ci| Some(ci.country) == primary_cc)
                        .unwrap_or(false)
                };
                if c != self.primary
                    && !candidate.contains(&c)
                    && (country_ok || attempt >= want * 4)
                {
                    candidate.push(c);
                }
            }
            if candidate.is_empty() {
                continue;
            }
            let q = mix_quality(geo, self.primary, &candidate);
            if q > best.0 {
                best = (q, candidate);
            }
            if best.0 > 0.25 && round >= 1 {
                break;
            }
        }
        self.secondary = best.1;
    }

    /// Draws the source IPs of one attack.
    ///
    /// With the calibrated single-city probability all sources come from
    /// the primary city (symmetric snapshot); otherwise ~65% come from
    /// the primary and the rest from the current secondary mix.
    pub fn sources(
        &mut self,
        profile: &FamilyProfile,
        roster: &Roster,
        geo: &GeoDb,
        week: usize,
        magnitude: usize,
        rng: &mut Rng,
    ) -> Vec<IpAddr4> {
        let week_state = roster.week(week);
        // Keep the mix anchored to cities that are still on the roster.
        if !week_state.cities.contains(&self.primary) {
            self.primary = *rng.choose(&week_state.cities);
            self.reshuffle_secondary(profile, week_state, geo, rng);
        } else if rng.chance(profile.cal.city_shift_prob) {
            self.reshuffle_secondary(profile, week_state, geo, rng);
            // Primary shifts five times less often than the secondary mix.
            if rng.chance(0.2) {
                self.primary = *rng.choose(&week_state.cities);
            }
        }

        let single = rng.chance(profile.cal.p_single_city) || self.secondary.is_empty();
        let mut out = Vec::with_capacity(magnitude);
        if single {
            for _ in 0..magnitude {
                out.push(self.draw_bot(geo, roster, self.primary, rng));
            }
        } else {
            // A small stray contingent from the secondary cities; the
            // bulk stays in the primary. The stray count follows the
            // magnitude level, so the dispersion series inherits the
            // magnitude process's persistence.
            // At least two strays: a single stray city is collinear with
            // the primary and cancels exactly under the signed metric.
            let strays = (((magnitude as f64) * profile.cal.stray_share).round() as usize)
                .clamp(3, magnitude.saturating_sub(2).max(3));
            let n_primary = magnitude - strays;
            for _ in 0..n_primary {
                out.push(self.draw_bot(geo, roster, self.primary, rng));
            }
            for i in 0..strays {
                let c = self.secondary[i % self.secondary.len()];
                out.push(self.draw_bot(geo, roster, c, rng));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Samples `n` roster bots for a population snapshot.
    pub fn snapshot_sample(
        &self,
        roster: &Roster,
        geo: &GeoDb,
        week: usize,
        n: usize,
        rng: &mut Rng,
    ) -> Vec<IpAddr4> {
        let week_state = roster.week(week);
        (0..n)
            .map(|_| {
                let c = *rng.choose(&week_state.cities);
                self.draw_bot(geo, roster, c, rng)
            })
            .collect()
    }

    fn draw_bot(&self, geo: &GeoDb, roster: &Roster, city: CityId, rng: &mut Rng) -> IpAddr4 {
        let k = rng.below(roster.pool_per_city) ^ self.salt.wrapping_mul(u64::from(city.0) | 1);
        geo.ip_in_city(city, k)
            .expect("roster cities always have allocated space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibration_for;
    use crate::config::SimConfig;
    use ddos_geo::GeoConfig;
    use ddos_schema::Family;

    fn setup(family: Family) -> (GeoDb, FamilyProfile, Roster) {
        let geo = GeoDb::synthesize(&GeoConfig {
            city_scale: 2.0,
            max_cities_per_country: 20,
            ..GeoConfig::default()
        });
        let config = SimConfig::small();
        let mut rng = Rng::new(3).fork(family.index() as u64);
        let profile = FamilyProfile::resolve(calibration_for(family).unwrap(), &config, &mut rng);
        let roster = Roster::build(&profile, &geo, 30, &mut rng);
        (geo, profile, roster)
    }

    #[test]
    fn roster_covers_all_weeks() {
        let (_, _, roster) = setup(Family::Dirtjumper);
        assert_eq!(roster.num_weeks(), 30);
        for w in 0..30 {
            assert!(!roster.week(w).cities.is_empty());
        }
        // Clamping: asking past the end returns the last week.
        assert_eq!(roster.week(999).cities, roster.week(29).cities);
    }

    #[test]
    fn roster_stays_in_home_countries_mostly() {
        let (geo, profile, roster) = setup(Family::Pandora);
        let home: HashSet<CountryCode> = profile.home_countries.iter().map(|&(c, _)| c).collect();
        let mut in_home = 0;
        let mut total = 0;
        for w in 0..roster.num_weeks() {
            for &c in &roster.week(w).cities {
                total += 1;
                if home.contains(&geo.city(c).unwrap().country) {
                    in_home += 1;
                }
            }
        }
        assert!(
            in_home as f64 / total as f64 > 0.8,
            "{in_home}/{total} in home countries"
        );
    }

    #[test]
    fn new_country_weeks_are_rare() {
        let (_, _, roster) = setup(Family::Dirtjumper);
        let new_weeks = (0..roster.num_weeks())
            .filter(|&w| !roster.week(w).new_country_cities.is_empty())
            .count();
        assert!(
            new_weeks <= roster.num_weeks() / 2,
            "{new_weeks} new-country weeks"
        );
    }

    #[test]
    fn single_city_attacks_have_one_location() {
        let (geo, profile, roster) = setup(Family::Blackenergy);
        let mut rng = Rng::new(9);
        let mut sampler = SourceSampler::new(&profile, &roster, &geo, &mut rng);
        // Blackenergy p_single = 0.895: most draws must be single-city.
        let mut single = 0;
        for _ in 0..200 {
            let ips = sampler.sources(&profile, &roster, &geo, 0, 30, &mut rng);
            let cities: HashSet<_> = ips.iter().map(|&ip| geo.lookup(ip).unwrap().city).collect();
            if cities.len() == 1 {
                single += 1;
            }
        }
        assert!(single > 150, "only {single}/200 single-city");
    }

    #[test]
    fn multi_city_family_spans_cities() {
        let (geo, profile, roster) = setup(Family::Dirtjumper);
        let mut rng = Rng::new(10);
        let mut sampler = SourceSampler::new(&profile, &roster, &geo, &mut rng);
        let mut multi = 0;
        for _ in 0..200 {
            let ips = sampler.sources(&profile, &roster, &geo, 3, 40, &mut rng);
            let cities: HashSet<_> = ips.iter().map(|&ip| geo.lookup(ip).unwrap().city).collect();
            if cities.len() > 1 {
                multi += 1;
            }
        }
        // Dirtjumper p_single = 0.45 → roughly half multi-city.
        assert!((60..=160).contains(&multi), "{multi}/200 multi-city");
    }

    #[test]
    fn sources_are_deduplicated() {
        let (geo, profile, roster) = setup(Family::Yzf);
        let mut rng = Rng::new(11);
        let mut sampler = SourceSampler::new(&profile, &roster, &geo, &mut rng);
        let ips = sampler.sources(&profile, &roster, &geo, 0, 50, &mut rng);
        let set: HashSet<_> = ips.iter().collect();
        assert_eq!(set.len(), ips.len());
        assert!(!ips.is_empty());
    }

    #[test]
    fn snapshot_sample_sizes() {
        let (geo, profile, roster) = setup(Family::Optima);
        let mut rng = Rng::new(12);
        let sampler = SourceSampler::new(&profile, &roster, &geo, &mut rng);
        let ips = sampler.snapshot_sample(&roster, &geo, 2, 25, &mut rng);
        assert_eq!(ips.len(), 25);
    }
}
