//! The trace generator: assembles a full [`Dataset`] from the calibrated
//! family models.
//!
//! Pipeline (all deterministic from [`SimConfig::seed`]):
//!
//! 1. synthesize the world ([`GeoDb`]);
//! 2. resolve per-family profiles and plan inter-family collaboration
//!    events (serial pre-pass, so both participants agree on target and
//!    timing);
//! 3. generate each family's attacks in parallel (`crossbeam` scope, one
//!    forked RNG stream per family): regular schedule, intra-family
//!    groups, consecutive chains, the Dirtjumper spike day, sources,
//!    per-family hourly snapshots;
//! 4. merge, assign global attack ids in time order, derive `Botlist`
//!    and `Botnetlist` records, and build the indexed dataset.

use std::collections::HashMap;

use ddos_geo::GeoDb;
use ddos_schema::record::Location;
use ddos_schema::snapshot::{BotPresence, HourlySnapshot};
use ddos_schema::{
    AttackRecord, BotRecord, BotnetId, BotnetRecord, Dataset, DatasetBuilder, DdosId, Family,
    IpAddr4, Protocol, Seconds, SnapshotSeries, Timestamp,
};
use ddos_stats::dist::Zipf;
use ddos_stats::Rng;

use crate::calibration::{
    FamilyCalibration, ACTIVE_FAMILIES, CONSECUTIVE_CHAINS, DDOSER_CHAIN_LEN,
    INACTIVE_BOTNETS_PER_FAMILY, INACTIVE_BOT_POOL, INTER_COLLAB_MATCHED, INTER_COLLAB_UNMATCHED,
    INTRA_COLLAB_GROUPS, SPIKE_DAY, SPIKE_EXTRA_ATTACKS,
};
use crate::collab;
use crate::config::SimConfig;
use crate::profile::FamilyProfile;
use crate::roster::{Roster, SourceSampler};
use crate::schedule::{
    allocate_daily_counts, day_start_times, sample_duration, IntervalSampler, MagnitudeProcess,
};

/// A generated trace: the dataset plus the world it was geolocated
/// against (needed to resolve org/city names in reports).
pub struct GeneratedTrace {
    /// The joined, indexed dataset.
    pub dataset: Dataset,
    /// The synthetic world used for geolocation.
    pub geo: GeoDb,
}

/// An attack planned by the inter-family pre-pass, to be materialized by
/// the owning family's worker.
#[derive(Debug, Clone)]
struct PreAttack {
    start: Timestamp,
    duration: Seconds,
    magnitude: usize,
    target_ip: IpAddr4,
    target: Location,
}

/// One victim in a family's pool.
#[derive(Debug, Clone, Copy)]
struct Target {
    ip: IpAddr4,
    loc: Location,
}

/// Everything a family worker produces.
struct FamilyOutput {
    family: Family,
    attacks: Vec<AttackRecord>,
    bots: HashMap<IpAddr4, (Timestamp, Timestamp)>,
    snapshots: Option<SnapshotSeries>,
}

/// Generates a full trace from the configuration.
pub fn generate(config: &SimConfig) -> GeneratedTrace {
    let geo = GeoDb::synthesize(&config.geo);
    let root = Rng::new(config.seed);

    // Resolve profiles with per-family forked streams.
    let profiles: Vec<FamilyProfile> = ACTIVE_FAMILIES
        .iter()
        .map(|cal| {
            let mut rng = root.fork(cal.family.index() as u64);
            FamilyProfile::resolve(cal, config, &mut rng)
        })
        .collect();

    // Global botnet-id ranges, stable across runs: actives first.
    let mut botnet_base = HashMap::new();
    let mut next_id: u32 = 1;
    for p in &profiles {
        botnet_base.insert(p.family(), next_id);
        next_id += p.botnets;
    }
    let inactive_base = next_id;

    // Serial pre-pass: plan inter-family collaboration events.
    let mut pre: HashMap<Family, Vec<PreAttack>> = HashMap::new();
    if config.collaborations {
        let mut rng = root.fork(0xC0_11AB);
        plan_inter_family(config, &profiles, &geo, &mut rng, &mut pre);
    }

    // Parallel per-family generation.
    let mut outputs: Vec<FamilyOutput> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = profiles
            .iter()
            .map(|profile| {
                let geo = &geo;
                let pre = pre.remove(&profile.family()).unwrap_or_default();
                let base = botnet_base[&profile.family()];
                let rng = root.fork(0x0F00_0000 | profile.family().index() as u64);
                scope.spawn(move |_| run_family(profile, geo, config, pre, base, rng))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("family worker panicked"))
            .collect()
    })
    .expect("generation scope");
    outputs.sort_by_key(|o| o.family.index());

    assemble(config, &geo, &profiles, outputs, inactive_base, &root)
        .map(|dataset| GeneratedTrace { dataset, geo })
        .expect("generated trace must be valid")
}

/// Plans the inter-family events of §III-B / §V-A.
fn plan_inter_family(
    config: &SimConfig,
    profiles: &[FamilyProfile],
    geo: &GeoDb,
    rng: &mut Rng,
    pre: &mut HashMap<Family, Vec<PreAttack>>,
) {
    let profile_of = |f: Family| profiles.iter().find(|p| p.family() == f).expect("active");

    // Dirtjumper×Pandora targets: "96 unique targets ... in 16 countries";
    // build a bounded shared pool so targets repeat across the 118 events.
    let mut shared_pools: HashMap<(Family, Family), Vec<Target>> = HashMap::new();

    let mut plan = |a: Family, b: Family, events: u32, matched: bool, rng: &mut Rng| {
        let pa = profile_of(a);
        let pb = profile_of(b);
        // Days both families are active; the flagship Dirtjumper×Pandora
        // collaboration is confined to Oct–Dec 2012 (§V-A), days 33..=124.
        let mut days: Vec<usize> = pa
            .active_days
            .iter()
            .copied()
            .filter(|d| pb.active_days.contains(d))
            .collect();
        if matched && a == Family::Dirtjumper && b == Family::Pandora {
            let confined: Vec<usize> = days
                .iter()
                .copied()
                .filter(|d| (33..=124).contains(d))
                .collect();
            if !confined.is_empty() {
                days = confined;
            }
        }
        if days.is_empty() {
            return; // no overlap at this scale; the event count is reported as measured
        }
        let pool = shared_pools.entry((a, b)).or_insert_with(|| {
            let n = if matched {
                config.scaled(96).max(4)
            } else {
                64
            } as usize;
            // §V-A: the 96 Dirtjumper×Pandora targets spread over 58
            // organizations in 16 countries — much thinner per org than
            // a family's regular victim pool.
            build_target_pool_with(pb, geo, n, (n * 3 / 5).max(3), rng)
        });
        if pool.is_empty() {
            return;
        }
        for _ in 0..config.scaled(events) {
            let day = *rng.choose(&days);
            let t0 = config.window.day_start(day) + Seconds(rng.below(80_000) as i64);
            let target = *rng.choose(&pool[..]);
            // Durations floored at 150 s: a sub-minute partner attack
            // would read as a consecutive *chain* across families, which
            // the paper never observes (§V-B).
            let dur_a = sample_duration(pa, rng).get().max(150);
            let dur_b = if matched {
                collab::matched_duration(dur_a, rng).max(150)
            } else {
                collab::unmatched_duration(dur_a, rng).max(150)
            };
            let mag = 4 + rng.below(60) as usize;
            let offset = collab::partner_start_offset(rng);
            pre.entry(a).or_default().push(PreAttack {
                start: t0,
                duration: Seconds(dur_a),
                magnitude: mag,
                target_ip: target.ip,
                target: target.loc,
            });
            pre.entry(b).or_default().push(PreAttack {
                start: t0 + Seconds(offset),
                duration: Seconds(dur_b),
                // Fig. 16: magnitudes of the two families "almost equal".
                magnitude: (mag as i64 + rng.below(7) as i64 - 3).max(4) as usize,
                target_ip: target.ip,
                target: target.loc,
            });
        }
    };

    for &(a, b, n) in INTER_COLLAB_MATCHED {
        plan(a, b, n, true, rng);
    }
    for &(a, b, n) in INTER_COLLAB_UNMATCHED {
        plan(a, b, n, false, rng);
    }
}

/// Builds a family's victim pool: organizations in its preferred
/// countries, biased toward infrastructure (§IV-B: hosting, cloud, data
/// centers, registrars, backbones).
///
/// Targets cluster inside a bounded set of organizations — the paper's
/// victims are "narrowly distributed within several organizations"
/// (§IV-B): 9,026 IPs over only 1,074 organizations.
fn build_target_pool(profile: &FamilyProfile, geo: &GeoDb, n: usize, rng: &mut Rng) -> Vec<Target> {
    // ~8 victim IPs per organization on average (9,026 IPs over 1,074
    // orgs, Table III).
    build_target_pool_with(profile, geo, n, (n / 8).max(3), rng)
}

fn build_target_pool_with(
    profile: &FamilyProfile,
    geo: &GeoDb,
    n: usize,
    org_budget: usize,
    rng: &mut Rng,
) -> Vec<Target> {
    let mut victim_orgs: Vec<ddos_schema::OrgId> = Vec::with_capacity(org_budget);
    let mut attempts = 0;
    while victim_orgs.len() < org_budget && attempts < org_budget * 10 {
        attempts += 1;
        let country = profile.sample_target_country(rng);
        let orgs: Vec<&ddos_geo::OrgInfo> = geo.orgs_in(country).collect();
        if orgs.is_empty() {
            continue;
        }
        let infra: Vec<&&ddos_geo::OrgInfo> =
            orgs.iter().filter(|o| o.kind.is_infrastructure()).collect();
        let org = if !infra.is_empty() && rng.chance(0.8) {
            **rng.choose(&infra)
        } else {
            *rng.choose(&orgs)
        };
        if !victim_orgs.contains(&org.id) {
            victim_orgs.push(org.id);
        }
    }
    // Then draw the victim addresses from those organizations.
    let mut pool = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0;
    while pool.len() < n && attempts < n * 8 && !victim_orgs.is_empty() {
        attempts += 1;
        let org = *rng.choose(&victim_orgs);
        let ip = match geo.ip_in_org(org, rng.next_u64()) {
            Some(ip) => ip,
            None => continue,
        };
        if !seen.insert(ip) {
            continue;
        }
        let loc = geo.lookup(ip).expect("allocated address resolves");
        pool.push(Target { ip, loc });
    }
    // Zipf selection concentrates a few percent of all attacks on the
    // top-ranked pool entries, so those ranks must sit in the family's
    // *preferred* countries (the paper's hottest targets live in the
    // Table V leaders). Sort by country preference with a little jitter
    // so the hot set is not a single country.
    let weight_of = |cc: ddos_schema::CountryCode| {
        profile
            .target_countries
            .iter()
            .find(|&&(code, _)| code == cc)
            .map_or(0.0, |&(_, w)| w)
    };
    // The pool's *composition* is already preference-proportional (the
    // org set was sampled from the country distribution); what matters
    // is the *order*, because Zipf selection concentrates attacks on the
    // first ranks. Stride-interleave by country weight (the i-th entry
    // of country c gets key (i + jitter)/w_c) so every prefix of the
    // pool is proportional to the preferences — the hot target set then
    // mirrors Table V instead of one lucky country.
    let mut seen_per_country: HashMap<ddos_schema::CountryCode, u32> = HashMap::new();
    let mut keyed: Vec<(f64, Target)> = pool
        .into_iter()
        .map(|t| {
            let w = weight_of(t.loc.country).max(1e-6);
            let k = seen_per_country.entry(t.loc.country).or_insert(0);
            let key = (f64::from(*k) + rng.f64()) / w;
            *k += 1;
            (key, t)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
    keyed.into_iter().map(|(_, t)| t).collect()
}

/// Per-family generation worker.
fn run_family(
    profile: &FamilyProfile,
    geo: &GeoDb,
    config: &SimConfig,
    pre: Vec<PreAttack>,
    botnet_base: u32,
    mut rng: Rng,
) -> FamilyOutput {
    let family = profile.family();
    let total = profile.total_attacks as usize;
    let num_weeks = config.window.num_weeks();
    let roster = Roster::build(profile, geo, num_weeks, &mut rng);
    let mut sampler = SourceSampler::new(profile, &roster, geo, &mut rng);
    let mut magnitude_process = MagnitudeProcess::new(profile, &mut rng);
    let targets = build_target_pool(profile, geo, profile.target_pool as usize, &mut rng);
    assert!(!targets.is_empty(), "{family}: empty target pool");
    let target_zipf = Zipf::new(targets.len(), 0.75);

    // --- plan injections within the budget --------------------------------
    let mut pre = pre;
    pre.truncate(total); // inter-family events never exceed the budget
    let mut budget = total - pre.len();

    // Consecutive chains (§V-B).
    let mut chain_plan: Vec<usize> = Vec::new();
    if config.chains {
        if let Some(&(_, chains, lo, hi)) = CONSECUTIVE_CHAINS.iter().find(|&&(f, ..)| f == family)
        {
            if family == Family::Ddoser && budget >= DDOSER_CHAIN_LEN {
                chain_plan.push(DDOSER_CHAIN_LEN); // the 22-attack chain
                budget -= DDOSER_CHAIN_LEN;
            }
            for _ in 0..config.scaled(chains) {
                let len = rng.range_inclusive(lo as u64, hi as u64) as usize;
                if budget < len + 1 {
                    break;
                }
                chain_plan.push(len);
                budget -= len;
            }
        }
    }

    // Intra-family concurrent groups (§V-A).
    let mut group_plan: Vec<usize> = Vec::new();
    if config.collaborations && profile.botnets >= 2 {
        if let Some(&(_, groups)) = INTRA_COLLAB_GROUPS.iter().find(|&&(f, _)| f == family) {
            for _ in 0..config.scaled(groups) {
                let size = collab::group_size(&mut rng);
                if budget < size + 1 {
                    break;
                }
                group_plan.push(size);
                budget -= size;
            }
        }
    }

    let regular = budget;

    // --- regular schedule ---------------------------------------------------
    let spike = (config.spike && family == Family::Dirtjumper)
        .then(|| (SPIKE_DAY, config.scaled(SPIKE_EXTRA_ATTACKS + 170)));
    let interval_sampler = IntervalSampler::new(profile);
    let daily = allocate_daily_counts(&profile.active_days, regular as u32, spike, &mut rng);

    // Spike targets: one Russian /24 (§III-A: "targets were located in
    // the same subnet in Russia").
    let spike_targets: Vec<Target> = if spike.is_some() {
        spike_subnet_targets(geo, &mut rng)
    } else {
        Vec::new()
    };

    let mut attacks: Vec<AttackRecord> = Vec::with_capacity(total);
    let mut bots: HashMap<IpAddr4, (Timestamp, Timestamp)> = HashMap::new();

    let emit = |start: Timestamp,
                duration: Seconds,
                magnitude: usize,
                target: Target,
                botnet: BotnetId,
                attacks: &mut Vec<AttackRecord>,
                bots: &mut HashMap<IpAddr4, (Timestamp, Timestamp)>,
                sampler: &mut SourceSampler,
                rng: &mut Rng| {
        let week = config.window.week_index(start).unwrap_or(num_weeks - 1);
        let sources = sampler.sources(profile, &roster, geo, week, magnitude, rng);
        for &ip in &sources {
            let e = bots.entry(ip).or_insert((start, start));
            e.0 = e.0.min(start);
            e.1 = e.1.max(start);
        }
        attacks.push(AttackRecord {
            id: DdosId(0), // assigned during assembly
            botnet,
            family,
            category: Protocol::Http, // patched from the exact multiset below
            target_ip: target.ip,
            target: target.loc,
            start,
            end: start + duration,
            sources,
        });
    };

    for (day, count) in daily {
        let times = day_start_times(config.window, day, count, &interval_sampler, &mut rng);
        let use_spike_targets =
            spike.is_some_and(|(sday, _)| day == sday) && !spike_targets.is_empty();
        for (i, &t) in times.iter().enumerate() {
            let target = if use_spike_targets && (i as u32) < config.scaled(SPIKE_EXTRA_ATTACKS) {
                spike_targets[i % spike_targets.len()]
            } else {
                targets[target_zipf.sample_index(&mut rng)]
            };
            let duration = sample_duration(profile, &mut rng);
            let magnitude = magnitude_process.next(&mut rng);
            let botnet = pick_botnet(profile, botnet_base, config, day, &mut rng);
            emit(
                t,
                duration,
                magnitude,
                target,
                botnet,
                &mut attacks,
                &mut bots,
                &mut sampler,
                &mut rng,
            );
        }
    }

    // --- intra-family concurrent groups -------------------------------------
    for size in group_plan {
        let day = *rng.choose(&profile.active_days);
        let t0 = config.window.day_start(day) + Seconds(rng.below(80_000) as i64);
        let target = targets[target_zipf.sample_index(&mut rng)];
        let duration = sample_duration(profile, &mut rng);
        let magnitude = magnitude_process.next(&mut rng); // equal across the group
        let mut used = Vec::new();
        for _ in 0..size {
            let botnet = pick_distinct_botnet(profile, botnet_base, config, day, &used, &mut rng);
            used.push(botnet);
            // Floor families (no sub-minute intervals, Fig. 5) stagger
            // their collaborations inside the 60 s window instead of
            // striking at the exact same instant.
            let offset = if profile.cal.min_interval_60s {
                1 + rng.below(59) as i64
            } else {
                collab::partner_start_offset(&mut rng)
            };
            let start = t0 + Seconds(offset);
            let dur = Seconds(collab::matched_duration(duration.get(), &mut rng));
            emit(
                start,
                dur,
                magnitude,
                target,
                botnet,
                &mut attacks,
                &mut bots,
                &mut sampler,
                &mut rng,
            );
        }
    }

    // --- consecutive chains ---------------------------------------------------
    for len in chain_plan {
        let day = if family == Family::Ddoser && len == DDOSER_CHAIN_LEN {
            // The famous chain happened on 2012-08-30 (§V-B).
            SPIKE_DAY
        } else {
            *rng.choose(&profile.active_days)
        };
        let t0 = config.window.day_start(day) + Seconds(rng.below(80_000) as i64);
        let target = targets[target_zipf.sample_index(&mut rng)];
        let magnitude = magnitude_process.next(&mut rng);
        let mut t = t0;
        let mut used = Vec::new();
        for _ in 0..len {
            let duration = Seconds(collab::chain_link_duration(&mut rng));
            let botnet = pick_distinct_botnet(profile, botnet_base, config, day, &used, &mut rng);
            used.push(botnet);
            emit(
                t,
                duration,
                magnitude,
                target,
                botnet,
                &mut attacks,
                &mut bots,
                &mut sampler,
                &mut rng,
            );
            t = t + duration + Seconds(collab::chain_gap(&mut rng));
            if t >= config.window.end {
                break;
            }
        }
    }

    // --- pre-planned inter-family events ---------------------------------------
    for p in pre {
        let day = config.window.day_index(p.start).unwrap_or(0);
        let botnet = pick_botnet(profile, botnet_base, config, day, &mut rng);
        let target = Target {
            ip: p.target_ip,
            loc: p.target,
        };
        emit(
            p.start,
            p.duration,
            p.magnitude,
            target,
            botnet,
            &mut attacks,
            &mut bots,
            &mut sampler,
            &mut rng,
        );
    }

    // --- exact protocol multiset (Table II) -------------------------------------
    let mut multiset = profile.protocol_multiset();
    // The plans above may have fallen short of the exact budget at tiny
    // scales; truncate or pad the multiset to the realized attack count.
    rng.shuffle(&mut multiset);
    while multiset.len() < attacks.len() {
        multiset.push(profile.protocol_counts[0].0);
    }
    for (a, p) in attacks.iter_mut().zip(multiset) {
        a.category = p;
    }

    // --- enrollment bots ---------------------------------------------------------
    // The Botlist is the feed's *enumeration* of the botnet (via C&C
    // monitoring, §II-B), which is much wider than the bots caught
    // attacking: Table III counts 310,950 bot IPs over 2,897 cities and
    // 186 countries. Fill the family's pool with enrolled-but-idle bots
    // spread across all home-country cities plus a worldwide straggler
    // fringe.
    {
        let home_cities = profile.home_cities(geo);
        let pool_total = profile.bot_pool as usize;
        let extra = pool_total.saturating_sub(bots.len());
        let first_day = *profile.active_days.first().expect("non-empty");
        let last_day = *profile.active_days.last().expect("non-empty");
        for _ in 0..extra {
            let ip = if rng.chance(0.90) {
                let city = *rng.choose(&home_cities);
                geo.ip_in_city(city, rng.next_u64())
            } else {
                // Worldwide stragglers: any registry country, weighted by
                // internet population.
                let info =
                    &ddos_geo::COUNTRIES[rng.below(ddos_geo::COUNTRIES.len() as u64) as usize];
                geo.ip_in_country(info.code, rng.next_u64())
            };
            let Some(ip) = ip else { continue };
            let d0 = rng.range_inclusive(first_day as u64, last_day as u64) as usize;
            let first = config.window.day_start(d0);
            let last = first + Seconds::days(rng.below(30) as i64 + 1);
            bots.entry(ip)
                .or_insert((first, last.min(config.window.end - Seconds(1))));
        }
    }

    // --- population snapshots -----------------------------------------------------
    let snapshots = config.snapshots.then(|| {
        let mut snaps = Vec::new();
        for &day in &profile.active_days {
            for hour in [0usize, 6, 12, 18] {
                let at = config.window.day_start(day) + Seconds::hours(hour as i64);
                if at >= config.window.end {
                    continue;
                }
                let week = config.window.week_index(at).unwrap_or(0);
                let n = 10 + rng.below(20) as usize;
                let ips = sampler.snapshot_sample(&roster, geo, week, n, &mut rng);
                let presences: Vec<BotPresence> = ips
                    .into_iter()
                    .filter_map(|ip| {
                        geo.lookup(ip).map(|loc| BotPresence {
                            ip,
                            country: loc.country,
                            coords: loc.coords,
                        })
                    })
                    .collect();
                snaps.push(HourlySnapshot {
                    family,
                    taken_at: at,
                    bots: presences,
                });
            }
        }
        SnapshotSeries::from_snapshots(snaps).expect("distinct aligned instants")
    });

    FamilyOutput {
        family,
        attacks,
        bots,
        snapshots,
    }
}

/// Targets in one Russian /24 for the 2012-08-30 spike.
fn spike_subnet_targets(geo: &GeoDb, rng: &mut Rng) -> Vec<Target> {
    let ru = ddos_schema::CountryCode::literal("RU");
    let orgs: Vec<&ddos_geo::OrgInfo> = geo.orgs_in(ru).collect();
    let Some(org) = orgs.first() else {
        return Vec::new();
    };
    let (prefix, _) = org.prefixes[0];
    let base = prefix.first().value() & 0xFFFF_FF00;
    (0..16)
        .filter_map(|i| {
            let ip = IpAddr4(base + 1 + rng.below(200) as u32 + i);
            geo.lookup(ip).map(|loc| Target { ip, loc })
        })
        .collect()
}

/// The botnet generations of a family alive on a given day: a sliding
/// window of three consecutive generation indices, rolling over the
/// family's *own* activity span so every generation launches attacks
/// (the feed attributes all 674 generations as attackers, Table III).
fn active_generations(profile: &FamilyProfile, _config: &SimConfig, day: usize) -> (u32, u32) {
    let days = &profile.active_days;
    let pos = days.partition_point(|&d| d < day).min(days.len() - 1);
    let b = profile.botnets;
    let concurrent = b.min(3);
    let g0 = ((pos as f64 / days.len() as f64) * (b - concurrent + 1) as f64).floor() as u32;
    (g0.min(b - concurrent), concurrent)
}

fn pick_botnet(
    profile: &FamilyProfile,
    base: u32,
    config: &SimConfig,
    day: usize,
    rng: &mut Rng,
) -> BotnetId {
    // Occasionally an older generation resurfaces — this is what lets
    // every one of the 674 generations appear as an attacker (Table III).
    if rng.chance(0.05) {
        return BotnetId(base + rng.below(u64::from(profile.botnets)) as u32);
    }
    let (g0, k) = active_generations(profile, config, day);
    BotnetId(base + g0 + rng.below(u64::from(k)) as u32)
}

fn pick_distinct_botnet(
    profile: &FamilyProfile,
    base: u32,
    config: &SimConfig,
    day: usize,
    used: &[BotnetId],
    rng: &mut Rng,
) -> BotnetId {
    for _ in 0..8 {
        let b = pick_botnet(profile, base, config, day, rng);
        if !used.contains(&b) {
            return b;
        }
    }
    pick_botnet(profile, base, config, day, rng)
}

/// Merges family outputs into the final dataset.
fn assemble(
    config: &SimConfig,
    geo: &GeoDb,
    profiles: &[FamilyProfile],
    outputs: Vec<FamilyOutput>,
    inactive_base: u32,
    root: &Rng,
) -> Result<Dataset, ddos_schema::SchemaError> {
    let mut builder = DatasetBuilder::new(config.window);

    // Attacks: merge, order by time, assign global ids.
    let mut all_attacks: Vec<AttackRecord> = Vec::new();
    for o in &outputs {
        all_attacks.extend(o.attacks.iter().cloned());
    }
    all_attacks.sort_by_key(|a| (a.start, a.family.index(), a.target_ip));
    for (i, a) in all_attacks.iter_mut().enumerate() {
        a.id = DdosId(i as u64 + 1);
    }
    builder.extend_attacks(all_attacks)?;

    // Botnet records.
    let mut rng = root.fork(0xB07_11E7);
    let mut botnet_cursor = 1u32;
    for p in profiles {
        let cal = p.cal;
        for g in 0..p.botnets {
            builder.push_botnet(make_botnet_record(
                BotnetId(botnet_cursor + g),
                cal.family,
                cal,
                geo,
                config,
                p.botnets,
                g,
                &mut rng,
            ))?;
        }
        botnet_cursor += p.botnets;
    }
    debug_assert_eq!(botnet_cursor, inactive_base);
    // Dormant families: botnet records and a token bot population, no
    // attacks (Table III counts them among the 674 generations).
    let mut cursor = inactive_base;
    for family in Family::ALL.iter().skip(10) {
        for g in 0..INACTIVE_BOTNETS_PER_FAMILY {
            let id = BotnetId(cursor + g);
            let country = ddos_schema::CountryCode::literal("US");
            let controller = geo
                .ip_in_country(country, rng.next_u64())
                .expect("US allocated");
            let first = config.window.start;
            let last = config.window.start + Seconds::days(30);
            builder.push_botnet(BotnetRecord {
                id,
                family: *family,
                binary_hash: hash_for(*family, g),
                controller,
                enrolled_bots: config.scaled(INACTIVE_BOT_POOL),
                first_seen: first,
                last_seen: last,
            })?;
        }
        cursor += INACTIVE_BOTNETS_PER_FAMILY;
        for k in 0..config.scaled(INACTIVE_BOT_POOL) {
            let ip = geo
                .ip_in_country(
                    ddos_schema::CountryCode::literal("US"),
                    rng.next_u64() ^ u64::from(k),
                )
                .expect("US allocated");
            if let Some(loc) = geo.lookup(ip) {
                builder.push_bot(BotRecord {
                    ip,
                    botnet: BotnetId(cursor - 1),
                    family: *family,
                    location: loc,
                    first_seen: config.window.start,
                    last_seen: config.window.start + Seconds::days(30),
                })?;
            }
        }
    }

    // Bot records from observations.
    let mut base = HashMap::new();
    let mut next = 1u32;
    for p in profiles {
        base.insert(p.family(), next);
        next += p.botnets;
    }
    for o in &outputs {
        let profile = profiles
            .iter()
            .find(|p| p.family() == o.family)
            .expect("output family is active");
        let fam_base = base[&o.family];
        // Deterministic order for reproducibility.
        let mut entries: Vec<(&IpAddr4, &(Timestamp, Timestamp))> = o.bots.iter().collect();
        entries.sort_by_key(|(ip, _)| **ip);
        for (&ip, &(first, last)) in entries {
            let Some(loc) = geo.lookup(ip) else { continue };
            let day = config.window.day_index(first).unwrap_or(0);
            let (g0, _) = active_generations(profile, config, day);
            builder.push_bot(BotRecord {
                ip,
                botnet: BotnetId(fam_base + g0),
                family: o.family,
                location: loc,
                first_seen: first,
                last_seen: last,
            })?;
        }
    }

    // Snapshots.
    for o in outputs {
        if let Some(series) = o.snapshots {
            builder.set_snapshots(o.family, series)?;
        }
    }

    builder.build()
}

#[allow(clippy::too_many_arguments)]
fn make_botnet_record(
    id: BotnetId,
    family: Family,
    cal: &FamilyCalibration,
    geo: &GeoDb,
    config: &SimConfig,
    botnets: u32,
    generation: u32,
    rng: &mut Rng,
) -> BotnetRecord {
    let (first_day, last_day, _) = cal.active;
    let span = (last_day - first_day).max(1);
    // Generations roll over the family's activity window.
    let gen_start = first_day + (span * generation as usize) / botnets.max(1) as usize;
    let gen_end = (gen_start + span / botnets.max(1) as usize + 14).min(206);
    let home = cal.home_countries[0].0.parse().expect("calibrated code");
    let controller = geo
        .ip_in_country(home, rng.next_u64())
        .or_else(|| geo.ip_in_country(ddos_schema::CountryCode::literal("US"), rng.next_u64()))
        .expect("home country allocated");
    BotnetRecord {
        id,
        family,
        binary_hash: hash_for(family, id.0),
        controller,
        enrolled_bots: config.scaled(cal.bot_pool / botnets.max(1)),
        first_seen: config.window.day_start(gen_start),
        last_seen: config.window.day_start(gen_end),
    }
}

/// Deterministic fake SHA-1 marking a generation's binary.
fn hash_for(family: Family, generation: u32) -> [u8; 20] {
    let mut h = [0u8; 20];
    let mut state = (family.index() as u64) << 32 | u64::from(generation);
    for chunk in h.chunks_mut(8) {
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_add(0xBF58_476D_1CE4_E5B9);
        let bytes = state.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> GeneratedTrace {
        generate(&SimConfig::small())
    }

    #[test]
    fn generates_scaled_attack_volume() {
        let t = small_trace();
        let n = t.dataset.len();
        // 5% of 50,704 ≈ 2,535; injections may trim slightly.
        assert!((2_200..=2_700).contains(&n), "attacks {n}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&SimConfig::small());
        let b = generate(&SimConfig::small());
        assert_eq!(a.dataset.attacks(), b.dataset.attacks());
        let c = generate(&SimConfig::small().with_seed(99));
        assert_ne!(a.dataset.attacks(), c.dataset.attacks());
    }

    #[test]
    fn all_active_families_present() {
        let t = small_trace();
        for f in Family::ACTIVE {
            assert!(
                t.dataset.attacks_of(f).next().is_some(),
                "{f} generated no attacks"
            );
        }
        for f in Family::ALL.iter().skip(10) {
            assert_eq!(t.dataset.attacks_of(*f).count(), 0, "{f} must be dormant");
        }
    }

    #[test]
    fn attack_ids_unique_and_ordered() {
        let t = small_trace();
        let attacks = t.dataset.attacks();
        for pair in attacks.windows(2) {
            assert!(pair[0].start <= pair[1].start);
            assert_ne!(pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn attacks_validate_and_stay_in_window() {
        let t = small_trace();
        for a in t.dataset.attacks() {
            a.validate().unwrap();
            assert!(t.dataset.window().contains(a.start));
            assert!(!a.sources.is_empty());
        }
    }

    #[test]
    fn botnet_count_matches_small_scale() {
        let t = small_trace();
        let n = t.dataset.botnets().len();
        // At 5% scale actives are max(3, round(0.05*b)) each: 3+4+3+3+3+14+3+3+5+3 = 44
        // plus 13 dormant families × 2 = 26.
        assert!((60..=80).contains(&n), "botnets {n}");
    }

    #[test]
    fn bot_records_cover_sources() {
        let t = small_trace();
        let bots: std::collections::HashSet<IpAddr4> =
            t.dataset.bots().iter().map(|b| b.ip).collect();
        // Every attack source must be in the Botlist.
        for a in t.dataset.attacks().iter().take(200) {
            for ip in &a.sources {
                assert!(bots.contains(ip), "source {ip} missing from Botlist");
            }
        }
    }

    #[test]
    fn snapshots_exist_for_active_families() {
        let t = small_trace();
        assert!(t.dataset.snapshots(Family::Dirtjumper).is_some());
        let series = t.dataset.snapshots(Family::Dirtjumper).unwrap();
        assert!(series.len() > 100, "{} snapshots", series.len());
    }

    #[test]
    fn snapshots_can_be_disabled() {
        let mut config = SimConfig::small();
        config.snapshots = false;
        let t = generate(&config);
        assert!(t.dataset.snapshot_families().next().is_none());
    }

    #[test]
    fn protocol_mix_tracks_table_ii_at_scale() {
        let t = small_trace();
        let http = t
            .dataset
            .attacks()
            .iter()
            .filter(|a| a.category == Protocol::Http)
            .count();
        let frac = http as f64 / t.dataset.len() as f64;
        // Table II: HTTP is 47,734 / 50,704 ≈ 94%.
        assert!(frac > 0.85, "HTTP fraction {frac}");
    }

    #[test]
    fn spike_day_attacks_share_a_russian_subnet() {
        let t = small_trace();
        let window = t.dataset.window();
        // Dirtjumper attacks on day 1 that hit the spike subnet: all
        // spike targets share one /24 and resolve to Russia (§III-A).
        let day1: Vec<_> = t
            .dataset
            .attacks_of(Family::Dirtjumper)
            .filter(|a| window.day_index(a.start) == Some(1))
            .collect();
        assert!(!day1.is_empty());
        let mut subnets = std::collections::HashMap::new();
        for a in &day1 {
            *subnets.entry(a.target_ip.network(24)).or_insert(0usize) += 1;
        }
        let (&subnet, &count) = subnets.iter().max_by_key(|&(_, &c)| c).unwrap();
        assert!(
            count * 2 > day1.len(),
            "no dominant subnet on the spike day: {count}/{}",
            day1.len()
        );
        let sample = day1
            .iter()
            .find(|a| a.target_ip.network(24) == subnet)
            .unwrap();
        assert_eq!(
            sample.target.country,
            ddos_schema::CountryCode::literal("RU")
        );
    }

    #[test]
    fn flagship_pair_confined_to_autumn() {
        // §V-A: the Dirtjumper×Pandora duration-matched events run from
        // October to December 2012 (window days 33..=124).
        let t = small_trace();
        let window = t.dataset.window();
        let mut shared = 0;
        for a in t.dataset.attacks_of(Family::Dirtjumper) {
            let partnered = t.dataset.attacks_on(a.target_ip).any(|b| {
                b.family == Family::Pandora
                    && (b.start - a.start).get().abs() <= 60
                    && (a.duration().get() - b.duration().get()).abs() <= 1_800
            });
            if partnered {
                shared += 1;
                let day = window.day_index(a.start).unwrap();
                assert!(
                    (33..=124).contains(&day),
                    "matched dj x pandora event on day {day}"
                );
            }
        }
        assert!(shared > 0, "no matched dj x pandora events at small scale");
    }

    #[test]
    fn magnitudes_follow_a_persistent_level() {
        // Consecutive dirtjumper attacks should have correlated
        // magnitudes (the log-AR(1) level), unlike i.i.d. draws.
        let t = small_trace();
        let mags: Vec<f64> = t
            .dataset
            .attacks_of(Family::Dirtjumper)
            .map(|a| (a.magnitude() as f64).ln())
            .collect();
        let r = ddos_stats::pearson_correlation(&mags[..mags.len() - 1], &mags[1..]).unwrap();
        assert!(r > 0.3, "lag-1 magnitude correlation {r}");
    }

    #[test]
    fn sources_resolve_in_geo() {
        let t = small_trace();
        for a in t.dataset.attacks().iter().take(100) {
            for &ip in &a.sources {
                assert!(t.geo.lookup(ip).is_some());
            }
        }
    }
}
