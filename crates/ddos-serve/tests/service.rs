//! The service's isolation contract: every published watermark answers
//! exactly like a fresh monolithic run over the same epoch prefix,
//! faulted appends never disturb the published snapshot, and readers
//! racing the writer only ever see whole folds with monotone
//! watermarks.

use std::sync::atomic::{AtomicBool, Ordering};

use ddos_analytics::{Analysis, AnalysisReport, PipelineOptions};
use ddos_obs::{fnv1a_64_hex, names, Obs};
use ddos_schema::{Dataset, Seconds};
use ddos_serve::AnalysisService;
use ddos_sim::{generate, SimConfig};

fn digest(report: &AnalysisReport) -> String {
    let json = serde_json::to_string(report).expect("report serializes");
    fnv1a_64_hex(json.as_bytes())
}

fn small() -> Dataset {
    generate(&SimConfig::small()).dataset
}

/// An epoch length that folds `ds` into (about) `epochs` epochs.
fn epoch_len(ds: &Dataset, epochs: i64) -> Seconds {
    Seconds(((ds.window().length().get() + epochs - 1) / epochs).max(1))
}

/// The reference answer at a watermark: a fresh monolithic run over
/// the dataset's first `w` epochs.
fn prefix_digest(ds: &Dataset, len: Seconds, w: usize) -> String {
    digest(&Analysis::new(&ds.epoch_prefix(len, w)).run())
}

#[test]
fn queries_before_the_first_publish_return_none() {
    let ds = small();
    let obs = Obs::enabled();
    let service = AnalysisService::new(&ds, PipelineOptions::default(), epoch_len(&ds, 5), &obs);
    assert_eq!(service.watermark(), 0);
    assert!(service.snapshot().is_none());
    assert!(service.top_targets(3).is_none());
    assert!(service.family_breakdown().is_none());
    // Unanswered queries still must not count as answered.
    assert_eq!(obs.counter(names::SERVE_QUERIES_ANSWERED).get(), 0);
}

#[test]
fn every_watermark_answers_like_a_fresh_prefix_run() {
    let ds = small();
    let len = epoch_len(&ds, 5);
    let obs = Obs::enabled();
    let service = AnalysisService::new(&ds, PipelineOptions::default(), len, &obs);
    assert!(service.epochs() > 1, "want a multi-epoch fold");

    let mut seen = Vec::new();
    while service.try_append().expect("clean append").is_some() {
        let snap = service.snapshot().expect("published after first append");
        if seen.last().map(|(w, _)| *w) != Some(snap.watermark) {
            seen.push((snap.watermark, digest(&snap.report)));
        }
    }
    assert!(service.is_complete());
    assert_eq!(seen.len(), service.epochs(), "one publish per epoch");
    assert_eq!(
        seen.last().expect("non-empty").0,
        service.epochs(),
        "final watermark covers the whole dataset"
    );

    for (w, got) in &seen {
        assert_eq!(
            got,
            &prefix_digest(&ds, len, *w),
            "watermark {w} diverged from a fresh {w}-epoch monolithic run"
        );
    }
    // The complete snapshot is byte-identical to the plain batch run.
    assert_eq!(
        seen.last().expect("non-empty").1,
        digest(&Analysis::new(&ds).run())
    );
}

#[test]
fn typed_answers_carry_the_publish_watermark() {
    let ds = small();
    let obs = Obs::enabled();
    let service = AnalysisService::new(&ds, PipelineOptions::default(), epoch_len(&ds, 4), &obs);
    service.ingest_all().expect("clean ingest");
    let snap = service.snapshot().expect("published");
    assert!(snap.is_complete());

    let top = service.top_targets(3).expect("answered");
    assert_eq!(top.watermark, snap.watermark);
    assert_eq!(top.epochs, snap.epochs);
    assert_eq!(
        top.value,
        snap.report
            .overall_targets
            .iter()
            .take(3)
            .copied()
            .collect::<Vec<_>>()
    );

    let families = service.family_breakdown().expect("answered");
    assert_eq!(families.value, snap.report.activity);
    assert_eq!(
        service.collaboration_groups().expect("answered").value,
        snap.report.collaborations
    );
    assert_eq!(
        service.shift_series().expect("answered").value,
        snap.report.shifts
    );
    assert_eq!(
        service.dispersion_series().expect("answered").value,
        snap.report.dispersion
    );
    assert_eq!(
        service.blacklist_verdicts().expect("answered").value,
        snap.report.blacklist
    );

    // A timeline query for a tracked target returns its train; an
    // unattacked target answers (at the same watermark) with `None`.
    if let Some(train) = snap.report.recurrence.trains.first() {
        let hit = service.target_timeline(train.target).expect("answered");
        assert_eq!(hit.value.expect("tracked target").starts, train.starts);
    }
    let miss = service
        .target_timeline(ddos_schema::IpAddr4::from_octets(203, 0, 113, 250))
        .expect("answered");
    assert_eq!(miss.watermark, snap.watermark);
    assert!(miss.value.is_none());

    assert!(obs.counter(names::SERVE_QUERIES_ANSWERED).get() >= 7);
    assert_eq!(
        obs.gauge(names::SERVE_WATERMARK).get(),
        snap.watermark as u64
    );
}

#[test]
fn faulted_appends_leave_the_published_snapshot_untouched() {
    if !ddos_failpoints::ACTIVE {
        return; // release build: the seam is compiled out.
    }
    let ds = small();
    let len = epoch_len(&ds, 5);
    let golden = digest(&Analysis::new(&ds).run());

    for fp in [
        ddos_failpoints::names::EPOCH_MERGE,
        ddos_failpoints::names::SCHEDULER_PASS,
    ] {
        let obs = Obs::enabled();
        let service = AnalysisService::new(&ds, PipelineOptions::default(), len, &obs);
        // Land two clean epochs so a fault has a snapshot to threaten.
        service
            .try_append()
            .expect("clean append")
            .expect("epoch 0");
        service
            .try_append()
            .expect("clean append")
            .expect("epoch 1");
        let before = service.snapshot().expect("published");
        let before_digest = digest(&before.report);

        {
            let _scope = ddos_failpoints::FailPlan::new().fail_nth(fp, 0).install();
            let err = service.try_append().expect_err("injected fault surfaces");
            assert!(
                err.to_string().contains(fp),
                "error names the failpoint: {err}"
            );
        }
        // The published snapshot is exactly what it was before the
        // fault — same Arc-visible watermark, same bytes.
        let after = service.snapshot().expect("still published");
        assert_eq!(after.watermark, before.watermark, "failpoint {fp}");
        assert_eq!(digest(&after.report), before_digest, "failpoint {fp}");
        assert_eq!(service.watermark(), before.watermark);
        assert_eq!(obs.counter(names::SERVE_APPEND_FAULTS).get(), 1);

        // With the plan gone the writer resumes and converges to the
        // golden full report.
        service.ingest_all().expect("clean retry");
        assert!(service.is_complete());
        assert_eq!(
            digest(&service.snapshot().expect("published").report),
            golden,
            "failpoint {fp}: recovery diverged from the golden report"
        );
    }
}

#[test]
fn concurrent_readers_see_monotone_whole_folds() {
    let ds = small();
    let len = epoch_len(&ds, 6);
    let obs = Obs::enabled();
    let service = AnalysisService::new(&ds, PipelineOptions::default(), len, &obs);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            service.ingest_all().expect("clean ingest");
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            scope.spawn(|| {
                let mut last = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    if let Some(top) = service.top_targets(5) {
                        assert!(top.watermark >= last, "watermark went backwards");
                        assert!(top.watermark <= top.epochs);
                        last = top.watermark;
                        // A snapshot taken around the answer brackets
                        // the same monotone sequence.
                        let snap = service.snapshot().expect("published");
                        assert!(snap.watermark >= top.watermark);
                    }
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
                assert_eq!(last, service.epochs(), "readers end fully caught up");
            });
        }
    });

    assert!(service.is_complete());
    // Readers answered throughout the ingest without ever blocking on
    // the writer; the counter proves the read path actually ran.
    assert!(obs.counter(names::SERVE_QUERIES_ANSWERED).get() > 0);
    assert_eq!(
        digest(&service.snapshot().expect("published").report),
        digest(&Analysis::new(&ds).run())
    );
}
