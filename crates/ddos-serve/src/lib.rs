//! `ddos-serve` — a snapshot-isolated concurrent query service over the
//! incremental analysis engine.
//!
//! [`AnalysisService`] keeps one [`IncrementalPipeline`] resident on a
//! writer path and publishes each completed epoch fold as an immutable,
//! `Arc`-swapped [`Snapshot`]. Readers answer typed queries against
//! whatever snapshot is published when they arrive — they never block
//! on the writer, never observe a partial fold, and every [`Answer`]
//! is stamped with the epoch watermark it was computed at.
//!
//! The isolation contract (enforced by this crate's test suite and the
//! `repro --serve-bench` hard gate):
//!
//! 1. **Snapshot isolation** — a query at watermark `w` returns bytes
//!    identical to a fresh monolithic run over the dataset's first `w`
//!    epochs ([`Dataset::epoch_prefix`]), no matter how many appends
//!    race with it.
//! 2. **Monotone watermarks** — published watermarks only move
//!    forward; two reads by the same thread never go back in time.
//! 3. **Fault atomicity** — an append that surfaces an injected fault
//!    (`epoch/merge`, `scheduler/pass`) leaves the published snapshot
//!    untouched; the next clean append converges to the golden report.
//!
//! Writer-side progress is observable through `ddos-obs` under the
//! `serve/*` names: `serve/append` spans, the `serve/watermark` gauge,
//! the `serve/append_faults` counter, and `serve/append_us` latencies.
//! The read path records `serve/query/<name>` spans, the
//! `serve/queries_answered` counter, the `serve/inflight` high-water
//! gauge, and `serve/query_us` latencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ddos_analytics::collab::concurrent::CollabAnalysis;
use ddos_analytics::defense::BlacklistSim;
use ddos_analytics::overview::activity::FamilyActivity;
use ddos_analytics::source::dispersion::FamilyDispersion;
use ddos_analytics::source::shift::ShiftAnalysis;
use ddos_analytics::target::recurrence::TargetTrain;
use ddos_analytics::{
    AnalysisReport, AppendStats, IncrementalPipeline, PipelineError, PipelineOptions,
};
use ddos_obs::{names, Obs};
use ddos_schema::{CountryCode, Dataset, IpAddr4, Seconds};
use parking_lot::{Mutex, RwLock};

/// One published epoch fold: the exact report of the dataset's first
/// [`Snapshot::watermark`] epochs, immutable once published.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// How many epochs the report covers (monotonically increasing
    /// across publishes).
    pub watermark: usize,
    /// Total epochs the underlying dataset folds into — the watermark
    /// at which the service is fully caught up.
    pub epochs: usize,
    /// The prefix-exact report at this watermark.
    pub report: AnalysisReport,
}

impl Snapshot {
    /// Whether this snapshot covers the whole dataset.
    pub fn is_complete(&self) -> bool {
        self.watermark == self.epochs
    }
}

/// A typed query result stamped with the watermark it was answered at.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer<T> {
    /// The epoch watermark of the snapshot that answered the query.
    pub watermark: usize,
    /// Total epochs the dataset folds into (see [`Snapshot::epochs`]).
    pub epochs: usize,
    /// The answer itself.
    pub value: T,
}

/// A long-lived analysis service: one incremental writer, any number of
/// concurrent snapshot readers.
///
/// The writer path ([`AnalysisService::try_append`]) is serialized by a
/// mutex around the [`IncrementalPipeline`]; the read path only ever
/// takes a momentary read lock to clone the published `Arc`, so reads
/// never wait on an in-flight fold.
pub struct AnalysisService<'d> {
    writer: Mutex<IncrementalPipeline<'d>>,
    published: RwLock<Option<Arc<Snapshot>>>,
    obs: &'d Obs,
    epochs: usize,
    inflight: AtomicU64,
}

impl<'d> AnalysisService<'d> {
    /// Builds a service over `ds`, folding epochs of `epoch_len`, with
    /// all telemetry recorded into the caller's `obs`. No epochs are
    /// ingested yet — drive the writer with [`AnalysisService::try_append`]
    /// (or [`AnalysisService::ingest_all`]).
    pub fn new(
        ds: &'d Dataset,
        opts: PipelineOptions,
        epoch_len: Seconds,
        obs: &'d Obs,
    ) -> AnalysisService<'d> {
        let pipeline = IncrementalPipeline::with_obs(ds, opts, epoch_len, obs).prefix_exact();
        let epochs = pipeline.epochs();
        AnalysisService {
            writer: Mutex::new(pipeline),
            published: RwLock::new(None),
            obs,
            epochs,
            inflight: AtomicU64::new(0),
        }
    }

    /// Total epochs the dataset folds into.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The watermark of the currently published snapshot (0 before the
    /// first publish).
    pub fn watermark(&self) -> usize {
        self.published.read().as_ref().map_or(0, |s| s.watermark)
    }

    /// Whether every epoch has been appended and published.
    pub fn is_complete(&self) -> bool {
        self.watermark() == self.epochs
    }

    /// Appends the next epoch on the writer path and, if the fold
    /// produced a new prefix-exact report, publishes it atomically.
    ///
    /// Returns `Ok(Some(stats))` while epochs remain, `Ok(None)` once
    /// the stream is exhausted. On `Err` the published snapshot is
    /// untouched: readers keep answering from the last good watermark,
    /// and a retry resumes from the failed epoch.
    pub fn try_append(&self) -> Result<Option<AppendStats>, PipelineError> {
        let start = self.obs.now_us();
        let mut writer = self.writer.lock();
        let result = writer.try_append_epoch();
        match &result {
            Ok(_) => {
                // `snapshot_report` returns `None` while a fault left
                // re-runs pending, so a half-folded state can never
                // reach `published`.
                if writer.watermark() > self.watermark() {
                    if let Some(report) = writer.snapshot_report() {
                        let snap = Arc::new(Snapshot {
                            watermark: writer.watermark(),
                            epochs: self.epochs,
                            report,
                        });
                        self.obs
                            .gauge(names::SERVE_WATERMARK)
                            .set(snap.watermark as u64);
                        *self.published.write() = Some(snap);
                    }
                }
            }
            Err(_) => {
                self.obs.counter(names::SERVE_APPEND_FAULTS).inc();
            }
        }
        drop(writer);
        let end = self.obs.now_us();
        self.obs.record_span(names::SERVE_APPEND, start, end);
        self.obs
            .histogram(names::SERVE_APPEND_US)
            .record(end.saturating_sub(start));
        result
    }

    /// Drives the writer until every epoch is appended and published.
    pub fn ingest_all(&self) -> Result<(), PipelineError> {
        while self.try_append()?.is_some() {}
        Ok(())
    }

    /// The currently published snapshot, if any epoch has landed yet.
    /// The returned `Arc` stays valid (and immutable) forever, however
    /// far the writer advances.
    pub fn snapshot(&self) -> Option<Arc<Snapshot>> {
        self.published.read().clone()
    }

    /// Answers one typed query against the published snapshot,
    /// recording the read-path telemetry. `None` until the first
    /// publish.
    fn answer<T>(&self, name: &str, f: impl FnOnce(&AnalysisReport) -> T) -> Option<Answer<T>> {
        let start = self.obs.now_us();
        let inflight = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        self.obs.gauge(names::SERVE_INFLIGHT).record_max(inflight);
        let snap = self.snapshot();
        let out = snap.map(|snap| Answer {
            watermark: snap.watermark,
            epochs: snap.epochs,
            value: f(&snap.report),
        });
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        let end = self.obs.now_us();
        self.obs
            .record_span(format!("{}/{name}", names::SERVE_QUERY), start, end);
        self.obs
            .histogram(names::SERVE_QUERY_US)
            .record(end.saturating_sub(start));
        if out.is_some() {
            self.obs.counter(names::SERVE_QUERIES_ANSWERED).inc();
        }
        out
    }

    /// The top `n` victim countries by attack count (§IV-B; the report
    /// tracks at most its overall top five).
    pub fn top_targets(&self, n: usize) -> Option<Answer<Vec<(CountryCode, usize)>>> {
        self.answer("top_targets", |r| {
            r.overall_targets.iter().take(n).copied().collect()
        })
    }

    /// Per-family activity levels (§III-A).
    pub fn family_breakdown(&self) -> Option<Answer<Vec<FamilyActivity>>> {
        self.answer("family_breakdown", |r| r.activity.clone())
    }

    /// The recurrence train for one target: its attack start timeline
    /// and the families that hit it. `value` is `None` for targets the
    /// recurrence pass dropped (fewer than four attacks — its
    /// `MIN_TRAIN_LEN` — in the covered prefix).
    pub fn target_timeline(&self, target: IpAddr4) -> Option<Answer<Option<TargetTrain>>> {
        self.answer("target_timeline", |r| {
            r.recurrence
                .trains
                .iter()
                .find(|t| t.target == target)
                .cloned()
        })
    }

    /// Concurrent collaboration pairs and events (§V, Table VI).
    pub fn collaboration_groups(&self) -> Option<Answer<CollabAnalysis>> {
        self.answer("collaboration_groups", |r| r.collaborations.clone())
    }

    /// The weekly shift analysis (§IV-A, Fig. 8).
    pub fn shift_series(&self) -> Option<Answer<ShiftAnalysis>> {
        self.answer("shift_series", |r| r.shifts.clone())
    }

    /// Qualifying families' source-dispersion series (§IV-A, Fig. 9).
    pub fn dispersion_series(&self) -> Option<Answer<Vec<FamilyDispersion>>> {
        self.answer("dispersion_series", |r| r.dispersion.clone())
    }

    /// The blacklist warm-up simulation verdicts (§V summary).
    pub fn blacklist_verdicts(&self) -> Option<Answer<BlacklistSim>> {
        self.answer("blacklist_verdicts", |r| r.blacklist.clone())
    }
}
