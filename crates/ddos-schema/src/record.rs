//! The three record schemas of the monitoring feed (Table I).

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;
use crate::family::Family;
use crate::geo::{CountryCode, LatLon};
use crate::ids::{Asn, BotnetId, CityId, DdosId, OrgId};
use crate::ip::IpAddr4;
use crate::protocol::Protocol;
use crate::time::{Seconds, Timestamp};

/// Geolocation and BGP attribution of a single address.
///
/// City and organization are compact registry ids resolved against the
/// `ddos-geo` database; this keeps a 50k-attack / 300k-bot dataset small.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// ISO 3166-1 alpha-2 country of the address (`cc`).
    pub country: CountryCode,
    /// City (registry id).
    pub city: CityId,
    /// Owning organization (registry id).
    pub org: OrgId,
    /// Autonomous system number.
    pub asn: Asn,
    /// Coordinates of the address.
    pub coords: LatLon,
}

/// One record of the `DDoSattack` schema: a single verified DDoS attack.
///
/// `sources` lists the bot IPs observed participating; its length is the
/// paper's *attack magnitude* (the paper argues spoofing is implausible for
/// this trace, so IP count is a sound magnitude proxy — §III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRecord {
    /// Globally unique attack identifier (`ddos_id`).
    pub id: DdosId,
    /// The botnet generation that launched the attack (`botnet_id`).
    pub botnet: BotnetId,
    /// The malware family of that botnet.
    pub family: Family,
    /// Transport category of the attack traffic (`category`).
    pub category: Protocol,
    /// Victim address (`target_ip`).
    pub target_ip: IpAddr4,
    /// Victim geolocation (`cc`, `city`, `latitude`, `longitude`, `asn`).
    pub target: Location,
    /// Attack start (`timestamp`).
    pub start: Timestamp,
    /// Attack end (`end_time`), never before `start`.
    pub end: Timestamp,
    /// Participating bot addresses (`botnet_ip`).
    pub sources: Vec<IpAddr4>,
}

impl AttackRecord {
    /// Attack duration, `end - start`.
    #[inline]
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Attack magnitude: the number of distinct bot IPs involved.
    #[inline]
    pub fn magnitude(&self) -> usize {
        self.sources.len()
    }

    /// Whether this record and `other` overlap in time.
    pub fn overlaps(&self, other: &AttackRecord) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Validates internal consistency (time ordering, non-empty sources).
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.end < self.start {
            return Err(SchemaError::InvalidRecord(format!(
                "attack {}: end {} precedes start {}",
                self.id, self.end, self.start
            )));
        }
        if self.sources.is_empty() {
            return Err(SchemaError::InvalidRecord(format!(
                "attack {}: no source addresses",
                self.id
            )));
        }
        Ok(())
    }
}

/// One record of the `Botlist` schema: an infected host observed in a
/// botnet, with its GeoIP/BGP attribution and activity span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BotRecord {
    /// The bot's address.
    pub ip: IpAddr4,
    /// The botnet generation the bot was enrolled in.
    pub botnet: BotnetId,
    /// Malware family of that botnet.
    pub family: Family,
    /// Geolocation/BGP attribution of the bot.
    pub location: Location,
    /// First time the bot was seen active.
    pub first_seen: Timestamp,
    /// Last time the bot was seen active (>= `first_seen`).
    pub last_seen: Timestamp,
}

impl BotRecord {
    /// How long the bot stayed observable.
    #[inline]
    pub fn lifetime(&self) -> Seconds {
        self.last_seen - self.first_seen
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.last_seen < self.first_seen {
            return Err(SchemaError::InvalidRecord(format!(
                "bot {}: last_seen precedes first_seen",
                self.ip
            )));
        }
        Ok(())
    }
}

/// One record of the `Botnetlist` schema: a botnet generation.
///
/// Generations of a family are distinguished by the (MD5/SHA-1) hash of the
/// malware binary; we keep the hash as an opaque 20-byte value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BotnetRecord {
    /// Unique botnet identifier.
    pub id: BotnetId,
    /// Malware family.
    pub family: Family,
    /// SHA-1 of the malware binary marking this generation.
    pub binary_hash: [u8; 20],
    /// Address of the command-and-control host.
    pub controller: IpAddr4,
    /// Number of distinct infected hosts enrolled over the trace.
    pub enrolled_bots: u32,
    /// First time the botnet was seen launching or recruiting.
    pub first_seen: Timestamp,
    /// Last observed activity.
    pub last_seen: Timestamp,
}

impl BotnetRecord {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.last_seen < self.first_seen {
            return Err(SchemaError::InvalidRecord(format!(
                "botnet {}: last_seen precedes first_seen",
                self.id
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;

    /// A syntactically valid location for tests.
    pub fn location() -> Location {
        Location {
            country: CountryCode::literal("US"),
            city: CityId(1),
            org: OrgId(1),
            asn: Asn(64512),
            coords: LatLon::new_unchecked(38.0, -77.0),
        }
    }

    /// A valid attack record for tests, parameterized by id and start.
    pub fn attack(id: u64, start: i64) -> AttackRecord {
        AttackRecord {
            id: DdosId(id),
            botnet: BotnetId(7),
            family: Family::Dirtjumper,
            category: Protocol::Http,
            target_ip: IpAddr4::from_octets(198, 51, 100, 1),
            target: location(),
            start: Timestamp(start),
            end: Timestamp(start + 600),
            sources: vec![IpAddr4::from_octets(203, 0, 113, 5)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::*;
    use super::*;

    #[test]
    fn duration_and_magnitude() {
        let mut a = attack(1, 1_000);
        a.sources.push(IpAddr4::from_octets(203, 0, 113, 6));
        assert_eq!(a.duration(), Seconds(600));
        assert_eq!(a.magnitude(), 2);
    }

    #[test]
    fn validate_catches_inverted_times() {
        let mut a = attack(1, 1_000);
        a.end = Timestamp(500);
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_catches_empty_sources() {
        let mut a = attack(1, 1_000);
        a.sources.clear();
        assert!(a.validate().is_err());
    }

    #[test]
    fn zero_length_attack_is_valid() {
        let mut a = attack(1, 1_000);
        a.end = a.start;
        assert!(a.validate().is_ok());
        assert_eq!(a.duration(), Seconds(0));
    }

    #[test]
    fn overlap_detection() {
        let a = attack(1, 1_000); // [1000, 1600]
        let b = attack(2, 1_500); // [1500, 2100]
        let c = attack(3, 2_000); // [2000, 2600]
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Touching endpoints count as overlap (closed intervals).
        let d = attack(4, 1_600);
        assert!(a.overlaps(&d));
    }

    #[test]
    fn bot_record_lifetime() {
        let b = BotRecord {
            ip: IpAddr4::from_octets(203, 0, 113, 9),
            botnet: BotnetId(1),
            family: Family::Pandora,
            location: location(),
            first_seen: Timestamp(100),
            last_seen: Timestamp(400),
        };
        assert_eq!(b.lifetime(), Seconds(300));
        assert!(b.validate().is_ok());
        let bad = BotRecord {
            last_seen: Timestamp(50),
            ..b
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn botnet_record_validation() {
        let r = BotnetRecord {
            id: BotnetId(3),
            family: Family::Nitol,
            binary_hash: [0xAB; 20],
            controller: IpAddr4::from_octets(192, 0, 2, 1),
            enrolled_bots: 250,
            first_seen: Timestamp(0),
            last_seen: Timestamp(10),
        };
        assert!(r.validate().is_ok());
        let bad = BotnetRecord {
            first_seen: Timestamp(20),
            ..r
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn attack_serde_round_trip() {
        let a = attack(9, 5_000);
        let json = serde_json::to_string(&a).unwrap();
        let back: AttackRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
