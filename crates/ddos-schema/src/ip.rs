//! IPv4 addresses and prefixes.
//!
//! The monitoring feed records bot and target addresses as IPv4 (the trace
//! predates meaningful IPv6 botnet activity). We use a `u32` newtype rather
//! than `std::net::Ipv4Addr` because the geolocation substrate needs cheap
//! ordered range queries over address space, and the simulator needs
//! arithmetic block allocation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

/// An IPv4 address stored as its 32-bit big-endian integer value.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct IpAddr4(pub u32);

impl IpAddr4 {
    /// Builds an address from four dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> IpAddr4 {
        IpAddr4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Raw integer value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The address with the low `32 - prefix_len` bits cleared.
    pub const fn network(self, prefix_len: u8) -> IpAddr4 {
        IpAddr4(self.0 & Prefix::mask(prefix_len))
    }
}

impl fmt::Display for IpAddr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for IpAddr4 {
    type Err = SchemaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || SchemaError::parse("IpAddr4", s);
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            let part = parts.next().ok_or_else(bad)?;
            if part.is_empty() || part.len() > 3 || (part.len() > 1 && part.starts_with('0')) {
                return Err(bad());
            }
            *o = part.parse().map_err(|_| bad())?;
        }
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(IpAddr4::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// A CIDR prefix, e.g. `203.0.113.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (low bits cleared).
    pub network: IpAddr4,
    /// Prefix length in bits, `0..=32`.
    pub len: u8,
}

impl Prefix {
    /// Netmask for a prefix length (`const` so it can size tables).
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Creates a prefix, clearing host bits; errors if `len > 32`.
    pub fn new(addr: IpAddr4, len: u8) -> Result<Prefix, SchemaError> {
        if len > 32 {
            return Err(SchemaError::OutOfRange {
                what: "prefix length",
                expected: "0..=32",
            });
        }
        Ok(Prefix {
            network: addr.network(len),
            len,
        })
    }

    /// Whether the address falls inside the prefix.
    #[inline]
    pub fn contains(&self, addr: IpAddr4) -> bool {
        addr.0 & Self::mask(self.len) == self.network.0
    }

    /// First address of the block.
    #[inline]
    pub fn first(&self) -> IpAddr4 {
        self.network
    }

    /// Last address of the block.
    #[inline]
    pub fn last(&self) -> IpAddr4 {
        IpAddr4(self.network.0 | !Self::mask(self.len))
    }

    /// Number of addresses in the block (as `u64`; `/0` holds 2^32).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The `index`-th address of the block, wrapping modulo block size.
    pub fn nth(&self, index: u64) -> IpAddr4 {
        IpAddr4(self.network.0.wrapping_add((index % self.size()) as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl FromStr for Prefix {
    type Err = SchemaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || SchemaError::parse("Prefix", s);
        let (addr, len) = s.split_once('/').ok_or_else(bad)?;
        let addr: IpAddr4 = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| bad())?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn octet_round_trip() {
        let ip = IpAddr4::from_octets(203, 0, 113, 7);
        assert_eq!(ip.octets(), [203, 0, 113, 7]);
        assert_eq!(ip.to_string(), "203.0.113.7");
        assert_eq!("203.0.113.7".parse::<IpAddr4>().unwrap(), ip);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d"] {
            assert!(bad.parse::<IpAddr4>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prefix_contains_its_range() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert!(p.contains("10.1.2.0".parse().unwrap()));
        assert!(p.contains("10.1.2.255".parse().unwrap()));
        assert!(!p.contains("10.1.3.0".parse().unwrap()));
        assert_eq!(p.size(), 256);
        assert_eq!(p.first().to_string(), "10.1.2.0");
        assert_eq!(p.last().to_string(), "10.1.2.255");
    }

    #[test]
    fn prefix_clears_host_bits() {
        let p = Prefix::new("10.1.2.77".parse().unwrap(), 24).unwrap();
        assert_eq!(p.network.to_string(), "10.1.2.0");
        assert!(Prefix::new(IpAddr4(0), 33).is_err());
    }

    #[test]
    fn nth_wraps_within_block() {
        let p: Prefix = "192.168.0.0/30".parse().unwrap();
        assert_eq!(p.nth(0).to_string(), "192.168.0.0");
        assert_eq!(p.nth(3).to_string(), "192.168.0.3");
        assert_eq!(p.nth(4), p.nth(0));
    }

    #[test]
    fn zero_prefix_spans_everything() {
        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        assert_eq!(p.size(), 1 << 32);
        assert!(p.contains(IpAddr4(u32::MAX)));
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(v in any::<u32>()) {
            let ip = IpAddr4(v);
            let back: IpAddr4 = ip.to_string().parse().unwrap();
            prop_assert_eq!(back, ip);
        }

        #[test]
        fn network_is_idempotent(v in any::<u32>(), len in 0u8..=32) {
            let ip = IpAddr4(v);
            prop_assert_eq!(ip.network(len).network(len), ip.network(len));
        }

        #[test]
        fn prefix_contains_all_nth(v in any::<u32>(), len in 8u8..=32, i in any::<u64>()) {
            let p = Prefix::new(IpAddr4(v), len).unwrap();
            prop_assert!(p.contains(p.nth(i)));
        }
    }
}
