//! The indexed in-memory dataset joining all three schemas.
//!
//! The paper "associate\[s\] three schemas to create a comprehensive dataset
//! with a focus on the DDoS attacks" (§II-A); [`Dataset`] is that join,
//! with the access paths every analysis needs: attacks in global start
//! order, per-family, per-target, and per-botnet indexes, and per-family
//! snapshot series.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;
use crate::family::Family;
use crate::geo::CountryCode;
use crate::hashing::{fast_set, FastSet};
use crate::ids::{Asn, BotnetId, CityId, OrgId};
use crate::ip::IpAddr4;
use crate::record::{AttackRecord, BotRecord, BotnetRecord};
use crate::snapshot::SnapshotSeries;
use crate::time::Window;

/// Summary counters for one side (attackers or victims) of the trace,
/// mirroring one column of the paper's Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SideSummary {
    /// Distinct IP addresses.
    pub ips: usize,
    /// Distinct cities.
    pub cities: usize,
    /// Distinct countries.
    pub countries: usize,
    /// Distinct organizations.
    pub organizations: usize,
    /// Distinct autonomous systems.
    pub asns: usize,
}

/// Dataset-level summary mirroring the paper's Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Attacker-side distinct counts.
    pub attackers: SideSummary,
    /// Victim-side distinct counts.
    pub victims: SideSummary,
    /// Number of attacks (`# of ddos_id`).
    pub attacks: usize,
    /// Number of botnet generations (`# of botnet_id`).
    pub botnets: usize,
    /// Number of distinct traffic types seen.
    pub traffic_types: usize,
}

/// The joined, indexed trace.
///
/// Construction goes through [`DatasetBuilder`], which validates every
/// record and builds the indexes once; the dataset itself is immutable.
/// Serde support round-trips the records and rebuilds the indexes on
/// deserialization.
#[derive(Debug, Clone)]
pub struct Dataset {
    window: Window,
    attacks: Vec<AttackRecord>,
    bots: Vec<BotRecord>,
    botnets: Vec<BotnetRecord>,
    snapshots: BTreeMap<Family, SnapshotSeries>,
    by_family: HashMap<Family, Vec<u32>>,
    by_target: HashMap<IpAddr4, Vec<u32>>,
    by_botnet: HashMap<BotnetId, Vec<u32>>,
    /// Sorted distinct target IPs, built on first [`Dataset::targets`]
    /// call and reset whenever the indexes are rebuilt.
    targets: OnceLock<Vec<IpAddr4>>,
    /// Table III distinct counts, built on first [`Dataset::summary`]
    /// call and reset whenever the indexes are rebuilt.
    summary: OnceLock<DatasetSummary>,
}

/// Wire representation of [`Dataset`]: the records without the indexes.
#[derive(Serialize, Deserialize)]
struct DatasetWire {
    window: Window,
    attacks: Vec<AttackRecord>,
    bots: Vec<BotRecord>,
    botnets: Vec<BotnetRecord>,
    snapshots: BTreeMap<Family, SnapshotSeries>,
}

impl Serialize for Dataset {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Dataset", 5)?;
        s.serialize_field("window", &self.window)?;
        s.serialize_field("attacks", &self.attacks)?;
        s.serialize_field("bots", &self.bots)?;
        s.serialize_field("botnets", &self.botnets)?;
        s.serialize_field("snapshots", &self.snapshots)?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for Dataset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let wire = DatasetWire::deserialize(deserializer)?;
        // Deserialized data is untrusted: enforce the same invariants the
        // builder does, so a hand-edited JSON file cannot smuggle in
        // records that would break downstream analyses.
        let mut seen = HashSet::with_capacity(wire.attacks.len());
        for atk in &wire.attacks {
            atk.validate().map_err(D::Error::custom)?;
            if !seen.insert(atk.id) {
                return Err(D::Error::custom(format!("duplicate attack id {}", atk.id)));
            }
        }
        let mut ds = Dataset {
            window: wire.window,
            attacks: wire.attacks,
            bots: wire.bots,
            botnets: wire.botnets,
            snapshots: wire.snapshots,
            by_family: HashMap::new(),
            by_target: HashMap::new(),
            by_botnet: HashMap::new(),
            targets: OnceLock::new(),
            summary: OnceLock::new(),
        };
        ds.attacks.sort_by_key(|a| (a.start, a.id));
        ds.rebuild_indexes();
        Ok(ds)
    }
}

impl Dataset {
    /// The observation window of the trace.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// All attacks, sorted by `(start, id)`.
    #[inline]
    pub fn attacks(&self) -> &[AttackRecord] {
        &self.attacks
    }

    /// All bot records.
    #[inline]
    pub fn bots(&self) -> &[BotRecord] {
        &self.bots
    }

    /// All botnet generation records.
    #[inline]
    pub fn botnets(&self) -> &[BotnetRecord] {
        &self.botnets
    }

    /// Snapshot series for one family, if present.
    pub fn snapshots(&self, family: Family) -> Option<&SnapshotSeries> {
        self.snapshots.get(&family)
    }

    /// Families that have at least one snapshot, in enum order.
    pub fn snapshot_families(&self) -> impl Iterator<Item = Family> + '_ {
        self.snapshots.keys().copied()
    }

    /// Attacks launched by one family, in start order.
    pub fn attacks_of(&self, family: Family) -> impl Iterator<Item = &AttackRecord> {
        self.by_family
            .get(&family)
            .into_iter()
            .flatten()
            .map(move |&i| &self.attacks[i as usize])
    }

    /// Indices into [`Dataset::attacks`] of one family's attacks,
    /// ascending (the index slice behind [`Dataset::attacks_of`]). Lets
    /// batch consumers join an attack against other per-index columns.
    pub fn attack_indices_of(&self, family: Family) -> &[u32] {
        self.by_family.get(&family).map_or(&[], Vec::as_slice)
    }

    /// Attacks against one target IP, in start order.
    pub fn attacks_on(&self, target: IpAddr4) -> impl Iterator<Item = &AttackRecord> {
        self.by_target
            .get(&target)
            .into_iter()
            .flatten()
            .map(move |&i| &self.attacks[i as usize])
    }

    /// Attacks launched by one botnet generation, in start order.
    pub fn attacks_by_botnet(&self, botnet: BotnetId) -> impl Iterator<Item = &AttackRecord> {
        self.by_botnet
            .get(&botnet)
            .into_iter()
            .flatten()
            .map(move |&i| &self.attacks[i as usize])
    }

    /// Attacks that *start* inside `[from, to)`, in start order
    /// (binary search over the globally sorted attack list).
    pub fn attacks_between(
        &self,
        from: crate::time::Timestamp,
        to: crate::time::Timestamp,
    ) -> &[AttackRecord] {
        let lo = self.attacks.partition_point(|a| a.start < from);
        let hi = self.attacks.partition_point(|a| a.start < to);
        &self.attacks[lo..hi]
    }

    /// Distinct target IPs, in address order. Built lazily on first call
    /// and cached for the lifetime of the dataset (the record set is
    /// immutable after construction).
    pub fn targets(&self) -> &[IpAddr4] {
        self.targets.get_or_init(|| {
            let mut t: Vec<IpAddr4> = self.by_target.keys().copied().collect();
            t.sort_unstable();
            t
        })
    }

    /// Number of attacks.
    #[inline]
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// Whether the dataset holds no attacks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Computes the Table III style summary over the whole trace.
    ///
    /// Attacker-side counts are taken over the bot records (the `Botlist`
    /// join), victim-side counts over the attack targets. Computed on
    /// first call and cached for the lifetime of the dataset (the record
    /// set is immutable after construction); the incremental epoch
    /// pipeline re-runs the `summary` pass on every bot-roster change,
    /// so repeat calls must not rescan the trace.
    pub fn summary(&self) -> DatasetSummary {
        *self.summary.get_or_init(|| self.compute_summary())
    }

    /// The uncached Table III scan behind [`Dataset::summary`].
    fn compute_summary(&self) -> DatasetSummary {
        // Distinct counting over millions of small copy keys: pre-sized
        // FastHasher sets, not SipHash.
        let mut a_ips = fast_set(self.bots.len());
        let mut a_city = fast_set(self.bots.len());
        let mut a_cc = fast_set(256);
        let mut a_org = fast_set(self.bots.len());
        let mut a_asn = fast_set(self.bots.len());
        for bot in &self.bots {
            a_ips.insert(bot.ip);
            a_city.insert(bot.location.city);
            a_cc.insert(bot.location.country);
            a_org.insert(bot.location.org);
            a_asn.insert(bot.location.asn);
        }
        let mut v_ips: FastSet<IpAddr4> = fast_set(self.attacks.len());
        let mut v_city: FastSet<CityId> = fast_set(self.attacks.len());
        let mut v_cc: FastSet<CountryCode> = fast_set(256);
        let mut v_org: FastSet<OrgId> = fast_set(self.attacks.len());
        let mut v_asn: FastSet<Asn> = fast_set(self.attacks.len());
        let mut protocols = fast_set(16);
        let mut botnet_ids = fast_set(self.attacks.len());
        for atk in &self.attacks {
            v_ips.insert(atk.target_ip);
            v_city.insert(atk.target.city);
            v_cc.insert(atk.target.country);
            v_org.insert(atk.target.org);
            v_asn.insert(atk.target.asn);
            protocols.insert(atk.category);
            botnet_ids.insert(atk.botnet);
        }
        DatasetSummary {
            attackers: SideSummary {
                ips: a_ips.len(),
                cities: a_city.len(),
                countries: a_cc.len(),
                organizations: a_org.len(),
                asns: a_asn.len(),
            },
            victims: SideSummary {
                ips: v_ips.len(),
                cities: v_city.len(),
                countries: v_cc.len(),
                organizations: v_org.len(),
                asns: v_asn.len(),
            },
            attacks: self.attacks.len(),
            botnets: botnet_ids.len(),
            traffic_types: protocols.len(),
        }
    }

    /// Rebuilds the (serde-skipped) indexes; used after deserialization.
    pub(crate) fn rebuild_indexes(&mut self) {
        self.by_family.clear();
        self.by_target.clear();
        self.by_botnet.clear();
        self.targets = OnceLock::new();
        self.summary = OnceLock::new();
        for (i, atk) in self.attacks.iter().enumerate() {
            let i = i as u32;
            self.by_family.entry(atk.family).or_default().push(i);
            self.by_target.entry(atk.target_ip).or_default().push(i);
            self.by_botnet.entry(atk.botnet).or_default().push(i);
        }
    }
}

/// Validating builder for [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    window: Window,
    attacks: Vec<AttackRecord>,
    bots: Vec<BotRecord>,
    botnets: Vec<BotnetRecord>,
    snapshots: BTreeMap<Family, SnapshotSeries>,
    /// When true (default), attacks outside the window are rejected.
    enforce_window: bool,
}

impl DatasetBuilder {
    /// Starts a builder for a trace covering `window`.
    pub fn new(window: Window) -> DatasetBuilder {
        DatasetBuilder {
            window,
            attacks: Vec::new(),
            bots: Vec::new(),
            botnets: Vec::new(),
            snapshots: BTreeMap::new(),
            enforce_window: true,
        }
    }

    /// Disables the check that every attack starts inside the window.
    pub fn allow_out_of_window(mut self) -> DatasetBuilder {
        self.enforce_window = false;
        self
    }

    /// Adds one attack record (validated).
    pub fn push_attack(&mut self, attack: AttackRecord) -> Result<&mut Self, SchemaError> {
        attack.validate()?;
        if self.enforce_window && !self.window.contains(attack.start) {
            return Err(SchemaError::InvalidDataset(format!(
                "attack {} starts at {} outside window [{}, {})",
                attack.id, attack.start, self.window.start, self.window.end
            )));
        }
        self.attacks.push(attack);
        Ok(self)
    }

    /// Adds many attack records (each validated).
    pub fn extend_attacks<I>(&mut self, attacks: I) -> Result<&mut Self, SchemaError>
    where
        I: IntoIterator<Item = AttackRecord>,
    {
        for a in attacks {
            self.push_attack(a)?;
        }
        Ok(self)
    }

    /// Appends attack records the caller has already validated — the
    /// framed decoder runs per-record validation on its worker threads,
    /// so re-checking here would double the work. Window enforcement is
    /// intentionally skipped too (the codecs build with
    /// [`DatasetBuilder::allow_out_of_window`]); the whole-dataset
    /// checks in [`DatasetBuilder::build`] still apply.
    pub(crate) fn extend_attacks_prevalidated(&mut self, attacks: Vec<AttackRecord>) {
        if self.attacks.is_empty() {
            self.attacks = attacks;
        } else {
            self.attacks.extend(attacks);
        }
    }

    /// Appends bot records the caller has already validated.
    pub(crate) fn extend_bots_prevalidated(&mut self, bots: Vec<BotRecord>) {
        if self.bots.is_empty() {
            self.bots = bots;
        } else {
            self.bots.extend(bots);
        }
    }

    /// Appends botnet records the caller has already validated.
    pub(crate) fn extend_botnets_prevalidated(&mut self, botnets: Vec<BotnetRecord>) {
        if self.botnets.is_empty() {
            self.botnets = botnets;
        } else {
            self.botnets.extend(botnets);
        }
    }

    /// Adds one bot record (validated).
    pub fn push_bot(&mut self, bot: BotRecord) -> Result<&mut Self, SchemaError> {
        bot.validate()?;
        self.bots.push(bot);
        Ok(self)
    }

    /// Adds one botnet generation record (validated).
    pub fn push_botnet(&mut self, botnet: BotnetRecord) -> Result<&mut Self, SchemaError> {
        botnet.validate()?;
        self.botnets.push(botnet);
        Ok(self)
    }

    /// Installs the snapshot series for a family (replaces any previous).
    pub fn set_snapshots(
        &mut self,
        family: Family,
        series: SnapshotSeries,
    ) -> Result<&mut Self, SchemaError> {
        if let Some(series_family) = series.family() {
            if series_family != family {
                return Err(SchemaError::InvalidDataset(format!(
                    "snapshot series for {series_family} installed under {family}"
                )));
            }
        }
        self.snapshots.insert(family, series);
        Ok(self)
    }

    /// Finishes the build: checks id uniqueness, sorts, builds indexes.
    pub fn build(self) -> Result<Dataset, SchemaError> {
        let mut seen = HashSet::with_capacity(self.attacks.len());
        for atk in &self.attacks {
            if !seen.insert(atk.id) {
                return Err(SchemaError::InvalidDataset(format!(
                    "duplicate attack id {}",
                    atk.id
                )));
            }
        }
        let mut botnet_seen = HashSet::with_capacity(self.botnets.len());
        for bn in &self.botnets {
            if !botnet_seen.insert(bn.id) {
                return Err(SchemaError::InvalidDataset(format!(
                    "duplicate botnet id {}",
                    bn.id
                )));
            }
        }
        let mut ds = Dataset {
            window: self.window,
            attacks: self.attacks,
            bots: self.bots,
            botnets: self.botnets,
            snapshots: self.snapshots,
            by_family: HashMap::new(),
            by_target: HashMap::new(),
            by_botnet: HashMap::new(),
            targets: OnceLock::new(),
            summary: OnceLock::new(),
        };
        ds.attacks.sort_by_key(|a| (a.start, a.id));
        ds.rebuild_indexes();
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DdosId;
    use crate::record::test_fixtures::attack;
    use crate::time::Timestamp;

    fn window() -> Window {
        Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap()
    }

    #[test]
    fn build_sorts_and_indexes() {
        let mut b = DatasetBuilder::new(window());
        b.push_attack(attack(2, 5_000)).unwrap();
        b.push_attack(attack(1, 1_000)).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.attacks()[0].id, DdosId(1));
        assert_eq!(ds.attacks_of(Family::Dirtjumper).count(), 2);
        assert_eq!(ds.attacks_of(Family::Optima).count(), 0);
        assert_eq!(ds.attacks_on(ds.attacks()[0].target_ip).count(), 2);
        assert_eq!(ds.attacks_by_botnet(BotnetId(7)).count(), 2);
        assert_eq!(ds.targets().len(), 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn attacks_between_is_a_half_open_slice() {
        let mut b = DatasetBuilder::new(window());
        for (id, start) in [(1, 100), (2, 500), (3, 500), (4, 900)] {
            b.push_attack(attack(id, start)).unwrap();
        }
        let ds = b.build().unwrap();
        assert_eq!(ds.attacks_between(Timestamp(100), Timestamp(900)).len(), 3);
        assert_eq!(ds.attacks_between(Timestamp(101), Timestamp(500)).len(), 0);
        assert_eq!(ds.attacks_between(Timestamp(500), Timestamp(501)).len(), 2);
        assert_eq!(ds.attacks_between(Timestamp(0), Timestamp(10_000)).len(), 4);
        assert!(ds
            .attacks_between(Timestamp(901), Timestamp(902))
            .is_empty());
    }

    #[test]
    fn duplicate_attack_ids_rejected() {
        let mut b = DatasetBuilder::new(window());
        b.push_attack(attack(1, 1_000)).unwrap();
        b.push_attack(attack(1, 2_000)).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn out_of_window_attacks_rejected_unless_allowed() {
        let mut b = DatasetBuilder::new(window());
        assert!(b.push_attack(attack(1, 2_000_000)).is_err());
        let mut b = DatasetBuilder::new(window()).allow_out_of_window();
        assert!(b.push_attack(attack(1, 2_000_000)).is_ok());
    }

    #[test]
    fn invalid_record_rejected_at_push() {
        let mut bad = attack(1, 1_000);
        bad.sources.clear();
        let mut b = DatasetBuilder::new(window());
        assert!(b.push_attack(bad).is_err());
    }

    #[test]
    fn summary_counts_distincts() {
        let mut b = DatasetBuilder::new(window());
        let mut a1 = attack(1, 1_000);
        a1.category = crate::Protocol::Http;
        let mut a2 = attack(2, 2_000);
        a2.category = crate::Protocol::Udp;
        a2.target_ip = IpAddr4::from_octets(198, 51, 100, 2);
        b.push_attack(a1).unwrap();
        b.push_attack(a2).unwrap();
        let ds = b.build().unwrap();
        let s = ds.summary();
        assert_eq!(s.attacks, 2);
        assert_eq!(s.victims.ips, 2);
        assert_eq!(s.traffic_types, 2);
        assert_eq!(s.botnets, 1);
        // No bot records were added, so attacker side is empty.
        assert_eq!(s.attackers.ips, 0);
    }

    #[test]
    fn snapshot_family_mismatch_rejected() {
        use crate::snapshot::HourlySnapshot;
        let series = SnapshotSeries::from_snapshots(vec![HourlySnapshot {
            family: Family::Pandora,
            taken_at: Timestamp(3_600),
            bots: vec![],
        }])
        .unwrap();
        let mut b = DatasetBuilder::new(window());
        assert!(b.set_snapshots(Family::Nitol, series.clone()).is_err());
        assert!(b.set_snapshots(Family::Pandora, series).is_ok());
    }

    #[test]
    fn deserialization_rejects_invalid_records() {
        let mut b = DatasetBuilder::new(window());
        b.push_attack(attack(1, 1_000)).unwrap();
        let ds = b.build().unwrap();
        let json = serde_json::to_string(&ds).unwrap();
        // Duplicate the attack (same id) in the raw JSON.
        let dup = json.replacen("\"attacks\":[", "\"attacks\":[DUP,", 1);
        let record = serde_json::to_string(&ds.attacks()[0]).unwrap();
        let dup = dup.replace("DUP", &record);
        let err = serde_json::from_str::<Dataset>(&dup).unwrap_err();
        assert!(err.to_string().contains("duplicate attack id"), "{err}");
        // An end-before-start record is rejected too.
        let bad = json.replace("\"end\":1600", "\"end\":1");
        assert_ne!(bad, json, "fixture layout changed");
        assert!(serde_json::from_str::<Dataset>(&bad).is_err());
    }

    #[test]
    fn serde_round_trip_rebuilds_indexes() {
        let mut b = DatasetBuilder::new(window());
        b.push_attack(attack(1, 1_000)).unwrap();
        b.push_attack(attack(2, 500)).unwrap();
        let ds = b.build().unwrap();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.attacks_of(Family::Dirtjumper).count(), 2);
        assert_eq!(back.attacks()[0].id, DdosId(2));
        assert_eq!(back.window(), ds.window());
    }
}
