//! A fast hasher for the schema's small copy keys.
//!
//! [`Dataset::summary`](crate::Dataset::summary) and the index builders
//! perform millions of set/map operations over fixed-width keys the
//! process generated itself — ids, addresses, two-letter country codes.
//! HashDoS resistance buys nothing against a fixed research trace, so
//! [`FastHasher`] trades SipHash for one multiply plus an xor-shift per
//! word (the classic Fibonacci-hash mix).
//!
//! Collections keyed this way iterate in a different order than SipHash
//! ones — only use [`FastSet`]/[`FastMap`] where results are independent
//! of iteration order (membership tests, distinct counts, or maps that
//! get sorted before anything order-sensitive reads them).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply–xor-shift hasher for small fixed-width keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Short inputs only (a country code, an enum tag); fold whole
        // words where possible so `[u8; 2]` keys cost one mix.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        // Mix the previous state in so composite keys still distribute.
        let x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Hash set using [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Hash map using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A [`FastSet`] pre-sized for `n` insertions.
pub fn fast_set<T>(n: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(n, Default::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_ne!(hash_of(42u32), hash_of(43u32));
        assert_ne!(hash_of([b'R', b'U']), hash_of([b'U', b'R']));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
    }

    #[test]
    fn byte_writes_fold_into_words() {
        // 9 bytes exercises both the whole-word and the remainder path.
        assert_ne!(hash_of(*b"abcdefghi"), hash_of(*b"abcdefghj"));
        assert_eq!(hash_of(*b"abcdefghi"), hash_of(*b"abcdefghi"));
    }

    #[test]
    fn set_behaves_like_std_for_membership() {
        let mut set = fast_set::<u32>(4);
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(&7));
        assert_eq!(set.len(), 1);
        let map: FastMap<u32, u32> = [(1, 2)].into_iter().collect();
        assert_eq!(map.get(&1), Some(&2));
    }
}
