//! Hourly botnet population snapshots.
//!
//! The feed publishes, for every tracked family, one report per hour
//! listing the bots seen active in the trailing 24 hours (§II-B). The
//! paper's source analysis (§IV-A) is driven entirely by these snapshots:
//! weekly country *shift patterns* (Fig. 8) and the per-snapshot
//! geolocation *dispersion* series (Figs. 9–13) both consume them.

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;
use crate::family::Family;
use crate::geo::{CountryCode, LatLon};
use crate::ip::IpAddr4;
use crate::time::{Seconds, Timestamp};

/// Presence of one bot in one snapshot: address plus resolved geolocation.
///
/// The feed geolocates addresses at collection time ("a real-time process,
/// making it resistive to IP dynamics", §II-D), so coordinates are stored
/// per presence rather than re-resolved later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BotPresence {
    /// Bot address.
    pub ip: IpAddr4,
    /// Country the address resolved to at snapshot time.
    pub country: CountryCode,
    /// Coordinates the address resolved to at snapshot time.
    pub coords: LatLon,
}

/// One hourly report for one family: the bots active in the past 24 hours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySnapshot {
    /// The family the report covers.
    pub family: Family,
    /// The instant the snapshot was logged (top of an hour).
    pub taken_at: Timestamp,
    /// Bots seen active in the trailing 24-hour span.
    pub bots: Vec<BotPresence>,
}

impl HourlySnapshot {
    /// Number of bots in the snapshot.
    #[inline]
    pub fn population(&self) -> usize {
        self.bots.len()
    }

    /// Distinct countries present in the snapshot, sorted.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut cs: Vec<CountryCode> = self.bots.iter().map(|b| b.country).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Validates the snapshot timestamp is hour-aligned.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.taken_at.unix() % Seconds::HOUR.get() != 0 {
            return Err(SchemaError::InvalidRecord(format!(
                "snapshot for {} at {} is not hour-aligned",
                self.family, self.taken_at
            )));
        }
        Ok(())
    }
}

/// A time-ordered series of snapshots for a single family.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotSeries {
    snapshots: Vec<HourlySnapshot>,
}

impl SnapshotSeries {
    /// Creates an empty series.
    pub fn new() -> SnapshotSeries {
        SnapshotSeries::default()
    }

    /// Builds a series from snapshots, sorting by timestamp and rejecting
    /// mixed families or duplicate instants.
    pub fn from_snapshots(
        mut snapshots: Vec<HourlySnapshot>,
    ) -> Result<SnapshotSeries, SchemaError> {
        snapshots.sort_by_key(|s| s.taken_at);
        if let Some(first) = snapshots.first() {
            let family = first.family;
            for pair in snapshots.windows(2) {
                if pair[1].family != family {
                    return Err(SchemaError::InvalidDataset(format!(
                        "snapshot series mixes families {} and {}",
                        family, pair[1].family
                    )));
                }
                if pair[0].taken_at == pair[1].taken_at {
                    return Err(SchemaError::InvalidDataset(format!(
                        "duplicate snapshot instant {} for {}",
                        pair[0].taken_at, family
                    )));
                }
            }
        }
        Ok(SnapshotSeries { snapshots })
    }

    /// Appends a snapshot; it must be later than the current tail and of
    /// the same family.
    pub fn push(&mut self, snapshot: HourlySnapshot) -> Result<(), SchemaError> {
        if let Some(last) = self.snapshots.last() {
            if snapshot.family != last.family {
                return Err(SchemaError::InvalidDataset(format!(
                    "snapshot family {} does not match series family {}",
                    snapshot.family, last.family
                )));
            }
            if snapshot.taken_at <= last.taken_at {
                return Err(SchemaError::InvalidDataset(format!(
                    "snapshot at {} not after series tail {}",
                    snapshot.taken_at, last.taken_at
                )));
            }
        }
        self.snapshots.push(snapshot);
        Ok(())
    }

    /// The family covered, if the series is non-empty.
    pub fn family(&self) -> Option<Family> {
        self.snapshots.first().map(|s| s.family)
    }

    /// Number of snapshots.
    #[inline]
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the series is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshots in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, HourlySnapshot> {
        self.snapshots.iter()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[HourlySnapshot] {
        &self.snapshots
    }

    /// Number of *days* on which the series has at least one snapshot —
    /// the paper reports dispersion only for families "with at least 10
    /// snapshots (with active attacks for more than 10 days)" (§IV-A).
    pub fn active_days(&self) -> usize {
        let mut days: Vec<i64> = self
            .snapshots
            .iter()
            .map(|s| s.taken_at.unix().div_euclid(Seconds::DAY.get()))
            .collect();
        days.sort_unstable();
        days.dedup();
        days.len()
    }
}

impl<'a> IntoIterator for &'a SnapshotSeries {
    type Item = &'a HourlySnapshot;
    type IntoIter = std::slice::Iter<'a, HourlySnapshot>;

    fn into_iter(self) -> Self::IntoIter {
        self.snapshots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presence(ip: u32, cc: &'static str) -> BotPresence {
        BotPresence {
            ip: IpAddr4(ip),
            country: cc.parse().unwrap(),
            coords: LatLon::new_unchecked(10.0, 20.0),
        }
    }

    fn snap(family: Family, hour: i64, bots: Vec<BotPresence>) -> HourlySnapshot {
        HourlySnapshot {
            family,
            taken_at: Timestamp(hour * 3_600),
            bots,
        }
    }

    #[test]
    fn population_and_countries() {
        let s = snap(
            Family::Pandora,
            5,
            vec![presence(1, "RU"), presence(2, "US"), presence(3, "RU")],
        );
        assert_eq!(s.population(), 3);
        let cs = s.countries();
        assert_eq!(cs.len(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unaligned_timestamp() {
        let mut s = snap(Family::Pandora, 5, vec![]);
        s.taken_at = Timestamp(5 * 3_600 + 17);
        assert!(s.validate().is_err());
    }

    #[test]
    fn series_orders_and_rejects_duplicates() {
        let a = snap(Family::Nitol, 2, vec![]);
        let b = snap(Family::Nitol, 1, vec![]);
        let series = SnapshotSeries::from_snapshots(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(series.as_slice()[0].taken_at, b.taken_at);
        assert!(SnapshotSeries::from_snapshots(vec![a.clone(), a]).is_err());
    }

    #[test]
    fn series_rejects_mixed_families() {
        let a = snap(Family::Nitol, 1, vec![]);
        let b = snap(Family::Optima, 2, vec![]);
        assert!(SnapshotSeries::from_snapshots(vec![a, b]).is_err());
    }

    #[test]
    fn push_enforces_order_and_family() {
        let mut series = SnapshotSeries::new();
        series.push(snap(Family::Yzf, 1, vec![])).unwrap();
        assert!(series.push(snap(Family::Yzf, 1, vec![])).is_err());
        assert!(series.push(snap(Family::Optima, 2, vec![])).is_err());
        series.push(snap(Family::Yzf, 2, vec![])).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series.family(), Some(Family::Yzf));
    }

    #[test]
    fn active_days_counts_distinct_days() {
        let mut series = SnapshotSeries::new();
        for h in [0, 1, 2, 24, 25, 72] {
            series.push(snap(Family::Ddoser, h, vec![])).unwrap();
        }
        assert_eq!(series.active_days(), 3);
    }
}
