//! Shared read-side primitives for the binary codecs.
//!
//! Two cursors read the `DDTL` wire encoding: the v1 decoder keeps the
//! original `bytes::Bytes` path as the serial reference, and the framed
//! v2 decoder reads through [`SliceReader`], a zero-copy cursor over a
//! borrowed slice (typically a memory-mapped file) whose accessors are
//! small enough to inline into the record decoders. Both implement
//! [`WireBuf`], so each per-record decode function in [`crate::codec`]
//! is written once and monomorphizes to a specialized body per cursor.
//!
//! The contract every `take_*` call relies on: the caller has already
//! established, via [`need`] (or a varint read, which checks per byte),
//! that enough bytes remain. The decoders uphold this before every
//! fixed-width read — `codec`'s truncation tests walk every prefix of
//! an encoded trace through both cursors to prove it.

use bytes::{Buf, Bytes};

use crate::error::SchemaError;

/// Read cursor over the binary wire encoding (network byte order).
pub(crate) trait WireBuf {
    /// Bytes left to consume.
    fn left(&self) -> usize;
    /// Reads one byte.
    fn take_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn take_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn take_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn take_u64(&mut self) -> u64;
    /// Reads a big-endian `i64`.
    fn take_i64(&mut self) -> i64;
    /// Reads a big-endian IEEE-754 `f64`.
    fn take_f64(&mut self) -> f64;
    /// Reads `dst.len()` bytes.
    fn take_into(&mut self, dst: &mut [u8]);
}

/// Errors (without consuming) unless `n` bytes remain for `what`.
pub(crate) fn need<B: WireBuf>(buf: &B, n: usize, what: &str) -> Result<(), SchemaError> {
    if buf.left() < n {
        Err(SchemaError::Codec(format!(
            "truncated input: need {n} bytes for {what}, have {}",
            buf.left()
        )))
    } else {
        Ok(())
    }
}

/// Reads a LEB128 varint, checking availability byte by byte.
pub(crate) fn get_varint<B: WireBuf>(buf: &mut B) -> Result<u64, SchemaError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.left() == 0 {
            return Err(SchemaError::Codec("truncated varint".into()));
        }
        let byte = buf.take_u8();
        if shift >= 64 {
            return Err(SchemaError::Codec("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl WireBuf for Bytes {
    #[inline]
    fn left(&self) -> usize {
        self.remaining()
    }
    #[inline]
    fn take_u8(&mut self) -> u8 {
        self.get_u8()
    }
    #[inline]
    fn take_u16(&mut self) -> u16 {
        self.get_u16()
    }
    #[inline]
    fn take_u32(&mut self) -> u32 {
        self.get_u32()
    }
    #[inline]
    fn take_u64(&mut self) -> u64 {
        self.get_u64()
    }
    #[inline]
    fn take_i64(&mut self) -> i64 {
        self.get_i64()
    }
    #[inline]
    fn take_f64(&mut self) -> f64 {
        self.get_f64()
    }
    #[inline]
    fn take_into(&mut self, dst: &mut [u8]) {
        self.copy_to_slice(dst)
    }
}

/// Zero-copy cursor over a borrowed byte slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    #[inline]
    pub(crate) fn new(buf: &'a [u8]) -> SliceReader<'a> {
        SliceReader { buf, pos: 0 }
    }

    /// Bytes consumed so far (offset of the cursor into the slice).
    #[inline]
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    #[inline]
    fn array<const N: usize>(&mut self) -> [u8; N] {
        let a: [u8; N] = self.buf[self.pos..self.pos + N]
            .try_into()
            .expect("length checked by the slice index");
        self.pos += N;
        a
    }
}

impl WireBuf for SliceReader<'_> {
    #[inline]
    fn left(&self) -> usize {
        self.buf.len() - self.pos
    }
    #[inline]
    fn take_u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }
    #[inline]
    fn take_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.array())
    }
    #[inline]
    fn take_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.array())
    }
    #[inline]
    fn take_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.array())
    }
    #[inline]
    fn take_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.array())
    }
    #[inline]
    fn take_f64(&mut self) -> f64 {
        f64::from_bits(self.take_u64())
    }
    #[inline]
    fn take_into(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.buf[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};

    #[test]
    fn both_cursors_read_the_same_stream() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(42);
        w.put_i64(-5);
        w.put_f64(1.5);
        w.put_slice(b"xy");
        let encoded = w.freeze().to_vec();

        let mut slice = SliceReader::new(&encoded);
        let mut bytes = Bytes::copy_from_slice(&encoded);
        fn drain<B: WireBuf>(b: &mut B) -> (u8, u16, u32, u64, i64, f64, [u8; 2]) {
            let mut tail = [0u8; 2];
            let out = (
                b.take_u8(),
                b.take_u16(),
                b.take_u32(),
                b.take_u64(),
                b.take_i64(),
                b.take_f64(),
            );
            b.take_into(&mut tail);
            (out.0, out.1, out.2, out.3, out.4, out.5, tail)
        }
        assert_eq!(drain(&mut slice), drain(&mut bytes));
        assert_eq!(slice.left(), 0);
        assert_eq!(bytes.left(), 0);
        assert_eq!(slice.pos(), encoded.len());
    }

    #[test]
    fn need_reports_shortfall() {
        let r = SliceReader::new(&[1, 2, 3]);
        assert!(need(&r, 3, "x").is_ok());
        let err = need(&r, 4, "header").unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn varint_truncation_and_overflow_error() {
        let mut r = SliceReader::new(&[0x80]);
        assert!(get_varint(&mut r).is_err());
        let mut r = SliceReader::new(&[0xFF; 11]);
        assert!(get_varint(&mut r).is_err());
    }
}
