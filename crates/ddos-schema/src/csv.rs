//! Plain-text (CSV) interchange for the `DDoSattack` schema.
//!
//! The binary `DDTL` format is for fast round trips of generated traces;
//! this module is the path for getting *external* data in and out — a
//! CSV with one attack per row, columns mirroring Table I. A real feed
//! exported to this layout drops straight into every analysis.
//!
//! Layout (header required, comma-separated, no quoting — all fields are
//! numeric or enumerated):
//!
//! ```text
//! ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,asn,cc,city,org,latitude,longitude,botnet_ips
//! 17,42,dirtjumper,HTTP,198.51.100.7,1346203800,1346208900,64512,RU,31,77,55.7558,37.6173,203.0.113.5 203.0.113.9
//! ```
//!
//! `botnet_ips` is space-separated (the one list-valued field).

use std::fmt::Write as _;

use crate::error::SchemaError;
use crate::record::{AttackRecord, Location};
use crate::{Asn, BotnetId, CityId, DdosId, Family, IpAddr4, LatLon, OrgId, Protocol, Timestamp};

/// The header row this module writes and requires on input.
pub const HEADER: &str = "ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,\
                          asn,cc,city,org,latitude,longitude,botnet_ips";

/// Serializes attack records to CSV (with header).
pub fn attacks_to_csv<'a, I>(attacks: I) -> String
where
    I: IntoIterator<Item = &'a AttackRecord>,
{
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for a in attacks {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},",
            a.id.value(),
            a.botnet.value(),
            a.family.name(),
            a.category.name(),
            a.target_ip,
            a.start.unix(),
            a.end.unix(),
            a.target.asn.value(),
            a.target.country,
            a.target.city.value(),
            a.target.org.value(),
            a.target.coords.lat,
            a.target.coords.lon,
        );
        for (i, ip) in a.sources.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{ip}");
        }
        out.push('\n');
    }
    out
}

/// Parses attack records from CSV produced by [`attacks_to_csv`] (or an
/// external export in the same layout). Blank lines and `#` comments are
/// skipped; every data row is fully validated. Diagnostics carry the
/// 1-based line number in the original input.
pub fn attacks_from_csv(text: &str) -> Result<Vec<AttackRecord>, SchemaError> {
    let lines = indexed_lines(text);
    let data = check_header(&lines)?;
    // The serial parse counts as one chunk at the failpoint.
    crate::fail::check(crate::fail::INGEST_CSV_CHUNK)?;
    let mut out = Vec::with_capacity(data.len());
    // One field buffer reused across all rows instead of a fresh
    // `Vec<&str>` per row; `parse_line` only reads it within the call.
    let mut fields: Vec<&str> = Vec::with_capacity(14);
    for &(lineno, line) in data {
        out.push(parse_line(lineno, line, &mut fields)?);
    }
    Ok(out)
}

/// Parallel variant of [`attacks_from_csv`]: the line index is built in
/// one sweep, contiguous chunks of rows are parsed on scoped threads
/// (each with its own reused field buffer), and the per-chunk results
/// are spliced in chunk order. Because chunks partition the rows in
/// order, scanning results in chunk order makes the error for the
/// earliest offending line win — output and diagnostics are identical
/// to the serial path, which proptest in `tests/ingest.rs` pins.
pub fn attacks_from_csv_chunked(text: &str) -> Result<Vec<AttackRecord>, SchemaError> {
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    attacks_from_csv_chunked_with(text, workers)
}

/// [`attacks_from_csv_chunked`] with an explicit worker count, so tests
/// and benches can pin the parallel path regardless of host cores.
/// Degrades to the serial loop when the input is too small to be worth
/// splitting.
pub fn attacks_from_csv_chunked_with(
    text: &str,
    workers: usize,
) -> Result<Vec<AttackRecord>, SchemaError> {
    let lines = indexed_lines(text);
    let data = check_header(&lines)?;
    let workers = workers.min(data.len() / MIN_ROWS_PER_CHUNK);
    if workers <= 1 {
        crate::fail::check(crate::fail::INGEST_CSV_CHUNK)?;
        let mut out = Vec::with_capacity(data.len());
        let mut fields: Vec<&str> = Vec::with_capacity(14);
        for &(lineno, line) in data {
            out.push(parse_line(lineno, line, &mut fields)?);
        }
        return Ok(out);
    }
    let chunk_len = data.len().div_ceil(workers);
    let chunks: Vec<&[(usize, &str)]> = data.chunks(chunk_len).collect();
    let parsed: Vec<Result<Vec<AttackRecord>, SchemaError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&chunk| {
                scope.spawn(move |_| {
                    crate::fail::check(crate::fail::INGEST_CSV_CHUNK)?;
                    let mut out = Vec::with_capacity(chunk.len());
                    let mut fields: Vec<&str> = Vec::with_capacity(14);
                    for &(lineno, line) in chunk {
                        out.push(parse_line(lineno, line, &mut fields)?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("csv chunk worker panicked"))
            .collect()
    })
    .expect("csv chunk scope panicked");
    let mut out = Vec::with_capacity(data.len());
    for chunk in parsed {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Below this many rows per would-be chunk the spawn overhead outweighs
/// the parse work and the chunked path degrades to the serial loop.
const MIN_ROWS_PER_CHUNK: usize = 256;

/// One sweep over the input: trims, drops blank/comment lines, and
/// tags every surviving line with its 1-based original line number.
fn indexed_lines(text: &str) -> Vec<(usize, &str)> {
    text.lines()
        .enumerate()
        .filter_map(|(i, line)| {
            let line = line.trim();
            (!line.is_empty() && !line.starts_with('#')).then_some((i + 1, line))
        })
        .collect()
}

/// Validates the header line and returns the data rows after it.
fn check_header<'a, 'b>(
    lines: &'a [(usize, &'b str)],
) -> Result<&'a [(usize, &'b str)], SchemaError> {
    let ((_, header), data) = lines
        .split_first()
        .ok_or_else(|| SchemaError::Codec("empty CSV input".into()))?;
    if normalize_header(header) != normalize_header(HEADER) {
        return Err(SchemaError::Codec(format!(
            "unexpected CSV header {header:?}"
        )));
    }
    Ok(data)
}

fn parse_line<'a>(
    lineno: usize,
    line: &'a str,
    fields: &mut Vec<&'a str>,
) -> Result<AttackRecord, SchemaError> {
    fields.clear();
    fields.extend(line.split(','));
    if fields.len() != 14 {
        return Err(SchemaError::Codec(format!(
            "line {lineno}: expected 14 columns, found {}",
            fields.len()
        )));
    }
    let attack =
        parse_row(fields).map_err(|e| SchemaError::Codec(format!("line {lineno}: {e}")))?;
    attack.validate()?;
    Ok(attack)
}

fn normalize_header(h: &str) -> String {
    h.chars().filter(|c| !c.is_whitespace()).collect()
}

fn parse_row(row: &[&str]) -> Result<AttackRecord, SchemaError> {
    let num = |field: &'static str, s: &str| -> Result<i64, SchemaError> {
        s.parse().map_err(|_| SchemaError::parse(field, s))
    };
    let fnum = |field: &'static str, s: &str| -> Result<f64, SchemaError> {
        s.parse().map_err(|_| SchemaError::parse(field, s))
    };
    let sources = row[13]
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<Vec<IpAddr4>, _>>()?;
    Ok(AttackRecord {
        id: DdosId(num("ddos_id", row[0])? as u64),
        botnet: BotnetId(num("botnet_id", row[1])? as u32),
        family: row[2].parse::<Family>()?,
        category: row[3].parse::<Protocol>()?,
        target_ip: row[4].parse()?,
        start: Timestamp(num("timestamp", row[5])?),
        end: Timestamp(num("end_time", row[6])?),
        target: Location {
            asn: Asn(num("asn", row[7])? as u32),
            country: row[8].parse()?,
            city: CityId(num("city", row[9])? as u32),
            org: OrgId(num("org", row[10])? as u32),
            coords: LatLon::new(fnum("latitude", row[11])?, fnum("longitude", row[12])?)?,
        },
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::attack;

    #[test]
    fn round_trip() {
        let mut a1 = attack(17, 1_000);
        a1.sources.push(IpAddr4::from_octets(203, 0, 113, 9));
        let a2 = attack(18, 5_000);
        let csv = attacks_to_csv([&a1, &a2]);
        assert!(csv.starts_with("ddos_id,"));
        let back = attacks_from_csv(&csv).unwrap();
        assert_eq!(back, vec![a1, a2]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let a = attack(1, 100);
        let mut csv = attacks_to_csv([&a]);
        csv.push_str("\n# trailing comment\n\n");
        assert_eq!(attacks_from_csv(&csv).unwrap().len(), 1);
    }

    #[test]
    fn header_is_required_and_checked() {
        assert!(attacks_from_csv("").is_err());
        assert!(attacks_from_csv("a,b,c\n").is_err());
        // Header with different spacing still accepted.
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        let spaced = csv.replacen("ddos_id,botnet_id", "ddos_id, botnet_id", 1);
        assert!(attacks_from_csv(&spaced).is_ok());
    }

    #[test]
    fn chunked_parse_matches_serial() {
        let attacks: Vec<AttackRecord> = (1..=700)
            .map(|i| {
                let mut a = attack(i, i as i64 * 10);
                a.sources.push(IpAddr4::from_octets(203, 0, 113, 9));
                a
            })
            .collect();
        let csv = attacks_to_csv(&attacks);
        let serial = attacks_from_csv(&csv).unwrap();
        let chunked = attacks_from_csv_chunked(&csv).unwrap();
        assert_eq!(serial, chunked);
        assert_eq!(serial, attacks);
        // Force the scoped-thread path even on a 1-core host.
        assert_eq!(serial, attacks_from_csv_chunked_with(&csv, 2).unwrap());
    }

    #[test]
    fn chunked_parse_reports_the_earliest_bad_line() {
        let attacks: Vec<AttackRecord> = (1..=600).map(|i| attack(i, i as i64 * 10)).collect();
        let mut csv = attacks_to_csv(&attacks);
        // Corrupt a row near the front and one near the back; the
        // front one (line 42: header is line 1, rows start at 2) wins.
        let lines: Vec<&str> = csv.lines().collect();
        let (front, back) = (lines[41].to_owned(), lines[550].to_owned());
        csv = csv.replacen(&front, "broken,row", 1);
        csv = csv.replacen(&back, "also,broken", 1);
        let serial = attacks_from_csv(&csv).unwrap_err();
        let chunked = attacks_from_csv_chunked(&csv).unwrap_err();
        assert_eq!(serial, chunked);
        assert!(serial.to_string().contains("line 42"), "{serial}");
        // Even when the first chunk is clean and a later chunk errors
        // first in wall-clock time, the earliest line still wins.
        assert_eq!(serial, attacks_from_csv_chunked_with(&csv, 2).unwrap_err());
    }

    #[test]
    fn malformed_rows_carry_line_numbers() {
        let a = attack(1, 100);
        let mut csv = attacks_to_csv([&a]);
        csv.push_str("not,enough,columns\n");
        let err = attacks_from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        for (from, to) in [("dirtjumper", "mirai"), ("HTTP", "QUIC"), ("US", "USA")] {
            let bad = csv.replacen(from, to, 1);
            assert!(attacks_from_csv(&bad).is_err(), "{from}->{to} accepted");
        }
    }

    #[test]
    fn semantic_validation_applies() {
        // end before start.
        let a = attack(1, 100); // start 100, end 700
        let csv = attacks_to_csv([&a]).replace(",700,", ",50,");
        assert!(attacks_from_csv(&csv).is_err());
    }

    #[test]
    fn empty_source_list_rejected() {
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        // Blank the sources column.
        let line = csv.lines().nth(1).unwrap();
        let blanked = format!("{HEADER}\n{},\n", &line[..line.rfind(',').unwrap()]);
        assert!(attacks_from_csv(&blanked).is_err());
    }
}
