//! Plain-text (CSV) interchange for the `DDoSattack` schema.
//!
//! The binary `DDTL` format is for fast round trips of generated traces;
//! this module is the path for getting *external* data in and out — a
//! CSV with one attack per row, columns mirroring Table I. A real feed
//! exported to this layout drops straight into every analysis.
//!
//! Layout (header required, comma-separated, no quoting — all fields are
//! numeric or enumerated):
//!
//! ```text
//! ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,asn,cc,city,org,latitude,longitude,botnet_ips
//! 17,42,dirtjumper,HTTP,198.51.100.7,1346203800,1346208900,64512,RU,31,77,55.7558,37.6173,203.0.113.5 203.0.113.9
//! ```
//!
//! `botnet_ips` is space-separated (the one list-valued field).

use std::fmt::Write as _;

use crate::error::SchemaError;
use crate::record::{AttackRecord, Location};
use crate::{Asn, BotnetId, CityId, DdosId, Family, IpAddr4, LatLon, OrgId, Protocol, Timestamp};

/// The header row this module writes and requires on input.
pub const HEADER: &str = "ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,\
                          asn,cc,city,org,latitude,longitude,botnet_ips";

/// Serializes attack records to CSV (with header).
pub fn attacks_to_csv<'a, I>(attacks: I) -> String
where
    I: IntoIterator<Item = &'a AttackRecord>,
{
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for a in attacks {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},",
            a.id.value(),
            a.botnet.value(),
            a.family.name(),
            a.category.name(),
            a.target_ip,
            a.start.unix(),
            a.end.unix(),
            a.target.asn.value(),
            a.target.country,
            a.target.city.value(),
            a.target.org.value(),
            a.target.coords.lat,
            a.target.coords.lon,
        );
        for (i, ip) in a.sources.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{ip}");
        }
        out.push('\n');
    }
    out
}

/// Parses attack records from CSV produced by [`attacks_to_csv`] (or an
/// external export in the same layout). Blank lines and `#` comments are
/// skipped; every data row is fully validated.
pub fn attacks_from_csv(text: &str) -> Result<Vec<AttackRecord>, SchemaError> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| SchemaError::Codec("empty CSV input".into()))?;
    if normalize_header(header) != normalize_header(HEADER) {
        return Err(SchemaError::Codec(format!(
            "unexpected CSV header {header:?}"
        )));
    }
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let row: Vec<&str> = line.split(',').collect();
        if row.len() != 14 {
            return Err(SchemaError::Codec(format!(
                "line {}: expected 14 columns, found {}",
                lineno + 2,
                row.len()
            )));
        }
        let attack =
            parse_row(&row).map_err(|e| SchemaError::Codec(format!("line {}: {e}", lineno + 2)))?;
        attack.validate()?;
        out.push(attack);
    }
    Ok(out)
}

fn normalize_header(h: &str) -> String {
    h.chars().filter(|c| !c.is_whitespace()).collect()
}

fn parse_row(row: &[&str]) -> Result<AttackRecord, SchemaError> {
    let num = |field: &'static str, s: &str| -> Result<i64, SchemaError> {
        s.parse().map_err(|_| SchemaError::parse(field, s))
    };
    let fnum = |field: &'static str, s: &str| -> Result<f64, SchemaError> {
        s.parse().map_err(|_| SchemaError::parse(field, s))
    };
    let sources = row[13]
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<Vec<IpAddr4>, _>>()?;
    Ok(AttackRecord {
        id: DdosId(num("ddos_id", row[0])? as u64),
        botnet: BotnetId(num("botnet_id", row[1])? as u32),
        family: row[2].parse::<Family>()?,
        category: row[3].parse::<Protocol>()?,
        target_ip: row[4].parse()?,
        start: Timestamp(num("timestamp", row[5])?),
        end: Timestamp(num("end_time", row[6])?),
        target: Location {
            asn: Asn(num("asn", row[7])? as u32),
            country: row[8].parse()?,
            city: CityId(num("city", row[9])? as u32),
            org: OrgId(num("org", row[10])? as u32),
            coords: LatLon::new(fnum("latitude", row[11])?, fnum("longitude", row[12])?)?,
        },
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::attack;

    #[test]
    fn round_trip() {
        let mut a1 = attack(17, 1_000);
        a1.sources.push(IpAddr4::from_octets(203, 0, 113, 9));
        let a2 = attack(18, 5_000);
        let csv = attacks_to_csv([&a1, &a2]);
        assert!(csv.starts_with("ddos_id,"));
        let back = attacks_from_csv(&csv).unwrap();
        assert_eq!(back, vec![a1, a2]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let a = attack(1, 100);
        let mut csv = attacks_to_csv([&a]);
        csv.push_str("\n# trailing comment\n\n");
        assert_eq!(attacks_from_csv(&csv).unwrap().len(), 1);
    }

    #[test]
    fn header_is_required_and_checked() {
        assert!(attacks_from_csv("").is_err());
        assert!(attacks_from_csv("a,b,c\n").is_err());
        // Header with different spacing still accepted.
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        let spaced = csv.replacen("ddos_id,botnet_id", "ddos_id, botnet_id", 1);
        assert!(attacks_from_csv(&spaced).is_ok());
    }

    #[test]
    fn malformed_rows_carry_line_numbers() {
        let a = attack(1, 100);
        let mut csv = attacks_to_csv([&a]);
        csv.push_str("not,enough,columns\n");
        let err = attacks_from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        for (from, to) in [("dirtjumper", "mirai"), ("HTTP", "QUIC"), ("US", "USA")] {
            let bad = csv.replacen(from, to, 1);
            assert!(attacks_from_csv(&bad).is_err(), "{from}->{to} accepted");
        }
    }

    #[test]
    fn semantic_validation_applies() {
        // end before start.
        let a = attack(1, 100); // start 100, end 700
        let csv = attacks_to_csv([&a]).replace(",700,", ",50,");
        assert!(attacks_from_csv(&csv).is_err());
    }

    #[test]
    fn empty_source_list_rejected() {
        let a = attack(1, 100);
        let csv = attacks_to_csv([&a]);
        // Blank the sources column.
        let line = csv.lines().nth(1).unwrap();
        let blanked = format!("{HEADER}\n{},\n", &line[..line.rfind(',').unwrap()]);
        assert!(attacks_from_csv(&blanked).is_err());
    }
}
