//! Trace persistence: a compact binary format plus JSON interchange.
//!
//! The binary format (`DDTL`, version 1) exists so full-size generated
//! traces (~50k attacks, ~300k bots, ~40k snapshots) can be written and
//! reloaded quickly without the overhead of JSON. Layout:
//!
//! ```text
//! magic   b"DDTL"
//! version u16 LE
//! window  start:i64 end:i64
//! attacks varint count, then records
//! bots    varint count, then records
//! botnets varint count, then records
//! snaps   varint family-count, then per family:
//!         family:u8, varint snapshot-count, snapshots
//! ```
//!
//! Integers that are usually small (counts, magnitudes) use LEB128
//! varints; timestamps are fixed-width `i64`; coordinates are `f64`.
//!
//! Version 2 of the container ([`crate::framed`]) reuses the same
//! per-record encoding but splits sections into independently-decodable
//! frames; [`decode_any`] dispatches on the header version so callers
//! can read either. The record decoders here are generic over
//! [`WireBuf`] so v1 keeps its `Bytes` reference path while v2 reads
//! zero-copy slices.

use bytes::{BufMut, Bytes, BytesMut};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::SchemaError;
use crate::family::Family;
use crate::framed::IngestStats;
use crate::geo::{CountryCode, LatLon};
use crate::ids::{Asn, BotnetId, CityId, DdosId, OrgId};
use crate::ip::IpAddr4;
use crate::protocol::Protocol;
use crate::record::{AttackRecord, BotRecord, BotnetRecord, Location};
use crate::snapshot::{BotPresence, HourlySnapshot, SnapshotSeries};
use crate::time::{Timestamp, Window};
use crate::wire::{get_varint, need, WireBuf};

pub(crate) const MAGIC: &[u8; 4] = b"DDTL";
/// The original (serial) binary format version.
pub const VERSION: u16 = 1;

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn put_location(buf: &mut BytesMut, loc: &Location) {
    buf.put_slice(loc.country.as_str().as_bytes());
    put_varint(buf, u64::from(loc.city.0));
    put_varint(buf, u64::from(loc.org.0));
    put_varint(buf, u64::from(loc.asn.0));
    buf.put_f64(loc.coords.lat);
    buf.put_f64(loc.coords.lon);
}

fn get_location<B: WireBuf>(buf: &mut B) -> Result<Location, SchemaError> {
    need(buf, 2, "country code")?;
    let (a, b) = (buf.take_u8(), buf.take_u8());
    let country =
        CountryCode::new(a, b).map_err(|_| SchemaError::Codec("malformed country code".into()))?;
    let city = CityId(get_varint(buf)? as u32);
    let org = OrgId(get_varint(buf)? as u32);
    let asn = Asn(get_varint(buf)? as u32);
    need(buf, 16, "coordinates")?;
    let lat = buf.take_f64();
    let lon = buf.take_f64();
    let coords =
        LatLon::new(lat, lon).map_err(|_| SchemaError::Codec("coordinates out of range".into()))?;
    Ok(Location {
        country,
        city,
        org,
        asn,
        coords,
    })
}

pub(crate) fn put_attack(buf: &mut BytesMut, a: &AttackRecord) {
    put_varint(buf, a.id.0);
    put_varint(buf, u64::from(a.botnet.0));
    buf.put_u8(a.family.index() as u8);
    buf.put_u8(a.category.index() as u8);
    buf.put_u32(a.target_ip.0);
    put_location(buf, &a.target);
    buf.put_i64(a.start.0);
    buf.put_i64(a.end.0);
    put_varint(buf, a.sources.len() as u64);
    for ip in &a.sources {
        buf.put_u32(ip.0);
    }
}

pub(crate) fn get_attack<B: WireBuf>(buf: &mut B) -> Result<AttackRecord, SchemaError> {
    let id = DdosId(get_varint(buf)?);
    let botnet = BotnetId(get_varint(buf)? as u32);
    need(buf, 2, "family/category")?;
    let family = Family::from_index(buf.take_u8() as usize)
        .ok_or_else(|| SchemaError::Codec("bad family index".into()))?;
    let fam_idx = buf.take_u8() as usize;
    let category = *Protocol::ALL
        .get(fam_idx)
        .ok_or_else(|| SchemaError::Codec("bad protocol index".into()))?;
    need(buf, 4, "target ip")?;
    let target_ip = IpAddr4(buf.take_u32());
    let target = get_location(buf)?;
    need(buf, 16, "timestamps")?;
    let start = Timestamp(buf.take_i64());
    let end = Timestamp(buf.take_i64());
    let n = get_varint(buf)? as usize;
    // Sanity bound: one source is 4 bytes on the wire.
    if buf.left() < n.saturating_mul(4) {
        return Err(SchemaError::Codec("truncated source list".into()));
    }
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(IpAddr4(buf.take_u32()));
    }
    Ok(AttackRecord {
        id,
        botnet,
        family,
        category,
        target_ip,
        target,
        start,
        end,
        sources,
    })
}

pub(crate) fn put_bot(buf: &mut BytesMut, b: &BotRecord) {
    buf.put_u32(b.ip.0);
    put_varint(buf, u64::from(b.botnet.0));
    buf.put_u8(b.family.index() as u8);
    put_location(buf, &b.location);
    buf.put_i64(b.first_seen.0);
    buf.put_i64(b.last_seen.0);
}

pub(crate) fn get_bot<B: WireBuf>(buf: &mut B) -> Result<BotRecord, SchemaError> {
    need(buf, 4, "bot ip")?;
    let ip = IpAddr4(buf.take_u32());
    let botnet = BotnetId(get_varint(buf)? as u32);
    need(buf, 1, "bot family")?;
    let family = Family::from_index(buf.take_u8() as usize)
        .ok_or_else(|| SchemaError::Codec("bad family index".into()))?;
    let location = get_location(buf)?;
    need(buf, 16, "bot timestamps")?;
    let first_seen = Timestamp(buf.take_i64());
    let last_seen = Timestamp(buf.take_i64());
    Ok(BotRecord {
        ip,
        botnet,
        family,
        location,
        first_seen,
        last_seen,
    })
}

pub(crate) fn put_botnet(buf: &mut BytesMut, b: &BotnetRecord) {
    put_varint(buf, u64::from(b.id.0));
    buf.put_u8(b.family.index() as u8);
    buf.put_slice(&b.binary_hash);
    buf.put_u32(b.controller.0);
    put_varint(buf, u64::from(b.enrolled_bots));
    buf.put_i64(b.first_seen.0);
    buf.put_i64(b.last_seen.0);
}

pub(crate) fn get_botnet<B: WireBuf>(buf: &mut B) -> Result<BotnetRecord, SchemaError> {
    let id = BotnetId(get_varint(buf)? as u32);
    need(buf, 1 + 20 + 4, "botnet record")?;
    let family = Family::from_index(buf.take_u8() as usize)
        .ok_or_else(|| SchemaError::Codec("bad family index".into()))?;
    let mut binary_hash = [0u8; 20];
    buf.take_into(&mut binary_hash);
    let controller = IpAddr4(buf.take_u32());
    let enrolled_bots = get_varint(buf)? as u32;
    need(buf, 16, "botnet timestamps")?;
    let first_seen = Timestamp(buf.take_i64());
    let last_seen = Timestamp(buf.take_i64());
    Ok(BotnetRecord {
        id,
        family,
        binary_hash,
        controller,
        enrolled_bots,
        first_seen,
        last_seen,
    })
}

pub(crate) fn put_snapshot(buf: &mut BytesMut, s: &HourlySnapshot) {
    buf.put_i64(s.taken_at.0);
    put_varint(buf, s.bots.len() as u64);
    for b in &s.bots {
        buf.put_u32(b.ip.0);
        buf.put_slice(b.country.as_str().as_bytes());
        buf.put_f64(b.coords.lat);
        buf.put_f64(b.coords.lon);
    }
}

pub(crate) fn get_snapshot<B: WireBuf>(
    buf: &mut B,
    family: Family,
) -> Result<HourlySnapshot, SchemaError> {
    need(buf, 8, "snapshot timestamp")?;
    let taken_at = Timestamp(buf.take_i64());
    let n = get_varint(buf)? as usize;
    if buf.left() < n.saturating_mul(4 + 2 + 16) {
        return Err(SchemaError::Codec("truncated snapshot".into()));
    }
    let mut bots = Vec::with_capacity(n);
    for _ in 0..n {
        let ip = IpAddr4(buf.take_u32());
        let (a, b) = (buf.take_u8(), buf.take_u8());
        let country = CountryCode::new(a, b)
            .map_err(|_| SchemaError::Codec("malformed country code".into()))?;
        let lat = buf.take_f64();
        let lon = buf.take_f64();
        let coords = LatLon::new(lat, lon)
            .map_err(|_| SchemaError::Codec("coordinates out of range".into()))?;
        bots.push(BotPresence {
            ip,
            country,
            coords,
        });
    }
    Ok(HourlySnapshot {
        family,
        taken_at,
        bots,
    })
}

/// Serializes a dataset into the binary trace format.
pub fn encode(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024 + ds.attacks().len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_i64(ds.window().start.0);
    buf.put_i64(ds.window().end.0);
    put_varint(&mut buf, ds.attacks().len() as u64);
    for a in ds.attacks() {
        put_attack(&mut buf, a);
    }
    put_varint(&mut buf, ds.bots().len() as u64);
    for b in ds.bots() {
        put_bot(&mut buf, b);
    }
    put_varint(&mut buf, ds.botnets().len() as u64);
    for b in ds.botnets() {
        put_botnet(&mut buf, b);
    }
    let families: Vec<Family> = ds.snapshot_families().collect();
    put_varint(&mut buf, families.len() as u64);
    for family in families {
        let series = ds.snapshots(family).expect("family listed");
        buf.put_u8(family.index() as u8);
        put_varint(&mut buf, series.len() as u64);
        for s in series {
            put_snapshot(&mut buf, s);
        }
    }
    buf.freeze()
}

/// Deserializes a dataset from the version-1 binary trace format.
///
/// This is the serial reference path; [`decode_any`] additionally
/// understands the framed v2 container.
pub fn decode(bytes: &[u8]) -> Result<Dataset, SchemaError> {
    crate::fail::check(crate::fail::INGEST_V1_DECODE)?;
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 4 + 2 + 16, "header")?;
    let mut magic = [0u8; 4];
    buf.take_into(&mut magic);
    if &magic != MAGIC {
        return Err(SchemaError::Codec("bad magic (not a DDTL trace)".into()));
    }
    let version = buf.take_u16();
    if version > VERSION {
        return Err(SchemaError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let start = Timestamp(buf.take_i64());
    let end = Timestamp(buf.take_i64());
    let window = Window::new(start, end)?;
    let mut builder = DatasetBuilder::new(window).allow_out_of_window();
    let n_attacks = get_varint(&mut buf)? as usize;
    for _ in 0..n_attacks {
        builder.push_attack(get_attack(&mut buf)?)?;
    }
    let n_bots = get_varint(&mut buf)? as usize;
    for _ in 0..n_bots {
        builder.push_bot(get_bot(&mut buf)?)?;
    }
    let n_botnets = get_varint(&mut buf)? as usize;
    for _ in 0..n_botnets {
        builder.push_botnet(get_botnet(&mut buf)?)?;
    }
    let n_series = get_varint(&mut buf)? as usize;
    for _ in 0..n_series {
        need(&buf, 1, "snapshot family")?;
        let family = Family::from_index(buf.take_u8() as usize)
            .ok_or_else(|| SchemaError::Codec("bad family index".into()))?;
        let n_snaps = get_varint(&mut buf)? as usize;
        let mut snaps = Vec::with_capacity(n_snaps);
        for _ in 0..n_snaps {
            snaps.push(get_snapshot(&mut buf, family)?);
        }
        builder.set_snapshots(family, SnapshotSeries::from_snapshots(snaps)?)?;
    }
    if buf.left() > 0 {
        return Err(SchemaError::Codec(format!(
            "{} trailing bytes after trace",
            buf.left()
        )));
    }
    builder.build()
}

/// Reads the `DDTL` magic and format version without consuming input.
pub(crate) fn peek_version(bytes: &[u8]) -> Result<u16, SchemaError> {
    if bytes.len() < 6 {
        return Err(SchemaError::Codec(format!(
            "truncated input: need 6 bytes for magic/version, have {}",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(SchemaError::Codec("bad magic (not a DDTL trace)".into()));
    }
    Ok(u16::from_be_bytes([bytes[4], bytes[5]]))
}

/// Deserializes a dataset from any supported binary trace version.
///
/// Dispatches on the header: version 1 takes the serial [`decode`]
/// reference path, version 2 the parallel [`crate::framed`] decoder.
pub fn decode_any(bytes: &[u8]) -> Result<Dataset, SchemaError> {
    decode_any_with_stats(bytes).map(|(ds, _)| ds)
}

/// Like [`decode_any`], also returning [`IngestStats`] describing the
/// load (format version, bytes, frames, decode workers).
pub fn decode_any_with_stats(bytes: &[u8]) -> Result<(Dataset, IngestStats), SchemaError> {
    match peek_version(bytes)? {
        0 | 1 => decode(bytes).map(|ds| (ds, IngestStats::serial_v1(bytes.len()))),
        _ => crate::framed::decode_with_stats(bytes),
    }
}

/// Serializes a dataset as JSON (interchange format).
pub fn to_json(ds: &Dataset) -> String {
    serde_json::to_string(ds).expect("dataset is always serializable")
}

/// Deserializes a dataset from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<Dataset, SchemaError> {
    serde_json::from_str(json).map_err(|e| SchemaError::Codec(format!("json: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::attack;

    fn sample_dataset() -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        let mut a1 = attack(1, 1_000);
        a1.sources.push(IpAddr4::from_octets(203, 0, 113, 99));
        b.push_attack(a1).unwrap();
        b.push_attack(attack(2, 77_000)).unwrap();
        b.push_bot(BotRecord {
            ip: IpAddr4::from_octets(203, 0, 113, 5),
            botnet: BotnetId(7),
            family: Family::Dirtjumper,
            location: crate::record::test_fixtures::location(),
            first_seen: Timestamp(500),
            last_seen: Timestamp(90_000),
        })
        .unwrap();
        b.push_botnet(BotnetRecord {
            id: BotnetId(7),
            family: Family::Dirtjumper,
            binary_hash: [0x5A; 20],
            controller: IpAddr4::from_octets(192, 0, 2, 10),
            enrolled_bots: 2,
            first_seen: Timestamp(0),
            last_seen: Timestamp(100_000),
        })
        .unwrap();
        let series = SnapshotSeries::from_snapshots(vec![HourlySnapshot {
            family: Family::Dirtjumper,
            taken_at: Timestamp(3_600),
            bots: vec![BotPresence {
                ip: IpAddr4::from_octets(203, 0, 113, 5),
                country: CountryCode::literal("RU"),
                coords: LatLon::new_unchecked(55.75, 37.61),
            }],
        }])
        .unwrap();
        b.set_snapshots(Family::Dirtjumper, series).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn binary_round_trip() {
        let ds = sample_dataset();
        let bytes = encode(&ds);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.attacks(), ds.attacks());
        assert_eq!(back.bots(), ds.bots());
        assert_eq!(back.botnets(), ds.botnets());
        assert_eq!(
            back.snapshots(Family::Dirtjumper),
            ds.snapshots(Family::Dirtjumper)
        );
        assert_eq!(back.window(), ds.window());
    }

    #[test]
    fn json_round_trip() {
        let ds = sample_dataset();
        let back = from_json(&to_json(&ds)).unwrap();
        assert_eq!(back.attacks(), ds.attacks());
        assert_eq!(back.attacks_of(Family::Dirtjumper).count(), 2);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"NOPE").unwrap_err();
        assert!(matches!(err, SchemaError::Codec(_)));
        let mut bytes = encode(&sample_dataset()).to_vec();
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = encode(&sample_dataset()).to_vec();
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            SchemaError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample_dataset());
        // Truncating at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix {len} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample_dataset()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
            assert_eq!(bytes.left(), 0);
        }
    }
}
