//! Minimal civil-time support tailored to the paper's observation window.
//!
//! The trace spans 2012-08-29 00:00 UTC to 2013-03-24 00:00 UTC — 207 days,
//! about seven months, bucketed by the analyses into 24-hour days and
//! 28 calendar weeks. We implement exactly the arithmetic the analyses
//! need (no time zones, no leap seconds) using Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, rather than pulling in
//! a calendar dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

/// A signed length of time in whole seconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Seconds(pub i64);

impl Seconds {
    /// One minute.
    pub const MINUTE: Seconds = Seconds(60);
    /// One hour.
    pub const HOUR: Seconds = Seconds(3_600);
    /// One day.
    pub const DAY: Seconds = Seconds(86_400);
    /// One week.
    pub const WEEK: Seconds = Seconds(7 * 86_400);

    /// Constructs from a number of minutes.
    pub const fn minutes(m: i64) -> Seconds {
        Seconds(m * 60)
    }

    /// Constructs from a number of hours.
    pub const fn hours(h: i64) -> Seconds {
        Seconds(h * 3_600)
    }

    /// Constructs from a number of days.
    pub const fn days(d: i64) -> Seconds {
        Seconds(d * 86_400)
    }

    /// Raw seconds value.
    #[inline]
    pub const fn get(self) -> i64 {
        self.0
    }

    /// Value as floating-point seconds (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Seconds {
        Seconds(self.0.abs())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// An absolute point in time: seconds since the Unix epoch (UTC).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

/// Days from 1970-01-01 for a civil date (proleptic Gregorian).
///
/// Hinnant's algorithm; valid for all dates the trace can contain.
const fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of `days_from_civil`).
const fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp at UTC midnight of the given civil date.
    pub const fn from_date(year: i64, month: u32, day: u32) -> Timestamp {
        Timestamp(days_from_civil(year, month, day) * 86_400)
    }

    /// Builds a timestamp at the given civil date and time of day.
    pub const fn from_datetime(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Timestamp {
        Timestamp(
            days_from_civil(year, month, day) * 86_400
                + hour as i64 * 3_600
                + minute as i64 * 60
                + second as i64,
        )
    }

    /// Seconds since the Unix epoch.
    #[inline]
    pub const fn unix(self) -> i64 {
        self.0
    }

    /// The civil `(year, month, day)` of this instant.
    pub const fn date(self) -> (i64, u32, u32) {
        civil_from_days(self.0.div_euclid(86_400))
    }

    /// The `(hour, minute, second)` within the day.
    pub const fn time_of_day(self) -> (u32, u32, u32) {
        let s = self.0.rem_euclid(86_400);
        ((s / 3_600) as u32, ((s / 60) % 60) as u32, (s % 60) as u32)
    }

    /// Midnight of the same day.
    pub const fn floor_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(86_400) * 86_400)
    }

    /// Top of the same hour.
    pub const fn floor_hour(self) -> Timestamp {
        Timestamp(self.0.div_euclid(3_600) * 3_600)
    }
}

impl Add<Seconds> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Seconds) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Seconds> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Sub<Seconds> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Seconds) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    /// Formats as `YYYY-MM-DD HH:MM:SS` (UTC).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.date();
        let (h, mi, s) = self.time_of_day();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

impl FromStr for Timestamp {
    type Err = SchemaError;

    /// Parses `YYYY-MM-DD` or `YYYY-MM-DD HH:MM:SS`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || SchemaError::parse("Timestamp", s);
        let (date, time) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let y: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mo: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
            return Err(bad());
        }
        let (h, mi, sec) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut tp = t.split(':');
                let h: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let mi: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let sec: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if tp.next().is_some() || h > 23 || mi > 59 || sec > 59 {
                    return Err(bad());
                }
                (h, mi, sec)
            }
        };
        Ok(Timestamp::from_datetime(y, mo, d, h, mi, sec))
    }
}

/// A half-open observation window `[start, end)` with day/week bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start of the window.
    pub start: Timestamp,
    /// Exclusive end of the window.
    pub end: Timestamp,
}

impl Window {
    /// The paper's seven-month collection window:
    /// 2012-08-29 00:00 UTC → 2013-03-24 00:00 UTC, 207 days / 28 weeks.
    pub const PAPER: Window = Window {
        start: Timestamp::from_date(2012, 8, 29),
        end: Timestamp::from_date(2013, 3, 24),
    };

    /// Creates a window; `end` must not precede `start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Window, SchemaError> {
        if end < start {
            return Err(SchemaError::OutOfRange {
                what: "window end",
                expected: "end >= start",
            });
        }
        Ok(Window { start, end })
    }

    /// Whether the instant falls inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Total length.
    #[inline]
    pub fn length(&self) -> Seconds {
        self.end - self.start
    }

    /// Number of whole or partial days covered.
    pub fn num_days(&self) -> usize {
        ((self.length().get() + Seconds::DAY.get() - 1) / Seconds::DAY.get()) as usize
    }

    /// Number of whole or partial weeks covered.
    pub fn num_weeks(&self) -> usize {
        ((self.length().get() + Seconds::WEEK.get() - 1) / Seconds::WEEK.get()) as usize
    }

    /// Zero-based day index of an instant within the window, if inside.
    pub fn day_index(&self, t: Timestamp) -> Option<usize> {
        self.contains(t)
            .then(|| ((t - self.start).get() / Seconds::DAY.get()) as usize)
    }

    /// Zero-based week index of an instant within the window, if inside.
    pub fn week_index(&self, t: Timestamp) -> Option<usize> {
        self.contains(t)
            .then(|| ((t - self.start).get() / Seconds::WEEK.get()) as usize)
    }

    /// Midnight timestamp of the day with the given index.
    pub fn day_start(&self, day: usize) -> Timestamp {
        self.start + Seconds::days(day as i64)
    }

    /// Iterator over the start timestamps of every day in the window.
    pub fn days(&self) -> impl Iterator<Item = Timestamp> + '_ {
        (0..self.num_days()).map(|d| self.day_start(d))
    }

    /// Iterator over hourly snapshot instants covering the window.
    pub fn hours(&self) -> impl Iterator<Item = Timestamp> + '_ {
        let hours = (self.length().get() / Seconds::HOUR.get()) as usize;
        let start = self.start;
        (0..hours).map(move |h| start + Seconds::hours(h as i64))
    }

    /// Tiles the window into consecutive epochs of length `len`: half-open
    /// sub-windows covering `[start, end)` exactly, with the last epoch
    /// clamped to `end` when the length does not divide evenly. A
    /// zero-length window (or a non-positive `len`) yields one epoch
    /// spanning the whole window, so callers can always fold over at
    /// least one shard.
    pub fn epochs(&self, len: Seconds) -> Vec<Window> {
        if len.get() <= 0 || self.length().get() <= 0 {
            return vec![*self];
        }
        let n = ((self.length().get() + len.get() - 1) / len.get()) as usize;
        (0..n)
            .map(|i| Window {
                start: self.start + Seconds(len.get() * i as i64),
                end: (self.start + Seconds(len.get() * (i as i64 + 1))).min(self.end),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_is_207_days_28_weeks() {
        let w = Window::PAPER;
        assert_eq!(w.num_days(), 207);
        assert_eq!(w.num_weeks(), 30); // 207/7 = 29.57 → 30 week buckets
                                       // The paper rounds to "28 weeks" of full activity; our bucket count
                                       // is the ceiling and is asserted explicitly so nobody "fixes" it.
        assert_eq!(w.length().get(), 207 * 86_400);
    }

    #[test]
    fn civil_round_trip_across_years() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2012, 8, 29),
            (2012, 12, 31),
            (2013, 1, 1),
            (2013, 3, 24),
            (2000, 2, 29),
            (2016, 2, 29),
            (1999, 12, 31),
        ] {
            let t = Timestamp::from_date(y, m, d);
            assert_eq!(t.date(), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_date(1970, 1, 1), Timestamp::EPOCH);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let t = Timestamp::from_datetime(2012, 8, 30, 13, 45, 9);
        assert_eq!(t.to_string(), "2012-08-30 13:45:09");
        assert_eq!(t.to_string().parse::<Timestamp>().unwrap(), t);
        assert_eq!(
            "2012-08-30".parse::<Timestamp>().unwrap(),
            Timestamp::from_date(2012, 8, 30)
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "2012", "2012-13-01", "2012-08-30 25:00:00", "x-y-z"] {
            assert!(bad.parse::<Timestamp>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_date(2012, 8, 29);
        assert_eq!((t + Seconds::DAY).date(), (2012, 8, 30));
        assert_eq!((t + Seconds::days(3)) - t, Seconds::days(3));
        assert_eq!((t - Seconds::HOUR).time_of_day(), (23, 0, 0));
    }

    #[test]
    fn day_and_week_indexing() {
        let w = Window::PAPER;
        assert_eq!(w.day_index(w.start), Some(0));
        assert_eq!(w.day_index(w.start + Seconds(86_399)), Some(0));
        assert_eq!(w.day_index(w.start + Seconds::DAY), Some(1));
        assert_eq!(w.day_index(w.end), None);
        assert_eq!(w.week_index(w.start + Seconds::days(13)), Some(1));
        assert_eq!(w.days().count(), 207);
        assert_eq!(w.hours().count(), 207 * 24);
    }

    #[test]
    fn window_rejects_inverted_bounds() {
        assert!(Window::new(Timestamp(10), Timestamp(5)).is_err());
        assert!(Window::new(Timestamp(5), Timestamp(5)).is_ok());
    }

    #[test]
    fn epochs_tile_the_window_exactly() {
        let w = Window::PAPER;
        let weeks = w.epochs(Seconds::WEEK);
        assert_eq!(weeks.len(), w.num_weeks());
        assert_eq!(weeks[0].start, w.start);
        assert_eq!(weeks.last().unwrap().end, w.end);
        // Consecutive epochs abut with no gap or overlap.
        for pair in weeks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // 207 days is not a whole number of weeks: the tail is clamped.
        assert_eq!(weeks.last().unwrap().length(), Seconds::days(4));
        // An evenly dividing length leaves every epoch full size.
        let days = w.epochs(Seconds::DAY);
        assert_eq!(days.len(), 207);
        assert!(days.iter().all(|e| e.length() == Seconds::DAY));
    }

    #[test]
    fn degenerate_epochs_cover_the_window_once() {
        let w = Window::new(Timestamp(100), Timestamp(100)).unwrap();
        assert_eq!(w.epochs(Seconds::DAY), vec![w]);
        let w = Window::new(Timestamp(0), Timestamp(500)).unwrap();
        assert_eq!(w.epochs(Seconds(0)), vec![w]);
        assert_eq!(w.epochs(Seconds(1_000)), vec![w]);
    }

    #[test]
    fn floor_helpers() {
        let t = Timestamp::from_datetime(2012, 9, 1, 17, 30, 12);
        assert_eq!(t.floor_day().time_of_day(), (0, 0, 0));
        assert_eq!(t.floor_hour().time_of_day(), (17, 0, 0));
    }
}
