//! Attack transport categories (`category` in Table I).
//!
//! The feed classifies each attack by the protocol used to launch it. The
//! paper's Table III counts seven distinct traffic types; Figure 1 shows
//! HTTP dominating, and the paper stresses that `Undetermined` (an attack
//! using multiple protocols) differs from `Unknown` (traffic of unknown
//! type).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

/// The transport/protocol category of an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// HTTP-layer flood (application-level; connection oriented).
    Http,
    /// Generic TCP flood.
    Tcp,
    /// UDP flood.
    Udp,
    /// The attack used multiple protocols and no single one could be
    /// assigned.
    Undetermined,
    /// ICMP flood.
    Icmp,
    /// Traffic of unknown type.
    Unknown,
    /// TCP SYN flood (tracked separately from generic TCP by the feed).
    Syn,
}

impl Protocol {
    /// All seven traffic types, in the paper's Table II order.
    pub const ALL: [Protocol; 7] = [
        Protocol::Http,
        Protocol::Tcp,
        Protocol::Udp,
        Protocol::Undetermined,
        Protocol::Icmp,
        Protocol::Unknown,
        Protocol::Syn,
    ];

    /// Canonical uppercase name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Http => "HTTP",
            Protocol::Tcp => "TCP",
            Protocol::Udp => "UDP",
            Protocol::Undetermined => "UNDETERMINED",
            Protocol::Icmp => "ICMP",
            Protocol::Unknown => "UNKNOWN",
            Protocol::Syn => "SYN",
        }
    }

    /// Stable dense index (0..7) for array-backed counters.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the transport is connection oriented.
    ///
    /// The paper leans on this to argue source-IP spoofing is implausible
    /// for the bulk of the observed attacks (§III-B): HTTP, TCP and SYN
    /// all require a completed or attempted TCP handshake.
    pub fn is_connection_oriented(self) -> bool {
        matches!(self, Protocol::Http | Protocol::Tcp | Protocol::Syn)
    }

    /// Whether the transport could in principle carry reflection or
    /// amplification attacks (UDP-based). The paper verifies its dataset
    /// contains none.
    pub fn supports_reflection(self) -> bool {
        matches!(self, Protocol::Udp)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Protocol {
    type Err = SchemaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Self::ALL
            .iter()
            .copied()
            .find(|p| p.name() == upper)
            .ok_or_else(|| SchemaError::parse("Protocol", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_traffic_types() {
        // Table III: "# of traffic types: 7".
        assert_eq!(Protocol::ALL.len(), 7);
    }

    #[test]
    fn names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(p.name().parse::<Protocol>().unwrap(), p);
        }
        assert_eq!("http".parse::<Protocol>().unwrap(), Protocol::Http);
        assert!("QUIC".parse::<Protocol>().is_err());
    }

    #[test]
    fn connection_oriented_classification() {
        assert!(Protocol::Http.is_connection_oriented());
        assert!(Protocol::Syn.is_connection_oriented());
        assert!(!Protocol::Udp.is_connection_oriented());
        assert!(!Protocol::Icmp.is_connection_oriented());
    }

    #[test]
    fn only_udp_supports_reflection() {
        let reflective: Vec<_> = Protocol::ALL
            .into_iter()
            .filter(|p| p.supports_reflection())
            .collect();
        assert_eq!(reflective, vec![Protocol::Udp]);
    }

    #[test]
    fn indexes_are_dense() {
        for (i, p) in Protocol::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
