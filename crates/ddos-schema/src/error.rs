//! Error types shared across the schema crate.

use std::fmt;

/// Errors produced while parsing, validating, or decoding trace data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// A textual field failed to parse (field name, offending input).
    Parse {
        /// The name of the field being parsed.
        field: &'static str,
        /// The offending input (possibly truncated).
        input: String,
    },
    /// A numeric value was outside its legal domain.
    OutOfRange {
        /// The name of the value that was out of range.
        what: &'static str,
        /// Human-readable description of the legal domain.
        expected: &'static str,
    },
    /// A record failed semantic validation (e.g. `end_time < timestamp`).
    InvalidRecord(String),
    /// A dataset-level invariant was violated (e.g. duplicate attack id).
    InvalidDataset(String),
    /// The binary codec met malformed input.
    Codec(String),
    /// A trace file could not be opened or mapped.
    Io(String),
    /// The binary codec met a magic/version it does not understand.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Latest version this build supports.
        supported: u16,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { field, input } => {
                write!(f, "cannot parse {field} from {input:?}")
            }
            SchemaError::OutOfRange { what, expected } => {
                write!(f, "{what} out of range (expected {expected})")
            }
            SchemaError::InvalidRecord(msg) => write!(f, "invalid record: {msg}"),
            SchemaError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            SchemaError::Codec(msg) => write!(f, "codec error: {msg}"),
            SchemaError::Io(msg) => write!(f, "io error: {msg}"),
            SchemaError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported trace version {found} (this build reads <= {supported})"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl SchemaError {
    /// Convenience constructor for parse failures, truncating long inputs.
    pub fn parse(field: &'static str, input: &str) -> Self {
        let mut input = input.to_owned();
        if input.len() > 64 {
            input.truncate(64);
            input.push('…');
        }
        SchemaError::Parse { field, input }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchemaError::parse("ip", "256.1.2.3");
        assert!(e.to_string().contains("ip"));
        assert!(e.to_string().contains("256.1.2.3"));
    }

    #[test]
    fn parse_truncates_long_input() {
        let long = "x".repeat(200);
        let e = SchemaError::parse("city", &long);
        match e {
            SchemaError::Parse { input, .. } => assert!(input.len() < 80),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(SchemaError::Codec("short read".into()));
        assert!(e.to_string().contains("short read"));
    }
}
