//! Framed binary trace format (`DDTL`, version 2) with parallel decode.
//!
//! Version 2 keeps version 1's per-record wire encoding untouched but
//! splits each section (attacks, bots, botnets, per-family snapshots)
//! into frames of at most `frame_len` records and moves the layout into
//! a directory between the header and the payload:
//!
//! ```text
//! magic     b"DDTL"
//! version   u16 = 2
//! window    start:i64 end:i64
//! directory varint frame-count, varint payload-len, then per frame:
//!           kind:u8 family:u8 varint record-count
//!           varint byte-offset varint byte-len checksum:u64
//! payload   the frame bodies, back to back
//! ```
//!
//! `kind` is the section (0 attacks, 1 bots, 2 botnets, 3 snapshots);
//! `family` is the snapshot family index (`0xFF` for the other kinds).
//! The directory is validated up front: frames must be contiguous
//! (each offset equals the previous frame's end — overlapping or
//! gapped offsets are rejected), kinds must appear in section order,
//! and snapshot families must stay grouped and never reappear.
//!
//! Decoding then needs no cross-frame state: each frame is a
//! self-delimited run of whole records, so workers on scoped threads
//! (`crossbeam`, the same work-stealing pattern as the pass scheduler)
//! pull frame indices from an atomic counter, verify the frame
//! checksum, and decode through a zero-copy [`SliceReader`] cursor over
//! the input — typically a memory-mapped file, so pages fault in as
//! the cursors reach them and nothing is buffered up front. Results
//! are spliced in frame order and the first error in frame order wins,
//! so output (dataset *and* diagnostics) is deterministic regardless
//! of thread interleaving. Concatenating the frames of a section in
//! frame order reproduces the v1 record sequence exactly, hence the
//! decoded [`Dataset`] is bit-identical to the serial v1 reference
//! decode — `tests/ingest.rs` proves this by proptest over arbitrary
//! sim configs and frame lengths.

use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{
    get_attack, get_bot, get_botnet, get_snapshot, put_attack, put_bot, put_botnet, put_snapshot,
    put_varint, MAGIC,
};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::SchemaError;
use crate::family::Family;
use crate::record::{AttackRecord, BotRecord, BotnetRecord};
use crate::snapshot::{HourlySnapshot, SnapshotSeries};
use crate::time::{Timestamp, Window};
use crate::wire::{get_varint, need, SliceReader, WireBuf};

/// The framed binary format version.
pub const FRAMED_VERSION: u16 = 2;

/// Default records-per-frame bound: large enough that directory and
/// per-frame overheads vanish, small enough that a paper-scale trace
/// (~50k attacks, ~300k bots) still yields dozens of frames to spread
/// over decode workers.
pub const DEFAULT_FRAME_LEN: usize = 8_192;

const KIND_ATTACKS: u8 = 0;
const KIND_BOTS: u8 = 1;
const KIND_BOTNETS: u8 = 2;
const KIND_SNAPSHOTS: u8 = 3;
/// `family` byte for frames that are not snapshot frames.
const NO_FAMILY: u8 = 0xFF;

/// Statistics describing one binary trace load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Container version the input carried (1 or 2).
    pub version: u16,
    /// Total input size in bytes.
    pub bytes: usize,
    /// Frames decoded (1 for the unframed v1 format).
    pub frames: usize,
    /// Decode worker threads used.
    pub workers: usize,
}

impl IngestStats {
    /// Stats for a serial v1 decode (one implicit frame, one worker).
    pub(crate) fn serial_v1(bytes: usize) -> IngestStats {
        IngestStats {
            version: 1,
            bytes,
            frames: 1,
            workers: 1,
        }
    }
}

/// A 64-bit integrity checksum over a frame body.
///
/// Multiply-xor fold over 8-byte little-endian words (length mixed into
/// the seed, zero-padded tail, final avalanche), in the FNV spirit but
/// word-at-a-time, and striped across four independent lanes so the
/// multiply dependency chain does not serialize the loop — integrity
/// checking stays a small fraction of frame decode time. Every step is
/// bijective in its input word (xor, then multiply by an odd constant),
/// so any single-word change — in particular any single flipped byte —
/// always changes the digest. Not cryptographic: it guards against
/// corruption, not adversaries.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const MUL: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(MUL),
        0x8445_2dbe_6b93_d5a1,
        0x9ddf_ea08_eb38_2d69,
        0xa076_1d64_78bd_642f,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(b[j * 8..j * 8 + 8].try_into().expect("8-byte stripe"));
            *lane = (*lane ^ w).wrapping_mul(MUL);
        }
    }
    // At most three whole words and a zero-padded tail remain; fold
    // them into lane 0 (length is in the seed, so padding is not free).
    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes"));
        lanes[0] = (lanes[0] ^ w).wrapping_mul(MUL);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        lanes[0] = (lanes[0] ^ u64::from_le_bytes(tail)).wrapping_mul(MUL);
    }
    let mut h = lanes[0];
    for lane in &lanes[1..] {
        h = (h ^ lane).wrapping_mul(MUL);
    }
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^ (h >> 32)
}

struct RawFrame {
    kind: u8,
    family: u8,
    count: usize,
    body: BytesMut,
}

/// Serializes a dataset into the framed v2 format with
/// [`DEFAULT_FRAME_LEN`] records per frame.
pub fn encode(ds: &Dataset) -> Bytes {
    encode_with(ds, DEFAULT_FRAME_LEN)
}

/// Serializes with an explicit records-per-frame bound (clamped to 1).
pub fn encode_with(ds: &Dataset, frame_len: usize) -> Bytes {
    let frame_len = frame_len.max(1);
    let mut frames: Vec<RawFrame> = Vec::new();
    let mut section = |kind: u8, family: u8, count: usize, body: BytesMut| {
        frames.push(RawFrame {
            kind,
            family,
            count,
            body,
        });
    };
    for chunk in ds.attacks().chunks(frame_len) {
        let mut body = BytesMut::with_capacity(chunk.len() * 64);
        for a in chunk {
            put_attack(&mut body, a);
        }
        section(KIND_ATTACKS, NO_FAMILY, chunk.len(), body);
    }
    for chunk in ds.bots().chunks(frame_len) {
        let mut body = BytesMut::with_capacity(chunk.len() * 48);
        for b in chunk {
            put_bot(&mut body, b);
        }
        section(KIND_BOTS, NO_FAMILY, chunk.len(), body);
    }
    for chunk in ds.botnets().chunks(frame_len) {
        let mut body = BytesMut::with_capacity(chunk.len() * 48);
        for b in chunk {
            put_botnet(&mut body, b);
        }
        section(KIND_BOTNETS, NO_FAMILY, chunk.len(), body);
    }
    for family in ds.snapshot_families() {
        let series = ds.snapshots(family).expect("family listed");
        if series.is_empty() {
            // One empty frame keeps the family present in the round trip.
            section(KIND_SNAPSHOTS, family.index() as u8, 0, BytesMut::new());
            continue;
        }
        for chunk in series.as_slice().chunks(frame_len) {
            let mut body = BytesMut::with_capacity(chunk.len() * 64);
            for s in chunk {
                put_snapshot(&mut body, s);
            }
            section(KIND_SNAPSHOTS, family.index() as u8, chunk.len(), body);
        }
    }

    let payload_len: usize = frames.iter().map(|f| f.body.len()).sum();
    let mut out = BytesMut::with_capacity(64 + frames.len() * 24 + payload_len);
    out.put_slice(MAGIC);
    out.put_u16(FRAMED_VERSION);
    out.put_i64(ds.window().start.0);
    out.put_i64(ds.window().end.0);
    put_varint(&mut out, frames.len() as u64);
    put_varint(&mut out, payload_len as u64);
    let mut offset = 0usize;
    for f in &frames {
        out.put_u8(f.kind);
        out.put_u8(f.family);
        put_varint(&mut out, f.count as u64);
        put_varint(&mut out, offset as u64);
        put_varint(&mut out, f.body.len() as u64);
        out.put_u64(checksum64(&f.body));
        offset += f.body.len();
    }
    for f in &frames {
        out.put_slice(&f.body);
    }
    out.freeze()
}

#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    kind: u8,
    family: u8,
    count: usize,
    offset: usize,
    len: usize,
    checksum: u64,
}

enum FramePayload {
    Attacks(Vec<AttackRecord>),
    Bots(Vec<BotRecord>),
    Botnets(Vec<BotnetRecord>),
    Snapshots(Family, Vec<HourlySnapshot>),
}

/// Decoded sections accumulated in frame order, pre-sized from the
/// directory's record counts so no vector ever regrows mid-decode.
struct Sections {
    attacks: Vec<AttackRecord>,
    bots: Vec<BotRecord>,
    botnets: Vec<BotnetRecord>,
    snaps: Vec<(Family, Vec<HourlySnapshot>)>,
}

/// Deserializes a dataset from the framed v2 format.
pub fn decode(bytes: &[u8]) -> Result<Dataset, SchemaError> {
    decode_with_stats(bytes).map(|(ds, _)| ds)
}

/// Like [`decode`], also returning [`IngestStats`] describing the load.
pub fn decode_with_stats(bytes: &[u8]) -> Result<(Dataset, IngestStats), SchemaError> {
    decode_with_workers(bytes, worker_count())
}

/// Like [`decode_with_stats`] with an explicit decode worker count
/// (clamped to `[1, frames]`); the default uses one worker per
/// available core. Lets tests and benches pin the parallel merge path
/// (or the serial one) regardless of the host's core count.
pub fn decode_with_workers(
    bytes: &[u8],
    workers: usize,
) -> Result<(Dataset, IngestStats), SchemaError> {
    let mut r = SliceReader::new(bytes);
    need(&r, 4 + 2 + 16, "header")?;
    let mut magic = [0u8; 4];
    r.take_into(&mut magic);
    if &magic != MAGIC {
        return Err(SchemaError::Codec("bad magic (not a DDTL trace)".into()));
    }
    let version = r.take_u16();
    if version != FRAMED_VERSION {
        return Err(SchemaError::UnsupportedVersion {
            found: version,
            supported: FRAMED_VERSION,
        });
    }
    let start = Timestamp(r.take_i64());
    let end = Timestamp(r.take_i64());
    let window = Window::new(start, end)?;

    let n_frames = get_varint(&mut r)? as usize;
    let payload_len = get_varint(&mut r)? as usize;
    // A directory entry is at least 13 bytes (kind, family, three
    // one-byte varints, checksum); reject absurd counts before sizing
    // any allocation off them.
    if r.left() < n_frames.saturating_mul(13) {
        return Err(SchemaError::Codec("truncated frame directory".into()));
    }
    let mut metas = Vec::with_capacity(n_frames);
    let mut expect_offset = 0usize;
    let mut prev_kind = KIND_ATTACKS;
    let mut current_family: Option<u8> = None;
    let mut seen_families: Vec<u8> = Vec::new();
    for i in 0..n_frames {
        need(&r, 2, "frame kind/family")?;
        let kind = r.take_u8();
        let family = r.take_u8();
        let count = get_varint(&mut r)? as usize;
        let offset = get_varint(&mut r)? as usize;
        let len = get_varint(&mut r)? as usize;
        need(&r, 8, "frame checksum")?;
        let checksum = r.take_u64();
        if kind > KIND_SNAPSHOTS {
            return Err(SchemaError::Codec(format!("frame {i}: bad kind {kind}")));
        }
        if kind < prev_kind {
            return Err(SchemaError::Codec(format!(
                "frame {i}: section kind {kind} after kind {prev_kind}"
            )));
        }
        prev_kind = kind;
        if kind == KIND_SNAPSHOTS {
            Family::from_index(family as usize)
                .ok_or_else(|| SchemaError::Codec(format!("frame {i}: bad family index")))?;
            if current_family != Some(family) {
                if seen_families.contains(&family) {
                    return Err(SchemaError::Codec(format!(
                        "frame {i}: snapshot family {family} reappears"
                    )));
                }
                seen_families.push(family);
                current_family = Some(family);
            }
        } else if family != NO_FAMILY {
            return Err(SchemaError::Codec(format!(
                "frame {i}: family byte on non-snapshot frame"
            )));
        }
        // Contiguity pins every frame to exactly one byte range; an
        // offset that rewinds (overlap) or skips ahead (gap) is corrupt.
        if offset != expect_offset {
            return Err(SchemaError::Codec(format!(
                "frame {i}: offset {offset} does not follow previous frame end {expect_offset}"
            )));
        }
        expect_offset = offset
            .checked_add(len)
            .ok_or_else(|| SchemaError::Codec(format!("frame {i}: length overflow")))?;
        metas.push(FrameMeta {
            kind,
            family,
            count,
            offset,
            len,
            checksum,
        });
    }
    if expect_offset != payload_len {
        return Err(SchemaError::Codec(format!(
            "frame directory covers {expect_offset} bytes but payload length is {payload_len}"
        )));
    }
    let payload = &bytes[r.pos()..];
    if payload.len() != payload_len {
        return Err(SchemaError::Codec(format!(
            "payload is {} bytes but directory declares {payload_len}",
            payload.len()
        )));
    }

    crate::fail::check(crate::fail::INGEST_FRAMED_HEADER)?;

    // Size each section once from the directory's record counts,
    // bounded by the payload size (every record is > 1 byte on the
    // wire) so corrupt counts cannot oversize an allocation.
    let mut totals = [0usize; 4];
    for m in &metas {
        totals[m.kind as usize] += m.count;
    }
    let mut sections = Sections {
        attacks: Vec::with_capacity(totals[KIND_ATTACKS as usize].min(payload_len)),
        bots: Vec::with_capacity(totals[KIND_BOTS as usize].min(payload_len)),
        botnets: Vec::with_capacity(totals[KIND_BOTNETS as usize].min(payload_len)),
        snaps: Vec::new(),
    };
    let workers = workers.min(metas.len()).max(1);
    if workers <= 1 {
        // Serial fast path: records land in the final pre-sized
        // vectors as they decode — no per-frame buffers and no splice
        // copy. At paper scale this is the difference between ~1.5x
        // and >2x over the v1 serial decode (see BENCH_ingest.json).
        for (i, meta) in metas.iter().enumerate() {
            decode_frame_into(meta, i, payload, &mut sections)?;
        }
    } else {
        let mut slots: Vec<Option<Result<FramePayload, SchemaError>>> =
            metas.iter().map(|_| None).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, metas) = (&next, &metas);
                    scope.spawn(move |_| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= metas.len() {
                                break;
                            }
                            done.push((i, decode_frame(&metas[i], i, payload)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, res) in h.join().expect("frame decode worker panicked") {
                    slots[i] = Some(res);
                }
            }
        })
        .expect("frame decode scope panicked");

        // Splice in frame order; the first error in frame order wins,
        // so diagnostics are deterministic regardless of worker
        // interleaving.
        for slot in slots {
            match slot.expect("every frame decoded")? {
                FramePayload::Attacks(v) => sections.attacks.extend(v),
                FramePayload::Bots(v) => sections.bots.extend(v),
                FramePayload::Botnets(v) => sections.botnets.extend(v),
                FramePayload::Snapshots(family, v) => match sections.snaps.last_mut() {
                    Some((f, acc)) if *f == family => acc.extend(v),
                    _ => sections.snaps.push((family, v)),
                },
            }
        }
    }

    // The builder starts empty, so each section vector moves in whole.
    let mut builder = DatasetBuilder::new(window).allow_out_of_window();
    builder.extend_attacks_prevalidated(sections.attacks);
    builder.extend_bots_prevalidated(sections.bots);
    builder.extend_botnets_prevalidated(sections.botnets);
    for (family, series) in sections.snaps {
        builder.set_snapshots(family, SnapshotSeries::from_snapshots(series)?)?;
    }
    let stats = IngestStats {
        version: FRAMED_VERSION,
        bytes: bytes.len(),
        frames: metas.len(),
        workers,
    };
    Ok((builder.build()?, stats))
}

/// Decodes one frame straight into the final section vectors — the
/// serial path, where per-frame buffers and the splice copy would be
/// pure overhead. The parallel path uses [`decode_frame`] instead.
fn decode_frame_into(
    meta: &FrameMeta,
    idx: usize,
    payload: &[u8],
    sections: &mut Sections,
) -> Result<(), SchemaError> {
    crate::fail::check(crate::fail::INGEST_FRAMED_FRAME)?;
    // The directory contiguity check proved this range is in bounds.
    let body = &payload[meta.offset..meta.offset + meta.len];
    if checksum64(body) != meta.checksum {
        return Err(SchemaError::Codec(format!(
            "frame {idx}: checksum mismatch"
        )));
    }
    let mut r = SliceReader::new(body);
    match meta.kind {
        KIND_ATTACKS => {
            for _ in 0..meta.count {
                let a = get_attack(&mut r)?;
                a.validate()?;
                sections.attacks.push(a);
            }
        }
        KIND_BOTS => {
            for _ in 0..meta.count {
                let b = get_bot(&mut r)?;
                b.validate()?;
                sections.bots.push(b);
            }
        }
        KIND_BOTNETS => {
            for _ in 0..meta.count {
                let b = get_botnet(&mut r)?;
                b.validate()?;
                sections.botnets.push(b);
            }
        }
        _ => {
            let family = Family::from_index(meta.family as usize)
                .ok_or_else(|| SchemaError::Codec(format!("frame {idx}: bad family index")))?;
            if sections.snaps.last().map(|(f, _)| *f) != Some(family) {
                sections.snaps.push((family, Vec::new()));
            }
            let acc = &mut sections.snaps.last_mut().expect("family run started").1;
            for _ in 0..meta.count {
                acc.push(get_snapshot(&mut r, family)?);
            }
        }
    }
    if r.left() > 0 {
        return Err(SchemaError::Codec(format!(
            "frame {idx}: {} trailing bytes",
            r.left()
        )));
    }
    Ok(())
}

fn decode_frame(meta: &FrameMeta, idx: usize, payload: &[u8]) -> Result<FramePayload, SchemaError> {
    crate::fail::check(crate::fail::INGEST_FRAMED_FRAME)?;
    // The directory contiguity check proved this range is in bounds.
    let body = &payload[meta.offset..meta.offset + meta.len];
    if checksum64(body) != meta.checksum {
        return Err(SchemaError::Codec(format!(
            "frame {idx}: checksum mismatch"
        )));
    }
    let mut r = SliceReader::new(body);
    // Every record is > 1 byte on the wire, so this caps preallocation
    // from an untrusted count at the frame size.
    let cap = meta.count.min(body.len());
    let payload = match meta.kind {
        KIND_ATTACKS => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..meta.count {
                let a = get_attack(&mut r)?;
                a.validate()?;
                v.push(a);
            }
            FramePayload::Attacks(v)
        }
        KIND_BOTS => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..meta.count {
                let b = get_bot(&mut r)?;
                b.validate()?;
                v.push(b);
            }
            FramePayload::Bots(v)
        }
        KIND_BOTNETS => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..meta.count {
                let b = get_botnet(&mut r)?;
                b.validate()?;
                v.push(b);
            }
            FramePayload::Botnets(v)
        }
        _ => {
            let family = Family::from_index(meta.family as usize)
                .ok_or_else(|| SchemaError::Codec(format!("frame {idx}: bad family index")))?;
            let mut v = Vec::with_capacity(cap);
            for _ in 0..meta.count {
                v.push(get_snapshot(&mut r, family)?);
            }
            FramePayload::Snapshots(family, v)
        }
    };
    if r.left() > 0 {
        return Err(SchemaError::Codec(format!(
            "frame {idx}: {} trailing bytes",
            r.left()
        )));
    }
    Ok(payload)
}

fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::geo::{CountryCode, LatLon};
    use crate::ids::BotnetId;
    use crate::ip::IpAddr4;
    use crate::record::test_fixtures::attack;
    use crate::snapshot::BotPresence;

    fn sample_dataset() -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        for id in 1..=9u64 {
            let mut a = attack(id, id as i64 * 1_000);
            a.sources.push(IpAddr4::from_octets(203, 0, 113, id as u8));
            b.push_attack(a).unwrap();
        }
        for i in 1..=5u8 {
            b.push_bot(BotRecord {
                ip: IpAddr4::from_octets(203, 0, 113, 100 + i),
                botnet: BotnetId(7),
                family: Family::Dirtjumper,
                location: crate::record::test_fixtures::location(),
                first_seen: Timestamp(500),
                last_seen: Timestamp(90_000),
            })
            .unwrap();
        }
        b.push_botnet(BotnetRecord {
            id: BotnetId(7),
            family: Family::Dirtjumper,
            binary_hash: [0x5A; 20],
            controller: IpAddr4::from_octets(192, 0, 2, 10),
            enrolled_bots: 5,
            first_seen: Timestamp(0),
            last_seen: Timestamp(100_000),
        })
        .unwrap();
        let series = SnapshotSeries::from_snapshots(
            (1..=4i64)
                .map(|h| HourlySnapshot {
                    family: Family::Dirtjumper,
                    taken_at: Timestamp(h * 3_600),
                    bots: vec![BotPresence {
                        ip: IpAddr4::from_octets(203, 0, 113, 5),
                        country: CountryCode::literal("RU"),
                        coords: LatLon::new_unchecked(55.75, 37.61),
                    }],
                })
                .collect(),
        )
        .unwrap();
        b.set_snapshots(Family::Dirtjumper, series).unwrap();
        b.build().unwrap()
    }

    fn assert_same(a: &Dataset, b: &Dataset) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }

    #[test]
    fn round_trip_matches_v1_decode() {
        let ds = sample_dataset();
        let v1 = codec::decode(&codec::encode(&ds)).unwrap();
        for frame_len in [1, 2, 3, 1_000_000] {
            let bytes = encode_with(&ds, frame_len);
            let (v2, stats) = decode_with_stats(&bytes).unwrap();
            assert_same(&v1, &v2);
            // Force the scoped-thread path even on a 1-core host.
            let (v2_par, par_stats) = decode_with_workers(&bytes, 4).unwrap();
            assert_same(&v1, &v2_par);
            assert!(par_stats.workers >= 1 && par_stats.workers <= 4);
            assert_eq!(stats.version, FRAMED_VERSION);
            assert_eq!(stats.bytes, bytes.len());
            if frame_len == 1_000_000 {
                // One frame per non-empty section.
                assert_eq!(stats.frames, 4);
            }
        }
    }

    #[test]
    fn decode_any_reads_both_versions() {
        let ds = sample_dataset();
        let v1 = codec::decode_any(&codec::encode(&ds)).unwrap();
        let v2 = codec::decode_any(&encode(&ds)).unwrap();
        assert_same(&v1, &v2);
        let (_, stats) = codec::decode_any_with_stats(&codec::encode(&ds)).unwrap();
        assert_eq!((stats.version, stats.frames), (1, 1));
    }

    #[test]
    fn empty_dataset_round_trips() {
        let window = Window::new(Timestamp(0), Timestamp(1_000)).unwrap();
        let ds = DatasetBuilder::new(window).build().unwrap();
        let (back, stats) = decode_with_stats(&encode(&ds)).unwrap();
        assert_same(&ds, &back);
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn empty_snapshot_series_survives() {
        let window = Window::new(Timestamp(0), Timestamp(1_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        b.set_snapshots(Family::Optima, SnapshotSeries::new())
            .unwrap();
        let ds = b.build().unwrap();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(
            back.snapshot_families().collect::<Vec<_>>(),
            vec![Family::Optima]
        );
        assert_eq!(back.snapshots(Family::Optima).unwrap().len(), 0);
    }

    #[test]
    fn rejects_checksum_corruption_anywhere_in_payload() {
        let ds = sample_dataset();
        let clean = encode_with(&ds, 2).to_vec();
        let (_, stats) = decode_with_stats(&clean).unwrap();
        assert!(stats.frames > 1);
        // Flipping any payload byte must be caught by a frame checksum
        // (or, for the rare flip that keeps the checksum word intact,
        // by record validation).
        let start = clean.len() - payload_size(&clean);
        for i in (start..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            let err = decode(&bad).expect_err("corruption must be detected");
            assert!(
                matches!(err, SchemaError::Codec(_) | SchemaError::InvalidRecord(_)),
                "unexpected error {err}"
            );
        }
    }

    /// Total payload size of an encoded v2 trace (sum of directory lens).
    fn payload_size(bytes: &[u8]) -> usize {
        let mut r = SliceReader::new(bytes);
        let mut skip = [0u8; 22];
        r.take_into(&mut skip);
        let _n = get_varint(&mut r).unwrap();
        get_varint(&mut r).unwrap() as usize
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let ds = sample_dataset();
        let bytes = encode_with(&ds, 2);
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix {len} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample_dataset()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let bytes = codec::encode(&sample_dataset());
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            SchemaError::UnsupportedVersion {
                found: 1,
                supported: FRAMED_VERSION
            }
        ));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum64(b""), checksum64(b""));
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        // Length is part of the digest: zero padding is not free.
        assert_ne!(checksum64(&[0u8; 7]), checksum64(&[0u8; 8]));
        assert_ne!(checksum64(&[]), checksum64(&[0u8; 1]));
    }
}
