//! Newtype identifiers used throughout the trace schemas.
//!
//! The feed identifies entities by opaque integers; we keep them as
//! dedicated newtypes so an attack id can never be confused with a botnet
//! id at a call site. All ids serialize as bare integers.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn value(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl FromStr for $name {
            type Err = SchemaError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let digits = s.strip_prefix($prefix).unwrap_or(s);
                digits
                    .parse::<$inner>()
                    .map(Self)
                    .map_err(|_| SchemaError::parse(stringify!($name), s))
            }
        }
    };
}

define_id!(
    /// Globally unique identifier of a single verified DDoS attack
    /// (`ddos_id` in Table I).
    DdosId,
    u64,
    "ddos-"
);

define_id!(
    /// Identifier of a botnet *generation*: a unique (family, binary hash)
    /// pair (`botnet_id` in Table I). The paper observes 674 of these.
    BotnetId,
    u32,
    "bn-"
);

define_id!(
    /// Autonomous system number (`asn` in Table I).
    Asn,
    u32,
    "AS"
);

define_id!(
    /// Compact identifier of a city in the geolocation registry.
    CityId,
    u32,
    "city-"
);

define_id!(
    /// Compact identifier of an organization in the geolocation registry.
    OrgId,
    u32,
    "org-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let id = DdosId(42);
        assert_eq!(id.to_string(), "ddos-42");
        assert_eq!("ddos-42".parse::<DdosId>().unwrap(), id);
        // Bare integers are accepted too.
        assert_eq!("42".parse::<DdosId>().unwrap(), id);
    }

    #[test]
    fn asn_uses_canonical_prefix() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
        assert_eq!("AS3356".parse::<Asn>().unwrap(), Asn(3356));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("bn-xyz".parse::<BotnetId>().is_err());
        assert!("".parse::<OrgId>().is_err());
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(BotnetId(1) < BotnetId(2));
        assert!(DdosId(100) > DdosId(99));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&CityId(7)).unwrap();
        assert_eq!(json, "7");
        let back: CityId = serde_json::from_str("7").unwrap();
        assert_eq!(back, CityId(7));
    }
}
