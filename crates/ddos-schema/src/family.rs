//! The 23 botnet malware families tracked by the monitoring feed.
//!
//! The paper names the ten *active* families it analyzes in depth
//! (§III): Aldibot, Blackenergy, Colddeath, Darkshell, Ddoser, Dirtjumper,
//! Nitol, Optima, Pandora, and YZF. The remaining thirteen families are
//! logged but mostly dormant; the paper does not name them, so we use
//! plausible placeholder names drawn from DDoS malware of the same era.
//! Analyses in `ddos-analytics` only ever consume the active set, exactly
//! as the paper does.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

/// A botnet malware family.
///
/// Variants are ordered with the ten active families first, so
/// `Family::ACTIVE` is a prefix of [`Family::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Family {
    // --- the ten active families analyzed by the paper ---
    Aldibot,
    Blackenergy,
    Colddeath,
    Darkshell,
    Ddoser,
    Dirtjumper,
    Nitol,
    Optima,
    Pandora,
    Yzf,
    // --- thirteen mostly-dormant families (placeholder names) ---
    Armageddon,
    Athena,
    Blackrev,
    Drive,
    Madness,
    Tsunami,
    Warbot,
    Yoddos,
    Zemra,
    Torpig,
    Pushdo,
    Virut,
    Kelihos,
}

impl Family {
    /// All 23 tracked families, active first.
    pub const ALL: [Family; 23] = [
        Family::Aldibot,
        Family::Blackenergy,
        Family::Colddeath,
        Family::Darkshell,
        Family::Ddoser,
        Family::Dirtjumper,
        Family::Nitol,
        Family::Optima,
        Family::Pandora,
        Family::Yzf,
        Family::Armageddon,
        Family::Athena,
        Family::Blackrev,
        Family::Drive,
        Family::Madness,
        Family::Tsunami,
        Family::Warbot,
        Family::Yoddos,
        Family::Zemra,
        Family::Torpig,
        Family::Pushdo,
        Family::Virut,
        Family::Kelihos,
    ];

    /// The ten active families the paper's analyses focus on (§III).
    pub const ACTIVE: [Family; 10] = [
        Family::Aldibot,
        Family::Blackenergy,
        Family::Colddeath,
        Family::Darkshell,
        Family::Ddoser,
        Family::Dirtjumper,
        Family::Nitol,
        Family::Optima,
        Family::Pandora,
        Family::Yzf,
    ];

    /// Whether the paper counts this family among the ten active ones.
    #[inline]
    pub fn is_active(self) -> bool {
        (self as usize) < Self::ACTIVE.len()
    }

    /// Canonical lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Aldibot => "aldibot",
            Family::Blackenergy => "blackenergy",
            Family::Colddeath => "colddeath",
            Family::Darkshell => "darkshell",
            Family::Ddoser => "ddoser",
            Family::Dirtjumper => "dirtjumper",
            Family::Nitol => "nitol",
            Family::Optima => "optima",
            Family::Pandora => "pandora",
            Family::Yzf => "yzf",
            Family::Armageddon => "armageddon",
            Family::Athena => "athena",
            Family::Blackrev => "blackrev",
            Family::Drive => "drive",
            Family::Madness => "madness",
            Family::Tsunami => "tsunami",
            Family::Warbot => "warbot",
            Family::Yoddos => "yoddos",
            Family::Zemra => "zemra",
            Family::Torpig => "torpig",
            Family::Pushdo => "pushdo",
            Family::Virut => "virut",
            Family::Kelihos => "kelihos",
        }
    }

    /// Stable dense index into [`Family::ALL`] (0..23), handy for arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The family at the given dense index, if in range.
    pub fn from_index(index: usize) -> Option<Family> {
        Self::ALL.get(index).copied()
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Family {
    type Err = SchemaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Self::ALL
            .iter()
            .copied()
            .find(|fam| fam.name() == lower)
            .ok_or_else(|| SchemaError::parse("Family", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_23_families_and_10_active() {
        assert_eq!(Family::ALL.len(), 23);
        assert_eq!(Family::ACTIVE.len(), 10);
        assert_eq!(Family::ALL.iter().filter(|f| f.is_active()).count(), 10);
    }

    #[test]
    fn active_is_a_prefix_of_all() {
        assert_eq!(&Family::ALL[..10], &Family::ACTIVE[..]);
    }

    #[test]
    fn names_are_unique_and_parse_back() {
        let mut seen = HashSet::new();
        for fam in Family::ALL {
            assert!(seen.insert(fam.name()), "duplicate name {}", fam.name());
            assert_eq!(fam.name().parse::<Family>().unwrap(), fam);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("DirtJumper".parse::<Family>().unwrap(), Family::Dirtjumper);
        assert_eq!(
            "BLACKENERGY".parse::<Family>().unwrap(),
            Family::Blackenergy
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("mirai".parse::<Family>().is_err());
    }

    #[test]
    fn index_round_trips() {
        for (i, fam) in Family::ALL.iter().enumerate() {
            assert_eq!(fam.index(), i);
            assert_eq!(Family::from_index(i), Some(*fam));
        }
        assert_eq!(Family::from_index(23), None);
    }
}
