//! Memory-mapped trace loading.
//!
//! [`Dataset::open`] maps a binary trace file read-only and decodes it
//! in place: the framed v2 decoder walks zero-copy cursors over the
//! mapping, so pages fault in lazily as the decode workers reach them
//! instead of being read (and copied) up front. Version 1 traces are
//! dispatched to the serial reference decoder over the same mapping.
//!
//! The mapping itself comes from the vendored `memmap2` shim, which
//! degrades to a buffered read when a real mapping is unavailable —
//! callers see identical bytes either way.

use std::fs::File;
use std::path::Path;

use memmap2::Mmap;

use crate::codec;
use crate::dataset::Dataset;
use crate::error::SchemaError;
use crate::framed::IngestStats;

impl Dataset {
    /// Opens a binary trace file (`DDTL` v1 or v2) via a read-only
    /// memory map and decodes it.
    pub fn open(path: impl AsRef<Path>) -> Result<Dataset, SchemaError> {
        Dataset::open_with_stats(path).map(|(ds, _)| ds)
    }

    /// Like [`Dataset::open`], also returning [`IngestStats`] for the
    /// load (format version, bytes, frames, decode workers) so callers
    /// can feed ingest telemetry.
    pub fn open_with_stats(path: impl AsRef<Path>) -> Result<(Dataset, IngestStats), SchemaError> {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| SchemaError::Io(format!("{}: {e}", path.display()));
        crate::fail::check(crate::fail::INGEST_OPEN)?;
        let file = File::open(path).map_err(io_err)?;
        let map = Mmap::map(&file).map_err(io_err)?;
        codec::decode_any_with_stats(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::framed;
    use crate::ip::IpAddr4;
    use crate::record::test_fixtures::attack;
    use crate::time::{Timestamp, Window};

    fn sample() -> Dataset {
        let window = Window::new(Timestamp(0), Timestamp(1_000_000)).unwrap();
        let mut b = DatasetBuilder::new(window);
        let mut a = attack(1, 1_000);
        a.sources.push(IpAddr4::from_octets(203, 0, 113, 9));
        b.push_attack(a).unwrap();
        b.push_attack(attack(2, 2_000)).unwrap();
        b.build().unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ddos-schema-mmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn open_reads_both_formats() {
        let ds = sample();
        for (name, bytes) in [
            ("v1.ddtl", codec::encode(&ds).to_vec()),
            ("v2.ddtl", framed::encode(&ds).to_vec()),
        ] {
            let path = temp_path(name);
            std::fs::write(&path, &bytes).unwrap();
            let (back, stats) = Dataset::open_with_stats(&path).unwrap();
            assert_eq!(back.attacks(), ds.attacks());
            assert_eq!(stats.bytes, bytes.len());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn open_missing_file_is_an_io_error() {
        let err = Dataset::open(temp_path("does-not-exist")).unwrap_err();
        assert!(matches!(err, SchemaError::Io(_)), "{err}");
        assert!(err.to_string().contains("does-not-exist"), "{err}");
    }

    #[test]
    fn open_corrupt_file_is_a_codec_error() {
        let path = temp_path("corrupt.ddtl");
        std::fs::write(&path, b"XXXXXXXX").unwrap();
        let err = Dataset::open(&path).unwrap_err();
        assert!(matches!(err, SchemaError::Codec(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
