//! Crate-internal shim over the `ddos-failpoints` seam.
//!
//! With the `failpoints` feature off this module compiles to empty
//! inline functions, so call sites stay zero-cost without sprinkling
//! `cfg` through the ingest paths. With the feature on, an injected
//! fault surfaces as [`SchemaError::Io`] carrying the failpoint name
//! and hit index — indistinguishable from a real I/O failure to
//! callers, which is the point.

use crate::error::SchemaError;

// Canonical names come from ddos-failpoints when the seam is compiled
// in. The feature-off fallbacks only keep call sites compiling — the
// stub `check` ignores its argument entirely.
#[cfg(feature = "failpoints")]
pub(crate) use ddos_failpoints::names::{
    INGEST_CSV_CHUNK, INGEST_FRAMED_FRAME, INGEST_FRAMED_HEADER, INGEST_OPEN, INGEST_V1_DECODE,
};

#[cfg(not(feature = "failpoints"))]
mod names_off {
    pub const INGEST_OPEN: &str = "ingest/open";
    pub const INGEST_V1_DECODE: &str = "ingest/v1/decode";
    pub const INGEST_FRAMED_HEADER: &str = "ingest/framed/header";
    pub const INGEST_FRAMED_FRAME: &str = "ingest/framed/frame";
    pub const INGEST_CSV_CHUNK: &str = "ingest/csv/chunk";
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use names_off::*;

/// Consult the failpoint `name`; `Err` when the installed plan
/// schedules a failure for this hit.
#[cfg(feature = "failpoints")]
#[inline]
pub(crate) fn check(name: &str) -> Result<(), SchemaError> {
    match ddos_failpoints::check(name) {
        Some(injected) => Err(SchemaError::Io(injected.to_string())),
        None => Ok(()),
    }
}

/// Feature-off stub: always succeeds, compiles to nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn check(_name: &str) -> Result<(), SchemaError> {
    Ok(())
}
