//! Plain geolocation *data* types carried inside trace records.
//!
//! The schemas store a country code (`cc`), city, organization, ASN, and a
//! latitude/longitude pair per address (Table I). The geometric semantics
//! (haversine distances, geographic centers, registries) live in the
//! `ddos-geo` crate; this module only defines the value types the records
//! need.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SchemaError;

/// An ISO 3166-1 alpha-2 country code, stored inline as two ASCII bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Builds a code from two ASCII letters; lowercase is normalized.
    pub fn new(a: u8, b: u8) -> Result<CountryCode, SchemaError> {
        let (a, b) = (a.to_ascii_uppercase(), b.to_ascii_uppercase());
        if a.is_ascii_uppercase() && b.is_ascii_uppercase() {
            Ok(CountryCode([a, b]))
        } else {
            Err(SchemaError::OutOfRange {
                what: "country code",
                expected: "two ASCII letters",
            })
        }
    }

    /// Builds a code from a static string, panicking on malformed input.
    ///
    /// Intended for registry literals: `CountryCode::literal("US")`.
    pub const fn literal(code: &'static str) -> CountryCode {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be two letters");
        assert!(
            bytes[0].is_ascii_uppercase() && bytes[1].is_ascii_uppercase(),
            "country code must be uppercase ASCII"
        );
        CountryCode([bytes[0], bytes[1]])
    }

    /// The two-letter code as a string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: both bytes are ASCII uppercase letters.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = SchemaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 {
            return Err(SchemaError::parse("CountryCode", s));
        }
        CountryCode::new(bytes[0], bytes[1]).map_err(|_| SchemaError::parse("CountryCode", s))
    }
}

impl Serialize for CountryCode {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for CountryCode {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = <&str>::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// A latitude/longitude pair in decimal degrees (WGS-84).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, `-90.0..=90.0` (positive is north).
    pub lat: f64,
    /// Longitude in degrees, `-180.0..=180.0` (positive is east).
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate pair, validating the domain.
    pub fn new(lat: f64, lon: f64) -> Result<LatLon, SchemaError> {
        if !(-90.0..=90.0).contains(&lat) || !lat.is_finite() {
            return Err(SchemaError::OutOfRange {
                what: "latitude",
                expected: "-90.0..=90.0",
            });
        }
        if !(-180.0..=180.0).contains(&lon) || !lon.is_finite() {
            return Err(SchemaError::OutOfRange {
                what: "longitude",
                expected: "-180.0..=180.0",
            });
        }
        Ok(LatLon { lat, lon })
    }

    /// Creates a coordinate pair without validation.
    ///
    /// For registry literals whose values are known valid at compile time.
    pub const fn new_unchecked(lat: f64, lon: f64) -> LatLon {
        LatLon { lat, lon }
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_round_trip() {
        let us: CountryCode = "US".parse().unwrap();
        assert_eq!(us.as_str(), "US");
        assert_eq!(us.to_string(), "US");
        assert_eq!("us".parse::<CountryCode>().unwrap(), us);
    }

    #[test]
    fn country_code_rejects_malformed() {
        for bad in ["", "U", "USA", "1A", "U "] {
            assert!(bad.parse::<CountryCode>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn literal_constructor() {
        const RU: CountryCode = CountryCode::literal("RU");
        assert_eq!(RU.as_str(), "RU");
    }

    #[test]
    fn country_code_serde_as_string() {
        let json = serde_json::to_string(&CountryCode::literal("DE")).unwrap();
        assert_eq!(json, "\"DE\"");
        let back: CountryCode = serde_json::from_str("\"de\"").unwrap();
        assert_eq!(back.as_str(), "DE");
    }

    #[test]
    fn latlon_validates_domain() {
        assert!(LatLon::new(0.0, 0.0).is_ok());
        assert!(LatLon::new(90.0, 180.0).is_ok());
        assert!(LatLon::new(90.1, 0.0).is_err());
        assert!(LatLon::new(0.0, -180.5).is_err());
        assert!(LatLon::new(f64::NAN, 0.0).is_err());
        assert!(LatLon::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn radian_conversion() {
        let p = LatLon::new(90.0, -180.0).unwrap();
        assert!((p.lat_rad() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((p.lon_rad() + std::f64::consts::PI).abs() < 1e-12);
    }
}
