//! Data model for botnet-launched DDoS attack traces.
//!
//! This crate implements the three record schemas the paper's monitoring
//! feed exposes (Table I of the paper):
//!
//! * the **`DDoSattack`** schema — one record per verified attack, carrying
//!   the attack id, the launching botnet, the transport category, the target
//!   and its geolocation, and the start/end timestamps
//!   ([`record::AttackRecord`]);
//! * the **`Botlist`** schema — one record per observed bot IP with its BGP
//!   and GeoIP attribution ([`record::BotRecord`]);
//! * the **`Botnetlist`** schema — one record per botnet generation,
//!   identified by the malware binary hash ([`record::BotnetRecord`]).
//!
//! On top of the raw records it provides:
//!
//! * [`time`] — a minimal civil-time module with the paper's 207-day
//!   observation window (2012-08-29 → 2013-03-24) and day/week/hour
//!   bucketing;
//! * [`snapshot`] — the hourly, 24-hour-cumulative botnet population
//!   snapshots the feed publishes per family;
//! * [`dataset`] — an indexed in-memory container over all three schemas
//!   with family/target/time access paths used by every analysis;
//! * [`codec`] — a compact binary trace format (plus JSON via `serde`) so
//!   generated traces can be persisted and shared;
//! * [`framed`] — version 2 of that format: sections split into
//!   checksummed frames decoded in parallel on scoped threads;
//! * [`mmap`] — [`Dataset::open`], memory-mapped zero-copy loading of
//!   either binary version;
//! * [`csv`] — a plain-text layout of the attack schema for importing
//!   external data.
//!
//! Everything is plain data: geolocation *semantics* (distance, centers,
//! registries) live in `ddos-geo`, statistics in `ddos-stats`, generation in
//! `ddos-sim`, and the paper's analyses in `ddos-analytics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod csv;
pub mod dataset;
pub mod error;
pub(crate) mod fail;
pub mod family;
pub mod framed;
pub mod geo;
pub mod hashing;
pub mod ids;
pub mod ip;
pub mod mmap;
pub mod protocol;
pub mod record;
pub mod shard;
pub mod snapshot;
pub mod time;
pub(crate) mod wire;

pub use dataset::{Dataset, DatasetBuilder, DatasetSummary};
pub use error::SchemaError;
pub use family::Family;
pub use framed::IngestStats;
pub use geo::{CountryCode, LatLon};
pub use ids::{Asn, BotnetId, CityId, DdosId, OrgId};
pub use ip::IpAddr4;
pub use protocol::Protocol;
pub use record::{AttackRecord, BotRecord, BotnetRecord, Location};
pub use shard::{DatasetShard, EpochBatch};
pub use snapshot::{HourlySnapshot, SnapshotSeries};
pub use time::{Seconds, Timestamp, Window};
