//! Epoch slicing: time-partitioned views over a [`Dataset`].
//!
//! The analysis engine folds the trace epoch by epoch instead of loading
//! it whole. A [`DatasetShard`] is a borrowed view of one epoch's slice:
//! the attacks that *start* inside the epoch (a contiguous range of the
//! globally `(start, id)`-sorted attack list, so shard-local structures
//! keep stable global indices) plus the bot records whose observation
//! span intersects the epoch. [`EpochBatch`] is the owned equivalent,
//! the unit a streaming feed hands to the fold one epoch at a time.
//!
//! Epoch boundaries clamp: an attack starting before the window lands in
//! the first epoch, one starting at/after the window end in the last, so
//! every attack belongs to exactly one shard and the shards concatenate
//! back to the full trace.

use std::ops::Range;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::record::{AttackRecord, BotRecord};
use crate::time::{Seconds, Timestamp, Window};

/// A borrowed view of one epoch's slice of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetShard<'a> {
    dataset: &'a Dataset,
    epoch: usize,
    span: Window,
    attack_range: Range<usize>,
    bot_rows: Vec<u32>,
}

impl<'a> DatasetShard<'a> {
    /// The dataset this shard views.
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Zero-based epoch index within the partition.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The epoch's time span (half-open, clamped to the trace window).
    #[inline]
    pub fn span(&self) -> Window {
        self.span
    }

    /// Global index range of the shard's attacks within
    /// [`Dataset::attacks`]; shards partition `0..dataset.len()` into
    /// consecutive ranges.
    #[inline]
    pub fn attack_range(&self) -> Range<usize> {
        self.attack_range.clone()
    }

    /// The shard's attacks, in global `(start, id)` order.
    pub fn attacks(&self) -> &'a [AttackRecord] {
        &self.dataset.attacks()[self.attack_range.clone()]
    }

    /// The shard's bot records as `(global row, record)`, ascending by
    /// global row. A bot whose observation span crosses an epoch boundary
    /// appears in every epoch it intersects; the merge keeps the
    /// latest-positioned duplicate, matching the monolithic build.
    pub fn bots(&self) -> impl Iterator<Item = (u32, &'a BotRecord)> + '_ {
        let bots = self.dataset.bots();
        self.bot_rows.iter().map(move |&r| (r, &bots[r as usize]))
    }

    /// Materializes the shard into an owned [`EpochBatch`].
    pub fn to_batch(&self) -> EpochBatch {
        EpochBatch {
            epoch: self.epoch,
            span: self.span,
            attack_base: self.attack_range.start,
            attacks: self.attacks().to_vec(),
            bots: self.bots().map(|(r, b)| (r, *b)).collect(),
        }
    }
}

/// One epoch's records, owned: the streaming unit of the incremental
/// pipeline. Produced by [`DatasetShard::to_batch`] or a live feed.
#[derive(Debug, Clone)]
pub struct EpochBatch {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// The epoch's time span.
    pub span: Window,
    /// Global index of the first attack in this batch.
    pub attack_base: usize,
    /// Attacks starting in this epoch, in global `(start, id)` order.
    pub attacks: Vec<AttackRecord>,
    /// `(global row, record)` of bots active in this epoch, ascending by
    /// row.
    pub bots: Vec<(u32, BotRecord)>,
}

impl Dataset {
    /// Partitions the trace into epoch shards of length `epoch_len`.
    ///
    /// Attacks are assigned by start time (clamped to the first/last
    /// epoch), so the shards' attack ranges are consecutive and cover
    /// `0..len()` exactly. Bot records land in every epoch their
    /// `[first_seen, last_seen]` span intersects.
    pub fn shards(&self, epoch_len: Seconds) -> Vec<DatasetShard<'_>> {
        let window = self.window();
        let epochs = window.epochs(epoch_len);
        let n = epochs.len();
        // Attack boundaries: boundary[i] = first attack of epoch i.
        // Clamping means epoch 0 starts at index 0 and the last epoch
        // runs to the end regardless of out-of-window starts.
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0usize);
        for e in &epochs[1..] {
            bounds.push(self.attacks().partition_point(|a| a.start < e.start));
        }
        bounds.push(self.len());
        // Bot rows per epoch, by observation-span overlap.
        let len = epoch_len.get().max(1);
        let last = n as i64 - 1;
        let epoch_of = |t: crate::time::Timestamp| -> i64 {
            if n == 1 {
                return 0;
            }
            (t - window.start).get().div_euclid(len).clamp(0, last)
        };
        let mut bot_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (row, bot) in self.bots().iter().enumerate() {
            let lo = epoch_of(bot.first_seen);
            let hi = epoch_of(bot.last_seen);
            for e in lo..=hi {
                bot_rows[e as usize].push(row as u32);
            }
        }
        epochs
            .into_iter()
            .zip(bot_rows)
            .enumerate()
            .map(|(i, (span, rows))| DatasetShard {
                dataset: self,
                epoch: i,
                span,
                attack_range: bounds[i]..bounds[i + 1],
                bot_rows: rows,
            })
            .collect()
    }

    /// Materializes the dataset a consumer of the first `epochs` shards
    /// of [`Dataset::shards`]`(epoch_len)` has seen: the attacks of
    /// those shards (a prefix of the `(start, id)`-sorted attack list,
    /// clamping included) and the bot records *first seen* inside them,
    /// in original order, with botnet records and snapshot series
    /// carried over verbatim (they are trace-wide metadata, not epoch
    /// streams). The window stays the full trace window, so epoch
    /// boundaries — and therefore shard slicing of the prefix — line up
    /// with the original partition.
    ///
    /// With `epochs` equal to the shard count the result is equivalent
    /// to the original dataset. The incremental engine's prefix-exact
    /// mode materializes passes against this to make every intermediate
    /// report an exact prefix report.
    ///
    /// # Panics
    ///
    /// If `epochs` is zero or exceeds the number of shards the slicing
    /// produces.
    pub fn epoch_prefix(&self, epoch_len: Seconds, epochs: usize) -> Dataset {
        let window = self.window();
        let spans = window.epochs(epoch_len);
        let n = spans.len();
        assert!(
            epochs >= 1 && epochs <= n,
            "epoch_prefix: epochs {epochs} outside 1..={n}"
        );
        // Same boundary rule as `shards`: epoch e starts at the first
        // attack with `start >= spans[e].start`; the last epoch (and so
        // a full prefix) runs to the end regardless of clamping.
        let attack_end = if epochs == n {
            self.len()
        } else {
            self.attacks()
                .partition_point(|a| a.start < spans[epochs].start)
        };
        // Same clamped epoch assignment as `shards`, keyed on
        // `first_seen`: a record belongs to the prefix iff the epoch it
        // first appears in has been consumed.
        let len = epoch_len.get().max(1);
        let last = n as i64 - 1;
        let epoch_of = |t: Timestamp| -> i64 {
            if n == 1 {
                return 0;
            }
            (t - window.start).get().div_euclid(len).clamp(0, last)
        };
        let mut builder = DatasetBuilder::new(window).allow_out_of_window();
        builder.extend_attacks_prevalidated(self.attacks()[..attack_end].to_vec());
        builder.extend_bots_prevalidated(
            self.bots()
                .iter()
                .filter(|b| epoch_of(b.first_seen) < epochs as i64)
                .copied()
                .collect(),
        );
        builder.extend_botnets_prevalidated(self.botnets().to_vec());
        for family in self.snapshot_families().collect::<Vec<_>>() {
            let series = self
                .snapshots(family)
                .expect("snapshot_families listed it")
                .clone();
            builder
                .set_snapshots(family, series)
                .expect("series copied from a valid dataset");
        }
        builder
            .build()
            .expect("a prefix of a valid dataset is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::record::test_fixtures::attack;
    use crate::time::Timestamp;

    fn window() -> Window {
        Window::new(Timestamp(0), Timestamp(1_000)).unwrap()
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new(window());
        for (id, start) in [(1, 50), (2, 250), (3, 260), (4, 990)] {
            b.push_attack(attack(id, start)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn shards_partition_attacks_contiguously() {
        let ds = dataset();
        let shards = ds.shards(Seconds(250));
        assert_eq!(shards.len(), 4);
        let ranges: Vec<_> = shards.iter().map(|s| s.attack_range()).collect();
        assert_eq!(ranges, vec![0..1, 1..3, 3..3, 3..4]);
        assert_eq!(shards[1].attacks().len(), 2);
        assert!(shards[2].attacks().is_empty());
        // Concatenated ranges cover the whole trace.
        assert_eq!(ranges.last().unwrap().end, ds.len());
    }

    #[test]
    fn out_of_window_attacks_clamp_to_edge_epochs() {
        let mut b = DatasetBuilder::new(window()).allow_out_of_window();
        for (id, start) in [(1, -100), (2, 500), (3, 2_000)] {
            b.push_attack(attack(id, start)).unwrap();
        }
        let ds = b.build().unwrap();
        let shards = ds.shards(Seconds(500));
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].attack_range(), 0..1);
        assert_eq!(shards[1].attack_range(), 1..3);
    }

    #[test]
    fn batch_mirrors_shard() {
        let ds = dataset();
        let shard = &ds.shards(Seconds(250))[1];
        let batch = shard.to_batch();
        assert_eq!(batch.epoch, 1);
        assert_eq!(batch.attack_base, 1);
        assert_eq!(batch.attacks.len(), 2);
        assert_eq!(batch.span, shard.span());
    }

    #[test]
    fn single_epoch_holds_everything() {
        let ds = dataset();
        let shards = ds.shards(Seconds(100_000));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].attack_range(), 0..ds.len());
        assert_eq!(shards[0].span(), ds.window());
    }

    fn bot(ip: u8, first_seen: i64, last_seen: i64) -> BotRecord {
        BotRecord {
            ip: crate::ip::IpAddr4::from_octets(10, 0, 0, ip),
            botnet: crate::ids::BotnetId(7),
            family: crate::family::Family::Dirtjumper,
            location: crate::record::test_fixtures::location(),
            first_seen: Timestamp(first_seen),
            last_seen: Timestamp(last_seen),
        }
    }

    fn dataset_with_bots() -> Dataset {
        let mut b = DatasetBuilder::new(window());
        for (id, start) in [(1, 50), (2, 250), (3, 260), (4, 990)] {
            b.push_attack(attack(id, start)).unwrap();
        }
        // First seen in epochs 0, 1, and 3 of a 250 s slicing; the
        // second record re-observes into epoch 2.
        b.push_bot(bot(1, 40, 60)).unwrap();
        b.push_bot(bot(2, 300, 600)).unwrap();
        b.push_bot(bot(3, 800, 990)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_epoch_prefix_is_the_original_dataset() {
        let ds = dataset_with_bots();
        let n = ds.shards(Seconds(250)).len();
        let full = ds.epoch_prefix(Seconds(250), n);
        assert_eq!(
            crate::codec::encode(&full),
            crate::codec::encode(&ds),
            "a full prefix must round-trip the dataset"
        );
    }

    #[test]
    fn epoch_prefix_tracks_shard_attack_bounds_and_first_seen() {
        let ds = dataset_with_bots();
        let shards = ds.shards(Seconds(250));
        let expect_bots = [1, 2, 2, 3];
        for w in 1..=shards.len() {
            let prefix = ds.epoch_prefix(Seconds(250), w);
            assert_eq!(
                prefix.len(),
                shards[w - 1].attack_range().end,
                "watermark {w}: attack prefix"
            );
            assert_eq!(
                prefix.bots().len(),
                expect_bots[w - 1],
                "watermark {w}: bots first seen before epoch {w}"
            );
            // The window (and so any re-slicing) matches the original.
            assert_eq!(prefix.window(), ds.window());
            assert_eq!(prefix.botnets().len(), ds.botnets().len());
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn epoch_prefix_rejects_zero_epochs() {
        let _ = dataset_with_bots().epoch_prefix(Seconds(250), 0);
    }
}
