//! Tiny deterministic PRNG for world synthesis.
//!
//! The geo database must be reproducible from a seed alone and must not
//! change when the `rand` crate revs its algorithms, so we keep a local
//! SplitMix64 — the standard 64-bit mixer from Vigna's `xorshift` paper —
//! private to this crate. Trace-generation randomness (which wants richer
//! distributions) lives in `ddos-stats`.

/// SplitMix64 state.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for our bounds (all far below 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[-1, 1)`.
    #[cfg(test)]
    pub(crate) fn next_signed_f64(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }
}

/// Stateless 64-bit mix of a key — used to derive stable per-entity jitter
/// (e.g. an address's offset from its city centroid) without threading an
/// RNG through lookups.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed key to a float in `[0, 1)`.
pub(crate) fn mix_f64(key: u64) -> f64 {
    (mix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let s = r.next_signed_f64();
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn mix_is_stable() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(1), mix64(2));
        assert!((0.0..1.0).contains(&mix_f64(123)));
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
