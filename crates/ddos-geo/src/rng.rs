//! Deterministic PRNG for world synthesis — re-exported from
//! `ddos_stats::rng`, the workspace's single pinned-algorithm RNG home.
//!
//! The geo database must be reproducible from a seed alone and must not
//! change when the `rand` crate revs its algorithms; `ddos-stats` pins
//! SplitMix64 (the standard 64-bit mixer from Vigna's `xorshift` paper)
//! for exactly the same reason, so both crates share one implementation.

pub(crate) use ddos_stats::rng::{mix64, mix_f64, SplitMix64};
