//! Reserved (bogon) IPv4 space.
//!
//! The prefix allocator must never hand out addresses from special-use
//! ranges — a synthetic trace whose bots sit in `10.0.0.0/8` would be
//! rejected by any real ingestion pipeline. The list follows RFC 6890's
//! special-purpose registry (the ranges relevant to unicast allocation).

use ddos_schema::ip::Prefix;
use ddos_schema::IpAddr4;

macro_rules! prefix {
    ($a:literal, $b:literal, $c:literal, $d:literal, $len:literal) => {
        Prefix {
            network: IpAddr4::from_octets($a, $b, $c, $d),
            len: $len,
        }
    };
}

/// Special-use ranges excluded from allocation (RFC 6890 and friends).
pub const RESERVED: &[Prefix] = &[
    prefix!(0, 0, 0, 0, 8),       // "this network"
    prefix!(10, 0, 0, 0, 8),      // private
    prefix!(100, 64, 0, 0, 10),   // carrier-grade NAT
    prefix!(127, 0, 0, 0, 8),     // loopback
    prefix!(169, 254, 0, 0, 16),  // link local
    prefix!(172, 16, 0, 0, 12),   // private
    prefix!(192, 0, 0, 0, 24),    // IETF protocol assignments
    prefix!(192, 0, 2, 0, 24),    // TEST-NET-1
    prefix!(192, 88, 99, 0, 24),  // 6to4 relay anycast
    prefix!(192, 168, 0, 0, 16),  // private
    prefix!(198, 18, 0, 0, 15),   // benchmarking
    prefix!(198, 51, 100, 0, 24), // TEST-NET-2
    prefix!(203, 0, 113, 0, 24),  // TEST-NET-3
    prefix!(224, 0, 0, 0, 4),     // multicast
    prefix!(240, 0, 0, 0, 4),     // reserved / future use
];

/// Whether an address lies in any reserved range.
pub fn is_reserved(ip: IpAddr4) -> bool {
    RESERVED.iter().any(|p| p.contains(ip))
}

/// Whether a candidate block `[start, start + size)` overlaps any
/// reserved range. `size` must be a power-of-two block size.
pub fn block_overlaps_reserved(start: u32, size: u64) -> bool {
    let end = u64::from(start) + size - 1;
    RESERVED.iter().any(|p| {
        let r_start = u64::from(p.first().value());
        let r_end = u64::from(p.last().value());
        u64::from(start) <= r_end && r_start <= end
    })
}

/// The start of the next block of `size` addresses at or after `start`
/// that clears every reserved range (aligned to `size`). Returns `None`
/// when the space is exhausted.
pub fn next_clear_block(start: u64, size: u64) -> Option<u32> {
    debug_assert!(size.is_power_of_two());
    let mut candidate = start.div_ceil(size) * size;
    loop {
        if candidate + size > u64::from(u32::MAX) + 1 {
            return None;
        }
        if !block_overlaps_reserved(candidate as u32, size) {
            return Some(candidate as u32);
        }
        // Jump past the colliding reserved range, keeping alignment.
        let colliding = RESERVED
            .iter()
            .filter(|p| {
                let r_start = u64::from(p.first().value());
                let r_end = u64::from(p.last().value());
                candidate <= r_end && r_start < candidate + size
            })
            .map(|p| u64::from(p.last().value()) + 1)
            .max()
            .expect("overlap implies a collider");
        candidate = colliding.div_ceil(size) * size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_bogons_are_reserved() {
        for (a, b, c, d) in [
            (10u8, 1u8, 2u8, 3u8),
            (127, 0, 0, 1),
            (172, 16, 5, 5),
            (172, 31, 255, 255),
            (192, 168, 1, 1),
            (224, 0, 0, 1),
            (255, 255, 255, 255),
            (100, 64, 0, 1),
            (169, 254, 9, 9),
        ] {
            assert!(
                is_reserved(IpAddr4::from_octets(a, b, c, d)),
                "{a}.{b}.{c}.{d}"
            );
        }
    }

    #[test]
    fn ordinary_unicast_is_not_reserved() {
        for (a, b, c, d) in [
            (1u8, 2u8, 3u8, 4u8),
            (8, 8, 8, 8),
            (100, 63, 255, 255), // just below CGN space
            (172, 15, 255, 255), // just below private /12
            (172, 32, 0, 0),     // just above private /12
            (11, 0, 0, 0),
            (223, 255, 255, 255),
        ] {
            assert!(
                !is_reserved(IpAddr4::from_octets(a, b, c, d)),
                "{a}.{b}.{c}.{d}"
            );
        }
    }

    #[test]
    fn block_overlap_detection() {
        // A /7 block starting at 10.0.0.0 overlaps private space.
        assert!(block_overlaps_reserved(
            IpAddr4::from_octets(10, 0, 0, 0).value(),
            1 << 25
        ));
        assert!(!block_overlaps_reserved(
            IpAddr4::from_octets(11, 0, 0, 0).value(),
            1 << 20
        ));
        // Block ending exactly at a reserved start-1 is clear.
        let start = u64::from(IpAddr4::from_octets(9, 255, 240, 0).value());
        assert!(!block_overlaps_reserved(start as u32, 1 << 12));
    }

    #[test]
    fn next_clear_block_skips_reserved_ranges() {
        // Asking inside 10/8 lands just past it, aligned.
        let inside_ten = u64::from(IpAddr4::from_octets(10, 5, 0, 0).value());
        let next = next_clear_block(inside_ten, 1 << 12).unwrap();
        assert!(!block_overlaps_reserved(next, 1 << 12));
        assert!(u64::from(next) >= u64::from(IpAddr4::from_octets(11, 0, 0, 0).value()));
        // Clear space returns the aligned candidate itself.
        let clear = u64::from(IpAddr4::from_octets(20, 0, 0, 0).value());
        assert_eq!(next_clear_block(clear, 1 << 12), Some(clear as u32));
    }

    #[test]
    fn next_clear_block_exhausts_at_the_top() {
        // 240/4 runs to the end of the space: nothing fits after it.
        let top = u64::from(IpAddr4::from_octets(250, 0, 0, 0).value());
        assert_eq!(next_clear_block(top, 1 << 12), None);
    }

    #[test]
    fn reserved_list_is_well_formed() {
        for p in RESERVED {
            assert_eq!(
                p.network.value() & !Prefix::mask(p.len),
                0,
                "{p} has host bits"
            );
        }
    }
}
