//! The country registry: the static backbone of the synthetic world.
//!
//! 195 countries with ISO 3166-1 alpha-2 codes, an approximate centroid of
//! the populated area, a geographic `spread_km` (how far synthesized
//! cities scatter from the centroid), and a relative `weight` approximating
//! the size of the country's internet population circa the trace period —
//! the prior from which the generator draws bot locations when a family
//! has no stronger affinity.
//!
//! Coordinates are deliberately coarse (this substrate reproduces
//! *distributional shape*, not street-level accuracy), but each centroid is
//! within a few hundred km of the country's population center, which is
//! what the paper's dispersion analysis (thousands of km scale) needs.

use ddos_schema::{CountryCode, LatLon};

/// Static description of one country.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryInfo {
    /// ISO 3166-1 alpha-2 code.
    pub code: CountryCode,
    /// English short name.
    pub name: &'static str,
    /// Approximate centroid of the populated area.
    pub centroid: LatLon,
    /// Scatter radius for synthesized cities, in kilometers.
    pub spread_km: f64,
    /// Relative internet-population weight (arbitrary units).
    pub weight: f64,
}

macro_rules! country {
    ($code:literal, $name:literal, $lat:expr, $lon:expr, $spread:expr, $weight:expr) => {
        CountryInfo {
            code: CountryCode::literal($code),
            name: $name,
            centroid: LatLon::new_unchecked($lat, $lon),
            spread_km: $spread,
            weight: $weight,
        }
    };
}

/// All countries in the registry, sorted by alpha-2 code.
pub const COUNTRIES: &[CountryInfo] = &[
    country!("AD", "Andorra", 42.5, 1.5, 20.0, 0.1),
    country!("AE", "United Arab Emirates", 24.3, 54.4, 150.0, 8.0),
    country!("AF", "Afghanistan", 34.5, 69.2, 300.0, 1.5),
    country!("AG", "Antigua and Barbuda", 17.1, -61.8, 20.0, 0.1),
    country!("AL", "Albania", 41.3, 19.8, 80.0, 1.5),
    country!("AM", "Armenia", 40.2, 44.5, 80.0, 1.5),
    country!("AO", "Angola", -8.8, 13.2, 400.0, 1.5),
    country!("AR", "Argentina", -34.6, -58.4, 600.0, 28.0),
    country!("AT", "Austria", 48.2, 16.4, 150.0, 7.0),
    country!("AU", "Australia", -33.9, 151.2, 900.0, 19.0),
    country!("AZ", "Azerbaijan", 40.4, 49.9, 120.0, 4.0),
    country!("BA", "Bosnia and Herzegovina", 43.9, 18.4, 100.0, 2.0),
    country!("BB", "Barbados", 13.1, -59.6, 15.0, 0.2),
    country!("BD", "Bangladesh", 23.7, 90.4, 200.0, 9.0),
    country!("BE", "Belgium", 50.8, 4.4, 90.0, 9.0),
    country!("BF", "Burkina Faso", 12.4, -1.5, 250.0, 0.5),
    country!("BG", "Bulgaria", 42.7, 23.3, 150.0, 4.0),
    country!("BH", "Bahrain", 26.2, 50.6, 20.0, 1.0),
    country!("BI", "Burundi", -3.4, 29.4, 80.0, 0.1),
    country!("BJ", "Benin", 6.5, 2.6, 150.0, 0.3),
    country!("BN", "Brunei", 4.9, 114.9, 40.0, 0.3),
    country!("BO", "Bolivia", -16.5, -68.1, 350.0, 2.0),
    country!("BR", "Brazil", -23.5, -46.6, 1200.0, 88.0),
    country!("BS", "Bahamas", 25.0, -77.4, 60.0, 0.2),
    country!("BT", "Bhutan", 27.5, 89.6, 60.0, 0.1),
    country!("BW", "Botswana", -24.7, 25.9, 200.0, 0.4),
    country!("BY", "Belarus", 53.9, 27.6, 200.0, 5.0),
    country!("BZ", "Belize", 17.5, -88.2, 60.0, 0.1),
    country!("CA", "Canada", 45.4, -75.7, 1200.0, 28.0),
    country!("CD", "DR Congo", -4.3, 15.3, 600.0, 1.0),
    country!("CF", "Central African Republic", 4.4, 18.6, 250.0, 0.1),
    country!("CG", "Congo", -4.3, 15.2, 150.0, 0.2),
    country!("CH", "Switzerland", 47.4, 8.5, 100.0, 7.0),
    country!("CI", "Ivory Coast", 5.3, -4.0, 200.0, 0.8),
    country!("CL", "Chile", -33.4, -70.7, 500.0, 10.0),
    country!("CM", "Cameroon", 4.0, 9.7, 300.0, 0.8),
    country!("CN", "China", 34.0, 110.0, 1400.0, 120.0),
    country!("CO", "Colombia", 4.6, -74.1, 400.0, 15.0),
    country!("CR", "Costa Rica", 9.9, -84.1, 80.0, 1.5),
    country!("CU", "Cuba", 23.1, -82.4, 250.0, 1.5),
    country!("CV", "Cape Verde", 14.9, -23.5, 40.0, 0.1),
    country!("CY", "Cyprus", 35.2, 33.4, 50.0, 0.7),
    country!("CZ", "Czechia", 50.1, 14.4, 150.0, 7.0),
    country!("DE", "Germany", 51.2, 10.4, 300.0, 60.0),
    country!("DJ", "Djibouti", 11.6, 43.1, 30.0, 0.1),
    country!("DK", "Denmark", 55.7, 12.6, 120.0, 5.0),
    country!("DM", "Dominica", 15.4, -61.4, 15.0, 0.05),
    country!("DO", "Dominican Republic", 18.5, -69.9, 120.0, 3.0),
    country!("DZ", "Algeria", 36.8, 3.1, 400.0, 5.0),
    country!("EC", "Ecuador", -0.2, -78.5, 200.0, 4.0),
    country!("EE", "Estonia", 59.4, 24.8, 80.0, 1.0),
    country!("EG", "Egypt", 30.0, 31.2, 300.0, 20.0),
    country!("ER", "Eritrea", 15.3, 38.9, 120.0, 0.05),
    country!("ES", "Spain", 40.4, -3.7, 400.0, 25.0),
    country!("ET", "Ethiopia", 9.0, 38.8, 350.0, 0.8),
    country!("FI", "Finland", 60.2, 24.9, 250.0, 5.0),
    country!("FJ", "Fiji", -18.1, 178.4, 80.0, 0.3),
    country!("FM", "Micronesia", 6.9, 158.2, 60.0, 0.02),
    country!("FR", "France", 48.9, 2.4, 400.0, 45.0),
    country!("GA", "Gabon", 0.4, 9.5, 120.0, 0.2),
    country!("GB", "United Kingdom", 51.5, -0.1, 350.0, 50.0),
    country!("GD", "Grenada", 12.1, -61.7, 15.0, 0.05),
    country!("GE", "Georgia", 41.7, 44.8, 120.0, 1.5),
    country!("GH", "Ghana", 5.6, -0.2, 200.0, 1.5),
    country!("GM", "Gambia", 13.5, -16.6, 40.0, 0.1),
    country!("GN", "Guinea", 9.5, -13.7, 180.0, 0.2),
    country!("GQ", "Equatorial Guinea", 3.8, 8.8, 50.0, 0.05),
    country!("GR", "Greece", 38.0, 23.7, 250.0, 5.0),
    country!("GT", "Guatemala", 14.6, -90.5, 120.0, 1.5),
    country!("GW", "Guinea-Bissau", 11.9, -15.6, 50.0, 0.03),
    country!("GY", "Guyana", 6.8, -58.2, 100.0, 0.2),
    country!("HK", "Hong Kong", 22.3, 114.2, 30.0, 6.0),
    country!("HN", "Honduras", 14.1, -87.2, 120.0, 1.0),
    country!("HR", "Croatia", 45.8, 16.0, 120.0, 2.5),
    country!("HT", "Haiti", 18.5, -72.3, 80.0, 0.5),
    country!("HU", "Hungary", 47.5, 19.1, 150.0, 6.0),
    country!("ID", "Indonesia", -6.2, 106.8, 900.0, 35.0),
    country!("IE", "Ireland", 53.3, -6.3, 120.0, 3.5),
    country!("IL", "Israel", 32.1, 34.8, 80.0, 5.5),
    country!("IN", "India", 22.0, 79.0, 1200.0, 80.0),
    country!("IQ", "Iraq", 33.3, 44.4, 250.0, 2.5),
    country!("IR", "Iran", 35.7, 51.4, 500.0, 18.0),
    country!("IS", "Iceland", 64.1, -21.9, 80.0, 0.3),
    country!("IT", "Italy", 42.5, 12.5, 400.0, 30.0),
    country!("JM", "Jamaica", 18.0, -76.8, 60.0, 0.8),
    country!("JO", "Jordan", 31.9, 35.9, 80.0, 1.5),
    country!("JP", "Japan", 35.7, 139.7, 500.0, 75.0),
    country!("KE", "Kenya", -1.3, 36.8, 250.0, 4.0),
    country!("KG", "Kyrgyzstan", 42.9, 74.6, 150.0, 1.0),
    country!("KH", "Cambodia", 11.6, 104.9, 150.0, 0.8),
    country!("KI", "Kiribati", 1.5, 173.0, 60.0, 0.01),
    country!("KM", "Comoros", -11.7, 43.3, 30.0, 0.02),
    country!("KN", "Saint Kitts and Nevis", 17.3, -62.7, 10.0, 0.03),
    country!("KP", "North Korea", 39.0, 125.8, 120.0, 0.05),
    country!("KR", "South Korea", 37.6, 127.0, 200.0, 30.0),
    country!("KW", "Kuwait", 29.4, 48.0, 40.0, 1.5),
    country!("KZ", "Kazakhstan", 43.2, 76.9, 700.0, 6.0),
    country!("LA", "Laos", 17.9, 102.6, 180.0, 0.4),
    country!("LB", "Lebanon", 33.9, 35.5, 50.0, 1.5),
    country!("LC", "Saint Lucia", 14.0, -61.0, 15.0, 0.05),
    country!("LI", "Liechtenstein", 47.1, 9.5, 10.0, 0.03),
    country!("LK", "Sri Lanka", 6.9, 79.9, 120.0, 2.0),
    country!("LR", "Liberia", 6.3, -10.8, 100.0, 0.1),
    country!("LS", "Lesotho", -29.3, 27.5, 60.0, 0.1),
    country!("LT", "Lithuania", 54.7, 25.3, 100.0, 2.0),
    country!("LU", "Luxembourg", 49.6, 6.1, 30.0, 0.5),
    country!("LV", "Latvia", 56.9, 24.1, 100.0, 1.5),
    country!("LY", "Libya", 32.9, 13.2, 300.0, 1.0),
    country!("MA", "Morocco", 33.6, -7.6, 300.0, 8.0),
    country!("MC", "Monaco", 43.7, 7.4, 5.0, 0.03),
    country!("MD", "Moldova", 47.0, 28.9, 80.0, 1.2),
    country!("ME", "Montenegro", 42.4, 19.3, 50.0, 0.4),
    country!("MG", "Madagascar", -18.9, 47.5, 300.0, 0.5),
    country!("MH", "Marshall Islands", 7.1, 171.4, 40.0, 0.01),
    country!("MK", "North Macedonia", 42.0, 21.4, 60.0, 0.8),
    country!("ML", "Mali", 12.6, -8.0, 300.0, 0.3),
    country!("MM", "Myanmar", 16.8, 96.2, 350.0, 0.5),
    country!("MN", "Mongolia", 47.9, 106.9, 300.0, 0.6),
    country!("MR", "Mauritania", 18.1, -15.9, 250.0, 0.1),
    country!("MT", "Malta", 35.9, 14.5, 15.0, 0.3),
    country!("MU", "Mauritius", -20.2, 57.5, 30.0, 0.4),
    country!("MV", "Maldives", 4.2, 73.5, 40.0, 0.1),
    country!("MW", "Malawi", -14.0, 33.8, 150.0, 0.2),
    country!("MX", "Mexico", 19.4, -99.1, 700.0, 40.0),
    country!("MY", "Malaysia", 3.1, 101.7, 400.0, 18.0),
    country!("MZ", "Mozambique", -25.9, 32.6, 400.0, 0.5),
    country!("NA", "Namibia", -22.6, 17.1, 250.0, 0.3),
    country!("NE", "Niger", 13.5, 2.1, 300.0, 0.1),
    country!("NG", "Nigeria", 9.1, 7.4, 500.0, 12.0),
    country!("NI", "Nicaragua", 12.1, -86.3, 120.0, 0.6),
    country!("NL", "Netherlands", 52.4, 4.9, 120.0, 15.0),
    country!("NO", "Norway", 59.9, 10.8, 300.0, 4.5),
    country!("NP", "Nepal", 27.7, 85.3, 200.0, 1.5),
    country!("NR", "Nauru", -0.5, 166.9, 5.0, 0.005),
    country!("NZ", "New Zealand", -36.8, 174.8, 400.0, 3.5),
    country!("OM", "Oman", 23.6, 58.4, 200.0, 1.5),
    country!("PA", "Panama", 9.0, -79.5, 100.0, 1.2),
    country!("PE", "Peru", -12.0, -77.0, 400.0, 8.0),
    country!("PG", "Papua New Guinea", -9.5, 147.2, 250.0, 0.1),
    country!("PH", "Philippines", 14.6, 121.0, 500.0, 25.0),
    country!("PK", "Pakistan", 31.5, 74.3, 500.0, 15.0),
    country!("PL", "Poland", 52.2, 21.0, 350.0, 20.0),
    country!("PS", "Palestine", 31.9, 35.2, 40.0, 1.0),
    country!("PT", "Portugal", 38.7, -9.1, 200.0, 5.5),
    country!("PW", "Palau", 7.5, 134.6, 30.0, 0.01),
    country!("PY", "Paraguay", -25.3, -57.6, 200.0, 1.5),
    country!("QA", "Qatar", 25.3, 51.5, 30.0, 1.0),
    country!("RO", "Romania", 44.4, 26.1, 300.0, 9.0),
    country!("RS", "Serbia", 44.8, 20.5, 120.0, 3.5),
    country!("RU", "Russia", 55.8, 37.6, 1500.0, 70.0),
    country!("RW", "Rwanda", -1.9, 30.1, 60.0, 0.3),
    country!("SA", "Saudi Arabia", 24.7, 46.7, 500.0, 12.0),
    country!("SB", "Solomon Islands", -9.4, 160.0, 100.0, 0.02),
    country!("SC", "Seychelles", -4.6, 55.5, 20.0, 0.05),
    country!("SD", "Sudan", 15.6, 32.5, 400.0, 1.5),
    country!("SE", "Sweden", 59.3, 18.1, 350.0, 8.5),
    country!("SG", "Singapore", 1.35, 103.8, 20.0, 4.5),
    country!("SI", "Slovenia", 46.1, 14.5, 60.0, 1.3),
    country!("SK", "Slovakia", 48.2, 17.1, 120.0, 3.5),
    country!("SL", "Sierra Leone", 8.5, -13.2, 80.0, 0.05),
    country!("SM", "San Marino", 43.9, 12.5, 5.0, 0.02),
    country!("SN", "Senegal", 14.7, -17.4, 150.0, 0.8),
    country!("SO", "Somalia", 2.0, 45.3, 250.0, 0.1),
    country!("SR", "Suriname", 5.9, -55.2, 80.0, 0.2),
    country!("SS", "South Sudan", 4.9, 31.6, 250.0, 0.02),
    country!("ST", "Sao Tome and Principe", 0.3, 6.7, 20.0, 0.01),
    country!("SV", "El Salvador", 13.7, -89.2, 60.0, 0.8),
    country!("SY", "Syria", 33.5, 36.3, 200.0, 1.8),
    country!("SZ", "Eswatini", -26.3, 31.1, 40.0, 0.1),
    country!("TD", "Chad", 12.1, 15.0, 300.0, 0.05),
    country!("TG", "Togo", 6.1, 1.2, 80.0, 0.2),
    country!("TH", "Thailand", 13.8, 100.5, 400.0, 18.0),
    country!("TJ", "Tajikistan", 38.6, 68.8, 120.0, 0.8),
    country!("TL", "Timor-Leste", -8.6, 125.6, 60.0, 0.02),
    country!("TM", "Turkmenistan", 37.9, 58.4, 200.0, 0.3),
    country!("TN", "Tunisia", 36.8, 10.2, 150.0, 2.5),
    country!("TO", "Tonga", -21.1, -175.2, 30.0, 0.01),
    country!("TR", "Turkey", 39.9, 32.9, 500.0, 25.0),
    country!("TT", "Trinidad and Tobago", 10.7, -61.5, 40.0, 0.5),
    country!("TV", "Tuvalu", -8.5, 179.2, 10.0, 0.005),
    country!("TW", "Taiwan", 25.0, 121.5, 150.0, 12.0),
    country!("TZ", "Tanzania", -6.8, 39.3, 350.0, 1.5),
    country!("UA", "Ukraine", 50.5, 30.5, 400.0, 18.0),
    country!("UG", "Uganda", 0.3, 32.6, 150.0, 1.0),
    country!("US", "United States", 39.8, -96.6, 1500.0, 110.0),
    country!("UY", "Uruguay", -34.9, -56.2, 150.0, 1.8),
    country!("UZ", "Uzbekistan", 41.3, 69.2, 250.0, 3.5),
    country!("VC", "Saint Vincent", 13.2, -61.2, 15.0, 0.03),
    country!("VE", "Venezuela", 10.5, -66.9, 350.0, 9.0),
    country!("VN", "Vietnam", 16.0, 107.8, 500.0, 20.0),
    country!("VU", "Vanuatu", -17.7, 168.3, 60.0, 0.02),
    country!("WS", "Samoa", -13.8, -171.8, 30.0, 0.02),
    country!("YE", "Yemen", 15.4, 44.2, 250.0, 1.0),
    country!("ZA", "South Africa", -26.2, 28.0, 500.0, 10.0),
    country!("ZM", "Zambia", -15.4, 28.3, 250.0, 0.5),
    country!("ZW", "Zimbabwe", -17.8, 31.0, 200.0, 0.6),
];

/// Looks up a country by its alpha-2 code (binary search; the table is
/// sorted by code).
pub fn lookup(code: CountryCode) -> Option<&'static CountryInfo> {
    COUNTRIES
        .binary_search_by(|c| c.code.cmp(&code))
        .ok()
        .map(|i| &COUNTRIES[i])
}

/// Index of a country in [`COUNTRIES`] by code.
pub fn index_of(code: CountryCode) -> Option<usize> {
    COUNTRIES.binary_search_by(|c| c.code.cmp(&code)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_large_enough_for_the_paper() {
        // The paper observes bots in 186 countries (Table III); the
        // registry must be able to cover that.
        assert!(COUNTRIES.len() >= 186, "only {} countries", COUNTRIES.len());
    }

    #[test]
    fn codes_are_sorted_and_unique() {
        let mut seen = HashSet::new();
        for pair in COUNTRIES.windows(2) {
            assert!(pair[0].code < pair[1].code, "unsorted at {}", pair[1].code);
        }
        for c in COUNTRIES {
            assert!(seen.insert(c.code), "duplicate {}", c.code);
        }
    }

    #[test]
    fn centroids_are_valid_coordinates() {
        for c in COUNTRIES {
            assert!(
                (-90.0..=90.0).contains(&c.centroid.lat),
                "{} lat {}",
                c.code,
                c.centroid.lat
            );
            assert!(
                (-180.0..=180.0).contains(&c.centroid.lon),
                "{} lon {}",
                c.code,
                c.centroid.lon
            );
            assert!(c.spread_km > 0.0, "{} spread", c.code);
            assert!(c.weight > 0.0, "{} weight", c.code);
        }
    }

    #[test]
    fn lookup_finds_paper_countries() {
        for code in [
            "US", "RU", "DE", "UA", "NL", "FR", "ES", "VE", "SG", "IN", "PK", "BW", "TH", "ID",
            "CN", "KR", "HK", "JP", "MX", "UY", "CL", "CA", "GB", "KG",
        ] {
            let cc = code.parse().unwrap();
            assert!(lookup(cc).is_some(), "missing {code}");
        }
        assert!(lookup("XX".parse().unwrap()).is_none());
    }

    #[test]
    fn index_of_matches_lookup() {
        let us = "US".parse().unwrap();
        let i = index_of(us).unwrap();
        assert_eq!(COUNTRIES[i].code, us);
    }

    #[test]
    fn major_countries_dominate_weight() {
        let total: f64 = COUNTRIES.iter().map(|c| c.weight).sum();
        let major: f64 = ["CN", "US", "IN", "BR", "JP", "RU", "DE"]
            .iter()
            .map(|c| lookup(c.parse().unwrap()).unwrap().weight)
            .sum();
        assert!(major / total > 0.35, "major share {}", major / total);
    }
}
