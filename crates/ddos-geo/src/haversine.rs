//! Great-circle distance on the WGS-84 mean sphere.
//!
//! The paper computes the distance between each bot and the geographic
//! center of the attacking population "using Haversine formula" (§IV-A);
//! this module is that formula.

use ddos_schema::LatLon;

use crate::trig::{CenterTrig, PointTrig};

/// Mean Earth radius in kilometers (IUGG mean radius R₁).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Haversine great-circle distance between two points, in kilometers.
///
/// Numerically stable for both antipodal and very close points (the
/// `sqrt`/`asin` form with clamping).
pub fn distance_km(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    let h = h.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// [`distance_km`] over precomputed trigonometry: the center side comes
/// from a [`CenterTrig`] (hoisted out of the caller's batch loop), the
/// point side from a cached [`PointTrig`].
///
/// Evaluates the exact expression of [`distance_km`]`(center, point)` —
/// same operations, same association — so the result is bit-identical;
/// only the `sin`/`cos`/`to_radians` calls are replaced by cached loads.
#[inline]
pub fn distance_km_precomp(center: &CenterTrig, point: &PointTrig) -> f64 {
    let dlat = point.lat_rad() - center.lat_rad;
    let dlon = point.lon_rad() - center.lon_rad;
    let h =
        (dlat / 2.0).sin().powi(2) + center.cos_lat * point.cos_lat * (dlon / 2.0).sin().powi(2);
    let h = h.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Initial bearing from `a` to `b` in degrees, `[0, 360)`.
///
/// Used by the center module to classify a point as east/west of the
/// center when assigning the paper's distance sign.
pub fn initial_bearing_deg(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// Destination point at `distance_km` from `origin` along `bearing_deg`.
///
/// Used by the world synthesizer to scatter cities around a country
/// centroid at controlled distances.
pub fn destination(origin: LatLon, bearing_deg: f64, distance_km: f64) -> LatLon {
    let delta = distance_km / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let (lat1, lon1) = (origin.lat_rad(), origin.lon_rad());
    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos())
        .clamp(-1.0, 1.0)
        .asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
    // Normalize longitude to [-180, 180].
    let mut lon_deg = lon2.to_degrees();
    if lon_deg > 180.0 {
        lon_deg -= 360.0;
    } else if lon_deg < -180.0 {
        lon_deg += 360.0;
    }
    LatLon::new_unchecked(lat2.to_degrees().clamp(-90.0, 90.0), lon_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn zero_distance_to_self() {
        let moscow = p(55.7558, 37.6173);
        assert_eq!(distance_km(moscow, moscow), 0.0);
    }

    #[test]
    fn known_city_pairs() {
        // Reference distances from standard great-circle calculators.
        let moscow = p(55.7558, 37.6173);
        let nyc = p(40.7128, -74.0060);
        let d = distance_km(moscow, nyc);
        assert!((d - 7_520.0).abs() < 40.0, "Moscow-NYC {d}");

        let london = p(51.5074, -0.1278);
        let paris = p(48.8566, 2.3522);
        let d = distance_km(london, paris);
        assert!((d - 344.0).abs() < 5.0, "London-Paris {d}");
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 180.0);
        let d = distance_km(a, b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = p(0.0, 0.0);
        assert!((initial_bearing_deg(origin, p(10.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((initial_bearing_deg(origin, p(0.0, 10.0)) - 90.0).abs() < 1e-9);
        assert!((initial_bearing_deg(origin, p(-10.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((initial_bearing_deg(origin, p(0.0, -10.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let origin = p(48.8566, 2.3522);
        for bearing in [0.0, 45.0, 137.0, 270.0] {
            let dest = destination(origin, bearing, 500.0);
            let d = distance_km(origin, dest);
            assert!((d - 500.0).abs() < 1.0, "bearing {bearing}: {d}");
        }
    }

    proptest! {
        #[test]
        fn precomp_distance_is_bit_identical(
            lat1 in -90.0f64..=90.0, lon1 in -180.0f64..=180.0,
            lat2 in -90.0f64..=90.0, lon2 in -180.0f64..=180.0,
        ) {
            let center = p(lat1, lon1);
            let point = p(lat2, lon2);
            let scalar = distance_km(center, point);
            let cached = distance_km_precomp(&CenterTrig::new(center), &PointTrig::new(point));
            prop_assert_eq!(scalar.to_bits(), cached.to_bits());
        }

        #[test]
        fn symmetry(lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
                    lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let ab = distance_km(a, b);
            let ba = distance_km(b, a);
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        #[test]
        fn non_negative_and_bounded(lat1 in -90.0f64..=90.0, lon1 in -180.0f64..=180.0,
                                    lat2 in -90.0f64..=90.0, lon2 in -180.0f64..=180.0) {
            let d = distance_km(p(lat1, lon1), p(lat2, lon2));
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
        }

        #[test]
        fn triangle_inequality(lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
                               lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
                               lat3 in -80.0f64..80.0, lon3 in -170.0f64..170.0) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let c = p(lat3, lon3);
            prop_assert!(distance_km(a, c) <= distance_km(a, b) + distance_km(b, c) + 1e-6);
        }

        #[test]
        fn destination_lands_at_requested_distance(
            lat in -80.0f64..80.0, lon in -170.0f64..170.0,
            bearing in 0.0f64..360.0, dist in 1.0f64..5_000.0,
        ) {
            let origin = p(lat, lon);
            let dest = destination(origin, bearing, dist);
            let measured = distance_km(origin, dest);
            prop_assert!((measured - dist).abs() < 1.0, "{measured} vs {dist}");
        }
    }
}
