//! The synthetic GeoIP database.
//!
//! [`GeoDb::synthesize`] builds, deterministically from a seed, a world
//! model equivalent in shape to the commercial feed the paper used:
//!
//! * every country in the [`crate::country`] registry gets a set of
//!   **cities** scattered around its centroid (more cities for larger
//!   internet populations);
//! * every city hosts one or more **organizations** (web hosters, cloud
//!   providers, data centers, registrars, backbone ASes, ISPs,
//!   enterprises — the victim categories the paper observes in §IV-B);
//! * every organization owns one or two **ASNs** and a handful of IPv4
//!   **prefixes** carved sequentially out of unicast space.
//!
//! [`GeoDb::lookup`] then answers `IP → (country, city, org, ASN,
//! coordinates)` exactly like the NetAcuity service: the coordinates are
//! the owning city's, plus a small per-address deterministic jitter.

use std::collections::HashMap;

use ddos_schema::ip::Prefix;
use ddos_schema::record::Location;
use ddos_schema::{Asn, CityId, CountryCode, IpAddr4, LatLon, OrgId};
use parking_lot::RwLock;

use crate::country::{CountryInfo, COUNTRIES};
use crate::haversine::destination;
use crate::rng::{mix64, mix_f64, SplitMix64};

/// The kind of organization owning an address block.
///
/// §IV-B: "most attacks were aimed towards web hosting services,
/// large-scale cloud providers and data centers, Internet domain
/// registers and backbone autonomous systems".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// Web hosting service.
    WebHosting,
    /// Large-scale cloud provider.
    CloudProvider,
    /// Data center operator.
    DataCenter,
    /// Internet domain registrar.
    DomainRegistrar,
    /// Backbone autonomous system.
    BackboneAs,
    /// Access/eyeball ISP (where most *bots* live).
    Isp,
    /// Generic enterprise network.
    Enterprise,
}

impl OrgKind {
    /// All kinds, for iteration.
    pub const ALL: [OrgKind; 7] = [
        OrgKind::WebHosting,
        OrgKind::CloudProvider,
        OrgKind::DataCenter,
        OrgKind::DomainRegistrar,
        OrgKind::BackboneAs,
        OrgKind::Isp,
        OrgKind::Enterprise,
    ];

    /// Short label used in synthesized organization names.
    pub fn label(self) -> &'static str {
        match self {
            OrgKind::WebHosting => "Host",
            OrgKind::CloudProvider => "Cloud",
            OrgKind::DataCenter => "DC",
            OrgKind::DomainRegistrar => "Registrar",
            OrgKind::BackboneAs => "Backbone",
            OrgKind::Isp => "ISP",
            OrgKind::Enterprise => "Corp",
        }
    }

    /// Whether this kind hosts *infrastructure* (the paper's preferred
    /// victim categories) rather than eyeballs.
    pub fn is_infrastructure(self) -> bool {
        !matches!(self, OrgKind::Isp | OrgKind::Enterprise)
    }
}

/// One synthesized city.
#[derive(Debug, Clone, PartialEq)]
pub struct CityInfo {
    /// Registry id (dense, global).
    pub id: CityId,
    /// Synthesized name, e.g. `"RU-city-03"`.
    pub name: String,
    /// Country the city belongs to.
    pub country: CountryCode,
    /// City coordinates.
    pub coords: LatLon,
}

/// One synthesized organization with its address space.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgInfo {
    /// Registry id (dense, global).
    pub id: OrgId,
    /// Synthesized name, e.g. `"Cloud-DE-017"`.
    pub name: String,
    /// Organization kind.
    pub kind: OrgKind,
    /// Home country.
    pub country: CountryCode,
    /// Home city.
    pub city: CityId,
    /// ASNs announced by the organization (one or two).
    pub asns: Vec<Asn>,
    /// Prefixes owned, each tagged with the announcing ASN.
    pub prefixes: Vec<(Prefix, Asn)>,
}

impl OrgInfo {
    /// Total number of addresses across all prefixes.
    pub fn address_count(&self) -> u64 {
        self.prefixes.iter().map(|(p, _)| p.size()).sum()
    }
}

/// Tuning knobs for world synthesis.
#[derive(Debug, Clone, Copy)]
pub struct GeoConfig {
    /// Seed for all synthesis randomness.
    pub seed: u64,
    /// City count scale: cities ≈ `weight^0.6 * city_scale`, clamped.
    pub city_scale: f64,
    /// Maximum cities per country.
    pub max_cities_per_country: usize,
    /// Maximum extra organizations per city (beyond the guaranteed one).
    pub max_extra_orgs_per_city: usize,
    /// Prefix lengths to draw from when allocating blocks.
    pub prefix_len_range: (u8, u8),
    /// Per-address coordinate jitter radius in kilometers.
    pub jitter_km: f64,
}

impl Default for GeoConfig {
    fn default() -> GeoConfig {
        GeoConfig {
            seed: 0xDD05_6E01,
            city_scale: 7.0,
            max_cities_per_country: 150,
            max_extra_orgs_per_city: 2,
            prefix_len_range: (18, 22),
            // City-level resolution, like commercial GeoIP feeds: every
            // address in a city resolves to the city centroid. This is
            // what makes single-city attack populations *exactly*
            // symmetric under the paper's dispersion metric (the zero
            // spike of Fig. 9). Set non-zero for the jitter ablation.
            jitter_km: 0.0,
        }
    }
}

/// Aggregate statistics of a synthesized world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoDbStats {
    /// Countries in the registry.
    pub countries: usize,
    /// Cities synthesized.
    pub cities: usize,
    /// Organizations synthesized.
    pub organizations: usize,
    /// Distinct ASNs allocated.
    pub asns: usize,
    /// Total addresses allocated to prefixes.
    pub allocated_addresses: u64,
}

/// Per-country slice of the world: indices into the global tables.
#[derive(Debug, Clone, Default)]
struct CountrySlice {
    cities: std::ops::Range<u32>,
    orgs: Vec<u32>,
    /// Cumulative address counts over `orgs` (for weighted sampling).
    org_addr_cumsum: Vec<u64>,
}

/// The synthesized world database.
///
/// Cheap to share: all lookups take `&self`. A small memo cache
/// (`parking_lot::RwLock`) accelerates repeated lookups of hot addresses
/// (bot IPs recur in every hourly snapshot).
#[derive(Debug)]
pub struct GeoDb {
    cities: Vec<CityInfo>,
    orgs: Vec<OrgInfo>,
    by_country: HashMap<CountryCode, CountrySlice>,
    /// Organizations homed in each city (indexed by `CityId`).
    city_orgs: Vec<Vec<u32>>,
    /// Sorted `(block_start, block_end_inclusive, org_index, asn)`.
    ranges: Vec<(u32, u32, u32, Asn)>,
    jitter_km: f64,
    cache: RwLock<HashMap<IpAddr4, Location>>,
}

impl GeoDb {
    /// Builds a world from the country registry, deterministically.
    pub fn synthesize(config: &GeoConfig) -> GeoDb {
        let mut rng = SplitMix64::new(config.seed);
        let mut cities = Vec::new();
        let mut orgs: Vec<OrgInfo> = Vec::new();
        let mut by_country: HashMap<CountryCode, CountrySlice> = HashMap::new();
        let mut ranges = Vec::new();

        // Sequential block allocator over unicast space, skipping the
        // bottom /8 (we start at 1.0.0.0) — enough room for any config.
        let mut next_block: u64 = 1 << 24;
        let mut next_asn: u32 = 1_000;

        for country in COUNTRIES {
            let city_lo = cities.len() as u32;
            let n_cities = ((country.weight.powf(0.6) * config.city_scale).ceil() as usize)
                .clamp(1, config.max_cities_per_country);
            for ci in 0..n_cities {
                let id = CityId(cities.len() as u32);
                // Scatter around the centroid: sub-linear radial falloff
                // keeps most cities near the population center.
                let bearing = rng.next_f64() * 360.0;
                let dist = rng.next_f64().powf(0.7) * country.spread_km;
                let coords = destination(country.centroid, bearing, dist);
                cities.push(CityInfo {
                    id,
                    name: format!("{}-city-{ci:02}", country.code),
                    country: country.code,
                    coords,
                });
            }
            let city_hi = cities.len() as u32;

            let mut slice = CountrySlice {
                cities: city_lo..city_hi,
                ..CountrySlice::default()
            };

            for city_idx in city_lo..city_hi {
                let n_orgs = 1 + rng.next_below(config.max_extra_orgs_per_city as u64 + 1) as usize;
                for _ in 0..n_orgs {
                    let org_id = OrgId(orgs.len() as u32);
                    let kind = Self::pick_kind(&mut rng, country);
                    let n_asns = 1 + rng.next_below(2) as usize;
                    let asns: Vec<Asn> = (0..n_asns)
                        .map(|_| {
                            let a = Asn(next_asn);
                            next_asn += 1;
                            a
                        })
                        .collect();
                    let n_prefixes = 1 + rng.next_below(3) as usize;
                    let mut prefixes = Vec::with_capacity(n_prefixes);
                    for _ in 0..n_prefixes {
                        let (lo, hi) = config.prefix_len_range;
                        let len = lo + rng.next_below(u64::from(hi - lo) + 1) as u8;
                        let size = 1u64 << (32 - len as u32);
                        // Align to the block size and clear every
                        // special-use (bogon) range: a synthetic bot in
                        // 10/8 would be rejected by any real pipeline.
                        let start = crate::reserved::next_clear_block(next_block, size)
                            .expect("address space exhausted; reduce GeoConfig scales");
                        assert!(
                            u64::from(start) + size <= (1u64 << 32) - (1 << 28),
                            "address space exhausted; reduce GeoConfig scales"
                        );
                        let prefix = Prefix::new(IpAddr4(start), len).expect("len within 0..=32");
                        next_block = u64::from(start) + size;
                        let asn = asns[rng.next_below(asns.len() as u64) as usize];
                        ranges.push((prefix.first().value(), prefix.last().value(), org_id.0, asn));
                        prefixes.push((prefix, asn));
                    }
                    orgs.push(OrgInfo {
                        id: org_id,
                        name: format!("{}-{}-{:03}", kind.label(), country.code, org_id.0),
                        kind,
                        country: country.code,
                        city: CityId(city_idx),
                        asns,
                        prefixes,
                    });
                    slice.orgs.push(org_id.0);
                }
            }

            let mut cum = 0u64;
            slice.org_addr_cumsum = slice
                .orgs
                .iter()
                .map(|&oi| {
                    cum += orgs[oi as usize].address_count();
                    cum
                })
                .collect();
            by_country.insert(country.code, slice);
        }

        ranges.sort_unstable_by_key(|r| r.0);
        let mut city_orgs: Vec<Vec<u32>> = vec![Vec::new(); cities.len()];
        for org in &orgs {
            city_orgs[org.city.0 as usize].push(org.id.0);
        }
        GeoDb {
            cities,
            orgs,
            by_country,
            city_orgs,
            ranges,
            jitter_km: config.jitter_km,
            cache: RwLock::new(HashMap::new()),
        }
    }

    fn pick_kind(rng: &mut SplitMix64, country: &CountryInfo) -> OrgKind {
        // Infrastructure concentrates in high-weight countries; eyeball
        // ISPs and enterprises dominate everywhere else.
        let infra_share = if country.weight >= 20.0 { 0.45 } else { 0.20 };
        if rng.next_f64() < infra_share {
            let infra = [
                OrgKind::WebHosting,
                OrgKind::CloudProvider,
                OrgKind::DataCenter,
                OrgKind::DomainRegistrar,
                OrgKind::BackboneAs,
            ];
            infra[rng.next_below(infra.len() as u64) as usize]
        } else if rng.next_f64() < 0.7 {
            OrgKind::Isp
        } else {
            OrgKind::Enterprise
        }
    }

    /// All synthesized cities.
    pub fn cities(&self) -> &[CityInfo] {
        &self.cities
    }

    /// All synthesized organizations.
    pub fn orgs(&self) -> &[OrgInfo] {
        &self.orgs
    }

    /// Cities of one country.
    pub fn cities_in(&self, country: CountryCode) -> &[CityInfo] {
        match self.by_country.get(&country) {
            Some(s) => &self.cities[s.cities.start as usize..s.cities.end as usize],
            None => &[],
        }
    }

    /// Organizations of one country.
    pub fn orgs_in(&self, country: CountryCode) -> impl Iterator<Item = &OrgInfo> + '_ {
        self.by_country
            .get(&country)
            .into_iter()
            .flat_map(move |s| s.orgs.iter().map(move |&i| &self.orgs[i as usize]))
    }

    /// Looks up an organization by id.
    pub fn org(&self, id: OrgId) -> Option<&OrgInfo> {
        self.orgs.get(id.0 as usize)
    }

    /// Looks up a city by id.
    pub fn city(&self, id: CityId) -> Option<&CityInfo> {
        self.cities.get(id.0 as usize)
    }

    /// Resolves an address to its full location, like the commercial feed.
    ///
    /// Returns `None` for unallocated space. Coordinates are the owning
    /// city's plus a deterministic per-address jitter (same address, same
    /// answer — the feed's "real-time" resolution is stable in our world).
    pub fn lookup(&self, ip: IpAddr4) -> Option<Location> {
        if let Some(loc) = self.cache.read().get(&ip) {
            return Some(*loc);
        }
        let idx = self.ranges.partition_point(|r| r.0 <= ip.value());
        let (start, end, org_idx, asn) = *self.ranges.get(idx.checked_sub(1)?)?;
        debug_assert!(start <= ip.value());
        if ip.value() > end {
            return None;
        }
        let org = &self.orgs[org_idx as usize];
        let city = &self.cities[org.city.0 as usize];
        let bearing = mix_f64(u64::from(ip.value()) << 1) * 360.0;
        let dist = mix_f64((u64::from(ip.value()) << 1) | 1) * self.jitter_km;
        let coords = destination(city.coords, bearing, dist);
        let loc = Location {
            country: org.country,
            city: org.city,
            org: org.id,
            asn,
            coords,
        };
        let mut cache = self.cache.write();
        if cache.len() < 1 << 20 {
            cache.insert(ip, loc);
        }
        Some(loc)
    }

    /// Deterministically picks the `k`-th pseudo-random allocated address
    /// of a country (weighted by organization address-space size).
    ///
    /// RNG-agnostic by design: callers supply the randomness as `k`.
    pub fn ip_in_country(&self, country: CountryCode, k: u64) -> Option<IpAddr4> {
        let slice = self.by_country.get(&country)?;
        let total = *slice.org_addr_cumsum.last()?;
        let pick = mix64(k) % total;
        let oi = slice.org_addr_cumsum.partition_point(|&c| c <= pick);
        let org = &self.orgs[slice.orgs[oi] as usize];
        self.ip_in_org_inner(org, mix64(k ^ 0xA5A5_A5A5_A5A5_A5A5))
    }

    /// Deterministically picks the `k`-th pseudo-random address of an
    /// organization.
    pub fn ip_in_org(&self, org: OrgId, k: u64) -> Option<IpAddr4> {
        let org = self.org(org)?;
        self.ip_in_org_inner(org, mix64(k))
    }

    /// Organizations homed in one city.
    pub fn orgs_in_city(&self, city: CityId) -> impl Iterator<Item = &OrgInfo> + '_ {
        self.city_orgs
            .get(city.0 as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.orgs[i as usize])
    }

    /// Deterministically picks the `k`-th pseudo-random address homed in
    /// one city (spreading over the city's organizations).
    ///
    /// The trace generator uses this to build per-city bot populations —
    /// with city-level coordinate resolution, a single-city population is
    /// exactly symmetric under the paper's dispersion metric.
    pub fn ip_in_city(&self, city: CityId, k: u64) -> Option<IpAddr4> {
        let orgs = self.city_orgs.get(city.0 as usize)?;
        if orgs.is_empty() {
            return None;
        }
        let pick = mix64(k);
        let org = &self.orgs[orgs[(pick % orgs.len() as u64) as usize] as usize];
        self.ip_in_org_inner(org, mix64(k ^ 0x5A5A_5A5A_5A5A_5A5A))
    }

    fn ip_in_org_inner(&self, org: &OrgInfo, pick: u64) -> Option<IpAddr4> {
        let total = org.address_count();
        if total == 0 {
            return None;
        }
        let mut offset = pick % total;
        for (prefix, _) in &org.prefixes {
            if offset < prefix.size() {
                return Some(prefix.nth(offset));
            }
            offset -= prefix.size();
        }
        None
    }

    /// Aggregate statistics of the world.
    pub fn stats(&self) -> GeoDbStats {
        let mut asns = std::collections::HashSet::new();
        let mut allocated = 0u64;
        for org in &self.orgs {
            asns.extend(org.asns.iter().copied());
            allocated += org.address_count();
        }
        GeoDbStats {
            countries: COUNTRIES.len(),
            cities: self.cities.len(),
            organizations: self.orgs.len(),
            asns: asns.len(),
            allocated_addresses: allocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country;
    use crate::haversine::distance_km;

    fn small_db() -> GeoDb {
        GeoDb::synthesize(&GeoConfig {
            city_scale: 1.0,
            max_cities_per_country: 5,
            ..GeoConfig::default()
        })
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = small_db();
        let b = small_db();
        assert_eq!(a.cities(), b.cities());
        assert_eq!(a.orgs(), b.orgs());
    }

    #[test]
    fn different_seed_changes_world() {
        let a = small_db();
        let b = GeoDb::synthesize(&GeoConfig {
            seed: 999,
            city_scale: 1.0,
            max_cities_per_country: 5,
            ..GeoConfig::default()
        });
        assert_ne!(a.cities(), b.cities());
    }

    #[test]
    fn every_country_has_cities_and_orgs() {
        let db = small_db();
        for c in COUNTRIES {
            assert!(!db.cities_in(c.code).is_empty(), "{} has no cities", c.code);
            assert!(
                db.orgs_in(c.code).next().is_some(),
                "{} has no orgs",
                c.code
            );
        }
    }

    #[test]
    fn cities_stay_near_their_country() {
        let db = small_db();
        for city in db.cities() {
            let info = country::lookup(city.country).unwrap();
            let d = distance_km(info.centroid, city.coords);
            assert!(
                d <= info.spread_km + 1.0,
                "{} at {d} km from {} centroid (spread {})",
                city.name,
                city.country,
                info.spread_km
            );
        }
    }

    #[test]
    fn lookup_resolves_own_prefixes() {
        let db = small_db();
        for org in db.orgs().iter().take(200) {
            let ip = db.ip_in_org(org.id, 42).unwrap();
            let loc = db.lookup(ip).unwrap();
            assert_eq!(loc.org, org.id);
            assert_eq!(loc.country, org.country);
            assert_eq!(loc.city, org.city);
            assert!(org.asns.contains(&loc.asn));
        }
    }

    #[test]
    fn lookup_is_stable_and_cached() {
        let db = small_db();
        let ip = db.ip_in_country(CountryCode::literal("US"), 7).unwrap();
        let a = db.lookup(ip).unwrap();
        let b = db.lookup(ip).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_misses_unallocated_space() {
        let db = small_db();
        // 0.0.0.0/24 and the top of the space are never allocated.
        assert!(db.lookup(IpAddr4(0)).is_none());
        assert!(db.lookup(IpAddr4(u32::MAX)).is_none());
    }

    #[test]
    fn ip_in_country_lands_in_country() {
        let db = small_db();
        for code in ["US", "RU", "CN", "BW", "UY"] {
            let cc: CountryCode = code.parse().unwrap();
            for k in 0..50 {
                let ip = db.ip_in_country(cc, k).unwrap();
                let loc = db.lookup(ip).unwrap();
                assert_eq!(loc.country, cc, "k={k} ip={ip}");
            }
        }
    }

    #[test]
    fn ip_sampling_spreads_over_orgs() {
        let db = small_db();
        let cc: CountryCode = "US".parse().unwrap();
        let mut orgs = std::collections::HashSet::new();
        for k in 0..300 {
            let ip = db.ip_in_country(cc, k).unwrap();
            orgs.insert(db.lookup(ip).unwrap().org);
        }
        assert!(orgs.len() > 3, "only {} orgs sampled", orgs.len());
    }

    #[test]
    fn jitter_stays_small() {
        let db = small_db();
        let cc: CountryCode = "DE".parse().unwrap();
        for k in 0..50 {
            let ip = db.ip_in_country(cc, k).unwrap();
            let loc = db.lookup(ip).unwrap();
            let city = db.city(loc.city).unwrap();
            let d = distance_km(city.coords, loc.coords);
            assert!(d <= 25.0 + 1e-6, "jitter {d} km");
        }
    }

    #[test]
    fn default_world_is_big_enough_for_the_paper() {
        let db = GeoDb::synthesize(&GeoConfig::default());
        let stats = db.stats();
        // Paper-side requirements: 2,897 attacker cities, 3,498 attacker
        // orgs, 3,973 attacker ASNs must be *reachable* (observed counts
        // are emergent and ≤ these capacities).
        assert!(stats.cities >= 2_897, "cities {}", stats.cities);
        assert!(stats.organizations >= 3_498, "orgs {}", stats.organizations);
        assert!(stats.asns >= 3_973, "asns {}", stats.asns);
        assert!(stats.countries >= 186);
    }

    #[test]
    fn ip_in_city_resolves_back_to_city() {
        let db = small_db();
        let city = db.cities_in(CountryCode::literal("RU"))[0].id;
        for k in 0..40 {
            let ip = db.ip_in_city(city, k).unwrap();
            let loc = db.lookup(ip).unwrap();
            assert_eq!(loc.city, city, "k={k}");
            // City-level resolution: coordinates are exactly the city's.
            assert_eq!(loc.coords, db.city(city).unwrap().coords);
        }
        assert!(db.ip_in_city(CityId(u32::MAX), 0).is_none());
    }

    #[test]
    fn orgs_in_city_belong_to_city() {
        let db = small_db();
        let city = db.cities_in(CountryCode::literal("US"))[0].id;
        let mut n = 0;
        for org in db.orgs_in_city(city) {
            assert_eq!(org.city, city);
            n += 1;
        }
        assert!(n >= 1);
    }

    #[test]
    fn no_allocation_touches_reserved_space() {
        let db = small_db();
        for org in db.orgs() {
            for (prefix, _) in &org.prefixes {
                assert!(
                    !crate::reserved::block_overlaps_reserved(
                        prefix.first().value(),
                        prefix.size()
                    ),
                    "{} of {} overlaps a bogon range",
                    prefix,
                    org.name
                );
            }
        }
    }

    #[test]
    fn ranges_do_not_overlap() {
        let db = small_db();
        for w in db.ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }
}
