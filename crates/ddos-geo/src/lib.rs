//! Synthetic geolocation substrate.
//!
//! The paper resolves every bot and victim address through a commercial
//! geolocation service (Digital Envoy's NetAcuity, §II-C) that yields
//! country, city, organization, ASN, and coordinates per IP. That service
//! and its database are proprietary, so this crate provides a faithful
//! *synthetic* replacement:
//!
//! * [`country`] — a registry of 195 countries with ISO 3166-1 alpha-2
//!   codes, approximate centroids, geographic spread, and an
//!   internet-population weight used by the trace generator;
//! * [`geodb`] — a deterministic, seedable world model that synthesizes
//!   cities, organizations, ASNs, and IPv4 prefix allocations per country
//!   and answers `IP → (country, city, org, ASN, lat/lon)` lookups exactly
//!   like the commercial feed;
//! * [`haversine`] — great-circle distances (the paper computes bot-to-
//!   center distances "using Haversine formula", §IV-A);
//! * [`center`] — geographic centers and the paper's **signed dispersion
//!   metric**: the absolute value of the sum of signed distances from each
//!   bot to the population's geographic center, where east/north of the
//!   center counts positive and west/south negative, so a geographically
//!   symmetric botnet scores zero.
//!
//! Determinism matters: the same seed always produces the same world, so
//! experiments are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod center;
pub mod country;
pub mod geodb;
pub mod haversine;
pub mod reserved;
mod rng;
pub mod trig;

pub use center::{
    dispersion, dispersion_precomp, dispersion_precomp_indexed, dispersion_precomp_indexed_counted,
    dispersion_precomp_indexed_presummed, geographic_center, geographic_center_precomp,
    mean_distance_km, signed_distance_km, signed_distance_km_precomp, CenterSum, Dispersion,
    KernelCounters,
};
pub use country::{CountryInfo, COUNTRIES};
pub use geodb::{CityInfo, GeoConfig, GeoDb, OrgInfo, OrgKind};
pub use haversine::{distance_km, distance_km_precomp, EARTH_RADIUS_KM};
pub use reserved::is_reserved;
pub use trig::{CenterTrig, PointTrig};
