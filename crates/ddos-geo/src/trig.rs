//! Precomputed trigonometry for the dispersion kernels.
//!
//! The dispersion metric (§IV-A) evaluates `sin`/`cos` of every
//! participating bot's coordinates twice per snapshot — once for the
//! geographic center, once inside the haversine — and the same bot
//! participates in hundreds of attacks across a trace. [`PointTrig`]
//! caches every per-point trigonometric quantity those kernels read, so
//! each bot's trigonometry is computed once per *trace* instead of once
//! per attack-participation. [`CenterTrig`] does the same for the
//! center side of a distance batch, which is constant across one
//! snapshot's inner loop.
//!
//! # Bit-exactness
//!
//! Every cached field is produced by exactly the expression the scalar
//! kernels in [`crate::center`] and [`crate::haversine`] evaluate
//! inline (`lat.to_radians().cos()` and so on). IEEE-754 operations are
//! deterministic, so the `*_precomp` kernels consuming these caches are
//! **bit-identical** to their scalar counterparts — the pipeline
//! equivalence suite and the property tests in `center` rely on this.

use ddos_schema::LatLon;

/// Per-point precomputed trigonometry: everything the center and
/// signed-distance kernels need about one coordinate.
///
/// Six fields (48 bytes), not eight: the radian values are a single
/// exact multiply (`to_radians`) away from the degree fields, so
/// caching them would only fatten the column the hot gather loop reads
/// — consumers recompute them inline, bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointTrig {
    /// Latitude in degrees (sign rule and `to_radians` input).
    pub lat: f64,
    /// Longitude in degrees (sign rule and `to_radians` input).
    pub lon: f64,
    /// `sin(lat_rad)` — the center kernel's z component.
    pub sin_lat: f64,
    /// `cos(lat_rad)` — shared by the center and haversine kernels.
    pub cos_lat: f64,
    /// `sin(lon_rad)` — the center kernel's y factor.
    pub sin_lon: f64,
    /// `cos(lon_rad)` — the center kernel's x factor.
    pub cos_lon: f64,
}

impl PointTrig {
    /// Precomputes the trigonometry of one point.
    ///
    /// Uses the fused `sin_cos` — glibc computes both from the same
    /// argument reduction, bit-identical to separate `sin`/`cos` calls
    /// (the unit test and the `center` property tests assert this).
    pub fn new(p: LatLon) -> PointTrig {
        let (sin_lat, cos_lat) = p.lat_rad().sin_cos();
        let (sin_lon, cos_lon) = p.lon_rad().sin_cos();
        PointTrig {
            lat: p.lat,
            lon: p.lon,
            sin_lat,
            cos_lat,
            sin_lon,
            cos_lon,
        }
    }

    /// Latitude in radians — the exact expression [`LatLon::lat_rad`]
    /// evaluates, recomputed instead of cached.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians — the exact expression [`LatLon::lon_rad`]
    /// evaluates, recomputed instead of cached.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// The original coordinate pair.
    #[inline]
    pub fn point(&self) -> LatLon {
        LatLon::new_unchecked(self.lat, self.lon)
    }
}

impl From<LatLon> for PointTrig {
    fn from(p: LatLon) -> PointTrig {
        PointTrig::new(p)
    }
}

/// Center-side precomputation for a batch of distances from one center:
/// the center's radians and `cos(lat)` are hoisted out of the per-point
/// loop (the scalar path recomputes them for every point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenterTrig {
    /// Center latitude in degrees (sign rule input).
    pub lat: f64,
    /// Center longitude in degrees (sign rule input).
    pub lon: f64,
    /// Center latitude in radians.
    pub lat_rad: f64,
    /// Center longitude in radians.
    pub lon_rad: f64,
    /// `cos(lat_rad)` of the center.
    pub cos_lat: f64,
}

impl CenterTrig {
    /// Precomputes the center-side trigonometry.
    pub fn new(c: LatLon) -> CenterTrig {
        let lat_rad = c.lat_rad();
        CenterTrig {
            lat: c.lat,
            lon: c.lon,
            lat_rad,
            lon_rad: c.lon_rad(),
            cos_lat: lat_rad.cos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_fields_match_inline_expressions() {
        let p = LatLon::new(55.7558, 37.6173).unwrap();
        let t = PointTrig::new(p);
        assert_eq!(t.lat_rad().to_bits(), p.lat_rad().to_bits());
        assert_eq!(t.lon_rad().to_bits(), p.lon_rad().to_bits());
        assert_eq!(t.sin_lat.to_bits(), p.lat_rad().sin().to_bits());
        assert_eq!(t.cos_lat.to_bits(), p.lat_rad().cos().to_bits());
        assert_eq!(t.sin_lon.to_bits(), p.lon_rad().sin().to_bits());
        assert_eq!(t.cos_lon.to_bits(), p.lon_rad().cos().to_bits());
        assert_eq!(t.point(), p);
        assert_eq!(PointTrig::from(p), t);

        let c = CenterTrig::new(p);
        assert_eq!(c.cos_lat.to_bits(), p.lat_rad().cos().to_bits());
        assert_eq!(c.lat, p.lat);
        assert_eq!(c.lon, p.lon);
    }
}
