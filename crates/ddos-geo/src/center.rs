//! Geographic centers and the paper's signed dispersion metric.
//!
//! §IV-A of the paper: *"First, we find the geological center point of the
//! various locations of IP addresses at any time. Then, we calculate the
//! distance between each bot and this center point (using Haversine
//! formula), and add the distances together. In our analysis, the distance
//! has a sign to indicate direction: positive indicates east or north, and
//! negative indicates west and south. For simplicity, we consider the
//! absolute value of the sum of all distances; a sum of zero means that
//! participating bots are geographically symmetric."*
//!
//! The sign rule as stated is ambiguous for the northwest and southeast
//! quadrants; we resolve it deterministically: the sign is taken from the
//! **longitude** offset when the point is not due north/south of the
//! center, and from the latitude offset otherwise. This preserves the
//! property the paper relies on — east/west-symmetric populations cancel
//! to zero — and is documented here so results are reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

use ddos_schema::LatLon;
use serde::{Deserialize, Serialize};

use crate::haversine::{distance_km, distance_km_precomp};
use crate::trig::{CenterTrig, PointTrig};

/// Geographic center (spherical centroid) of a set of points.
///
/// Computed as the normalized mean of the 3-D unit vectors of all points.
/// Returns `None` for an empty set or when the vectors cancel exactly
/// (e.g. two antipodal points), in which case no meaningful center exists.
pub fn geographic_center(points: &[LatLon]) -> Option<LatLon> {
    if points.is_empty() {
        return None;
    }
    let (mut x, mut y, mut z) = (0.0f64, 0.0f64, 0.0f64);
    for pnt in points {
        let lat = pnt.lat_rad();
        let lon = pnt.lon_rad();
        x += lat.cos() * lon.cos();
        y += lat.cos() * lon.sin();
        z += lat.sin();
    }
    let n = points.len() as f64;
    let (x, y, z) = (x / n, y / n, z / n);
    let norm = (x * x + y * y + z * z).sqrt();
    if norm < 1e-12 {
        return None;
    }
    let lat = (z / norm).clamp(-1.0, 1.0).asin().to_degrees();
    let lon = y.atan2(x).to_degrees();
    Some(LatLon::new_unchecked(lat.clamp(-90.0, 90.0), lon))
}

/// [`geographic_center`] over a precomputed trig batch.
///
/// The accumulation evaluates exactly the scalar kernel's expressions
/// (`cos(lat)·cos(lon)`, `cos(lat)·sin(lon)`, `sin(lat)`, summed in
/// slice order), so the result is bit-identical. The loop body is pure
/// multiply-add over contiguous columns, so LLVM can unroll and
/// vectorize the three accumulations.
pub fn geographic_center_precomp(points: &[PointTrig]) -> Option<LatLon> {
    if points.is_empty() {
        return None;
    }
    let (mut x, mut y, mut z) = (0.0f64, 0.0f64, 0.0f64);
    for p in points {
        x += p.cos_lat * p.cos_lon;
        y += p.cos_lat * p.sin_lon;
        z += p.sin_lat;
    }
    let n = points.len() as f64;
    let (x, y, z) = (x / n, y / n, z / n);
    let norm = (x * x + y * y + z * z).sqrt();
    if norm < 1e-12 {
        return None;
    }
    let lat = (z / norm).clamp(-1.0, 1.0).asin().to_degrees();
    let lon = y.atan2(x).to_degrees();
    Some(LatLon::new_unchecked(lat.clamp(-90.0, 90.0), lon))
}

/// Signed haversine distance from `center` to `point`, in kilometers.
///
/// The magnitude is the great-circle distance; the sign follows the
/// paper's convention (positive = east/north of the center, negative =
/// west/south), resolved by longitude first and latitude on ties. Exactly
/// coincident points yield `+0.0`.
pub fn signed_distance_km(center: LatLon, point: LatLon) -> f64 {
    let d = distance_km(center, point);
    // Longitude offset normalized to (-180, 180].
    let mut dlon = point.lon - center.lon;
    if dlon > 180.0 {
        dlon -= 360.0;
    } else if dlon <= -180.0 {
        dlon += 360.0;
    }
    let sign = if dlon.abs() > 1e-9 {
        dlon.signum()
    } else {
        let dlat = point.lat - center.lat;
        if dlat.abs() > 1e-9 {
            dlat.signum()
        } else {
            1.0
        }
    };
    sign * d
}

/// [`signed_distance_km`] over precomputed trigonometry.
///
/// Magnitude from [`distance_km_precomp`]; the sign rule reads the
/// cached degree fields, evaluating exactly the scalar expressions.
#[inline]
pub fn signed_distance_km_precomp(center: &CenterTrig, point: &PointTrig) -> f64 {
    let d = distance_km_precomp(center, point);
    // Longitude offset normalized to (-180, 180].
    let mut dlon = point.lon - center.lon;
    if dlon > 180.0 {
        dlon -= 360.0;
    } else if dlon <= -180.0 {
        dlon += 360.0;
    }
    let sign = if dlon.abs() > 1e-9 {
        dlon.signum()
    } else {
        let dlat = point.lat - center.lat;
        if dlat.abs() > 1e-9 {
            dlat.signum()
        } else {
            1.0
        }
    };
    sign * d
}

/// Plain (unsigned) mean distance from the center, in kilometers.
///
/// Not the paper's metric — kept for the ablation bench that contrasts
/// the signed-sum dispersion (which has a zero mode for symmetric
/// populations, Fig. 9) against a conventional spread measure (which does
/// not).
pub fn mean_distance_km(points: &[LatLon]) -> Option<f64> {
    let center = geographic_center(points)?;
    let sum: f64 = points.iter().map(|&p| distance_km(center, p)).sum();
    Some(sum / points.len() as f64)
}

/// Result of the paper's dispersion computation over one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dispersion {
    /// Geographic center of the population.
    pub center: LatLon,
    /// Raw signed sum of distances (kilometers; cancels for symmetric
    /// populations).
    pub signed_sum_km: f64,
    /// Number of points that contributed.
    pub count: usize,
}

impl Dispersion {
    /// The paper's headline value: `|signed_sum_km|`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.signed_sum_km.abs()
    }

    /// Whether the population is geographically symmetric under the
    /// paper's metric (sum within `tol_km` of zero).
    pub fn is_symmetric(&self, tol_km: f64) -> bool {
        self.signed_sum_km.abs() <= tol_km
    }
}

/// Computes the paper's dispersion metric for a set of bot locations.
///
/// Returns `None` when no center exists (empty or degenerate set).
pub fn dispersion(points: &[LatLon]) -> Option<Dispersion> {
    let center = geographic_center(points)?;
    let signed_sum_km: f64 = points.iter().map(|&p| signed_distance_km(center, p)).sum();
    Some(Dispersion {
        center,
        signed_sum_km,
        count: points.len(),
    })
}

/// [`dispersion`] over a precomputed trig batch — the hot kernel of the
/// analysis context build. One snapshot costs one center pass plus one
/// signed-distance pass over the slice; all per-point trigonometry
/// comes from the cache.
///
/// Bit-identical to `dispersion(&points.map(PointTrig::point))`: the
/// center accumulation, the per-point distances, and the signed sum all
/// evaluate the scalar kernels' exact expressions in the same order
/// (the property tests below assert this on arbitrary point sets).
pub fn dispersion_precomp(points: &[PointTrig]) -> Option<Dispersion> {
    let center = geographic_center_precomp(points)?;
    let ct = CenterTrig::new(center);
    let mut signed_sum_km = 0.0f64;
    for p in points {
        signed_sum_km += signed_distance_km_precomp(&ct, p);
    }
    Some(Dispersion {
        center,
        signed_sum_km,
        count: points.len(),
    })
}

/// [`dispersion_precomp`] over *rows of a shared trig column* instead
/// of a gathered slice: `rows[i]` indexes `col`, and the computation
/// visits rows in list order.
///
/// This lets a caller that already holds point ids skip materializing
/// a `PointTrig` buffer per snapshot — the center pass pulls each row
/// into cache and the distance pass re-reads it hot. Bit-identical to
/// `dispersion_precomp(&rows.map(|r| col[r]).collect())`: identical
/// expressions evaluated in identical order, only the load addresses
/// differ (the property test below asserts this).
///
/// # Panics
/// If any row index is out of bounds for `col`.
pub fn dispersion_precomp_indexed(col: &[PointTrig], rows: &[u32]) -> Option<Dispersion> {
    let mut sum = CenterSum::default();
    for &r in rows {
        sum.push(&col[r as usize]);
    }
    finish_presummed(col, rows, sum)
}

/// Running three-component center sum — the first pass of
/// [`dispersion_precomp_indexed`] exposed as a fold, so a caller can
/// fuse it element-for-element with another sweep over the same rows
/// (the analysis context's family resolver folds its weekly-population
/// stamping into the same loop). Push order must be row-list order;
/// [`dispersion_precomp_indexed_presummed`] then consumes the sum with
/// the one-call kernel's exact expressions, so a fused caller stays
/// bit-identical to the one-call path.
#[derive(Debug, Default, Clone, Copy)]
pub struct CenterSum {
    x: f64,
    y: f64,
    z: f64,
}

impl CenterSum {
    /// Folds one point into the center sum.
    #[inline]
    pub fn push(&mut self, p: &PointTrig) {
        self.x += p.cos_lat * p.cos_lon;
        self.y += p.cos_lat * p.sin_lon;
        self.z += p.sin_lat;
    }
}

/// The shared second half of the indexed kernels: resolve the center
/// from the folded sum, then the signed-distance pass over the rows.
fn finish_presummed(col: &[PointTrig], rows: &[u32], sum: CenterSum) -> Option<Dispersion> {
    if rows.is_empty() {
        return None;
    }
    let n = rows.len() as f64;
    let (x, y, z) = (sum.x / n, sum.y / n, sum.z / n);
    let norm = (x * x + y * y + z * z).sqrt();
    if norm < 1e-12 {
        return None;
    }
    let lat = (z / norm).clamp(-1.0, 1.0).asin().to_degrees();
    let lon = y.atan2(x).to_degrees();
    let center = LatLon::new_unchecked(lat.clamp(-90.0, 90.0), lon);
    let ct = CenterTrig::new(center);
    let mut signed_sum_km = 0.0f64;
    for &r in rows {
        signed_sum_km += signed_distance_km_precomp(&ct, &col[r as usize]);
    }
    Some(Dispersion {
        center,
        signed_sum_km,
        count: rows.len(),
    })
}

/// Relaxed-atomic tallies of dispersion-kernel work, safe to share
/// across the context build's worker threads. An observability layer
/// (the pipeline's `ddos-obs` run telemetry) folds these into its
/// metrics after the build; the kernels themselves never read them, so
/// counting cannot perturb a result.
#[derive(Debug, Default)]
pub struct KernelCounters {
    snapshots: AtomicU64,
    points: AtomicU64,
    degenerate: AtomicU64,
}

impl KernelCounters {
    /// Snapshot evaluations tallied so far.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Point (bot-participation) reads tallied so far.
    pub fn points(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// Snapshots that produced no dispersion (empty or degenerate set).
    pub fn degenerate(&self) -> u64 {
        self.degenerate.load(Ordering::Relaxed)
    }
}

/// [`dispersion_precomp_indexed`] with work tallied into `counters` —
/// two relaxed atomic adds per snapshot (three for the degenerate
/// case), cheap enough for the hot path. The returned value is the
/// uncounted kernel's verbatim.
#[inline]
pub fn dispersion_precomp_indexed_counted(
    col: &[PointTrig],
    rows: &[u32],
    counters: &KernelCounters,
) -> Option<Dispersion> {
    counters.snapshots.fetch_add(1, Ordering::Relaxed);
    counters
        .points
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    let d = dispersion_precomp_indexed(col, rows);
    if d.is_none() {
        counters.degenerate.fetch_add(1, Ordering::Relaxed);
    }
    d
}

/// [`dispersion_precomp_indexed_counted`] for a caller that already
/// folded the center pass into its own sweep over `rows` (as a
/// [`CenterSum`]): runs the remaining center resolution and the
/// signed-distance pass, tallying the same counters. Bit-identical to
/// the one-call kernel when the sum was pushed in row-list order.
pub fn dispersion_precomp_indexed_presummed(
    col: &[PointTrig],
    rows: &[u32],
    sum: CenterSum,
    counters: &KernelCounters,
) -> Option<Dispersion> {
    counters.snapshots.fetch_add(1, Ordering::Relaxed);
    counters
        .points
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    let d = finish_presummed(col, rows, sum);
    if d.is_none() {
        counters.degenerate.fetch_add(1, Ordering::Relaxed);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn center_of_empty_is_none() {
        assert!(geographic_center(&[]).is_none());
        assert!(dispersion(&[]).is_none());
        assert!(mean_distance_km(&[]).is_none());
    }

    #[test]
    fn center_of_single_point_is_itself() {
        let moscow = p(55.7558, 37.6173);
        let c = geographic_center(&[moscow]).unwrap();
        assert!(distance_km(c, moscow) < 0.01);
    }

    #[test]
    fn center_of_symmetric_pair_is_midpoint() {
        let a = p(10.0, 20.0);
        let b = p(10.0, 40.0);
        let c = geographic_center(&[a, b]).unwrap();
        assert!((c.lon - 30.0).abs() < 0.1, "lon {}", c.lon);
        // Great-circle midpoint of an east-west pair bulges poleward of
        // the parallel, so only check it stays between the longitudes.
        assert!(c.lat > 9.9, "lat {}", c.lat);
    }

    #[test]
    fn antipodal_pair_has_no_center() {
        assert!(geographic_center(&[p(0.0, 90.0), p(0.0, -90.0)]).is_none());
    }

    #[test]
    fn signed_distance_signs() {
        let center = p(50.0, 30.0);
        assert!(signed_distance_km(center, p(50.0, 40.0)) > 0.0, "east");
        assert!(signed_distance_km(center, p(50.0, 20.0)) < 0.0, "west");
        assert!(signed_distance_km(center, p(60.0, 30.0)) > 0.0, "north");
        assert!(signed_distance_km(center, p(40.0, 30.0)) < 0.0, "south");
        assert_eq!(signed_distance_km(center, center), 0.0);
    }

    #[test]
    fn signed_distance_wraps_dateline() {
        let center = p(0.0, 179.0);
        // 179E -> -179 (181E) is 2 degrees *east* across the dateline.
        assert!(signed_distance_km(center, p(0.0, -179.0)) > 0.0);
        assert!(signed_distance_km(center, p(0.0, 177.0)) < 0.0);
    }

    #[test]
    fn symmetric_population_cancels_to_zero() {
        // Four points symmetric east-west around 30E on the equator-ish
        // parallel: the signed contributions cancel.
        let pts = [p(20.0, 20.0), p(20.0, 40.0), p(25.0, 25.0), p(25.0, 35.0)];
        let d = dispersion(&pts).unwrap();
        assert!(d.value() < 30.0, "signed sum {}", d.signed_sum_km);
        assert!(d.is_symmetric(30.0));
        // The conventional mean distance is decidedly non-zero.
        let mean = mean_distance_km(&pts).unwrap();
        assert!(mean > 300.0, "mean distance {mean}");
    }

    #[test]
    fn lopsided_population_scores_high() {
        // The signed sum cancels to first order around the centroid, so
        // large dispersions need the *latitude* component of the distance
        // to correlate with the east/west sign — here an east-west pair
        // straddles the center while a third point sits far due north
        // (sign from latitude, full magnitude counted).
        let pts = [p(0.0, 0.0), p(0.0, 10.0), p(40.0, 5.0)];
        let d = dispersion(&pts).unwrap();
        assert!(d.value() > 1_500.0, "dispersion {}", d.value());
    }

    #[test]
    fn dispersion_counts_points() {
        let pts = [p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)];
        assert_eq!(dispersion(&pts).unwrap().count, 3);
    }

    #[test]
    fn counted_kernel_is_verbatim_and_tallies() {
        let col: Vec<PointTrig> = [p(10.0, 20.0), p(-5.0, 40.0), p(55.0, 37.0)]
            .iter()
            .map(|&q| PointTrig::new(q))
            .collect();
        let counters = KernelCounters::default();
        let rows = [0u32, 2, 1, 0];
        let counted = dispersion_precomp_indexed_counted(&col, &rows, &counters);
        let plain = dispersion_precomp_indexed(&col, &rows);
        assert_eq!(
            counted.map(|d| d.signed_sum_km.to_bits()),
            plain.map(|d| d.signed_sum_km.to_bits())
        );
        assert_eq!(counters.snapshots(), 1);
        assert_eq!(counters.points(), 4);
        assert_eq!(counters.degenerate(), 0);
        // Empty row list: degenerate, still one snapshot, zero points.
        assert!(dispersion_precomp_indexed_counted(&col, &[], &counters).is_none());
        assert_eq!(counters.snapshots(), 2);
        assert_eq!(counters.points(), 4);
        assert_eq!(counters.degenerate(), 1);
    }

    proptest! {
        #[test]
        fn center_minimizes_roughly(lats in proptest::collection::vec(-60.0f64..60.0, 2..20),
                                    lons in proptest::collection::vec(-60.0f64..60.0, 2..20)) {
            let n = lats.len().min(lons.len());
            let pts: Vec<LatLon> = (0..n).map(|i| p(lats[i], lons[i])).collect();
            let c = geographic_center(&pts).unwrap();
            // Every point is within the max pairwise distance of the center.
            let max_pair = pts.iter().flat_map(|a| pts.iter().map(move |b| distance_km(*a, *b)))
                .fold(0.0f64, f64::max);
            for q in &pts {
                prop_assert!(distance_km(c, *q) <= max_pair + 1e-6);
            }
        }

        #[test]
        fn precomp_dispersion_is_bit_identical(
            lats in proptest::collection::vec(-90.0f64..=90.0, 0..40),
            lons in proptest::collection::vec(-180.0f64..=180.0, 0..40),
        ) {
            let n = lats.len().min(lons.len());
            let pts: Vec<LatLon> = (0..n).map(|i| p(lats[i], lons[i])).collect();
            let trig: Vec<PointTrig> = pts.iter().map(|&q| PointTrig::new(q)).collect();
            let scalar_center = geographic_center(&pts);
            let cached_center = geographic_center_precomp(&trig);
            prop_assert_eq!(
                scalar_center.map(|c| (c.lat.to_bits(), c.lon.to_bits())),
                cached_center.map(|c| (c.lat.to_bits(), c.lon.to_bits()))
            );
            let scalar = dispersion(&pts);
            let cached = dispersion_precomp(&trig);
            prop_assert_eq!(scalar.is_some(), cached.is_some());
            if let (Some(s), Some(c)) = (scalar, cached) {
                prop_assert_eq!(s.signed_sum_km.to_bits(), c.signed_sum_km.to_bits());
                prop_assert_eq!(s.center.lat.to_bits(), c.center.lat.to_bits());
                prop_assert_eq!(s.center.lon.to_bits(), c.center.lon.to_bits());
                prop_assert_eq!(s.count, c.count);
            }
        }

        #[test]
        fn indexed_dispersion_is_bit_identical(
            lats in proptest::collection::vec(-90.0f64..=90.0, 1..24),
            lons in proptest::collection::vec(-180.0f64..=180.0, 1..24),
            picks in proptest::collection::vec(0usize..1024, 0..64),
        ) {
            // A column of distinct points and an arbitrary row list
            // (duplicates and any order allowed).
            let n = lats.len().min(lons.len());
            let col: Vec<PointTrig> =
                (0..n).map(|i| PointTrig::new(p(lats[i], lons[i]))).collect();
            let rows: Vec<u32> = picks.iter().map(|&k| (k % n) as u32).collect();
            let gathered: Vec<PointTrig> =
                rows.iter().map(|&r| col[r as usize]).collect();
            let a = dispersion_precomp(&gathered);
            let b = dispersion_precomp_indexed(&col, &rows);
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert_eq!(a.signed_sum_km.to_bits(), b.signed_sum_km.to_bits());
                prop_assert_eq!(a.center.lat.to_bits(), b.center.lat.to_bits());
                prop_assert_eq!(a.center.lon.to_bits(), b.center.lon.to_bits());
                prop_assert_eq!(a.count, b.count);
            }
        }

        #[test]
        fn precomp_signed_distance_is_bit_identical(
            lat1 in -90.0f64..=90.0, lon1 in -180.0f64..=180.0,
            lat2 in -90.0f64..=90.0, lon2 in -180.0f64..=180.0,
        ) {
            let center = p(lat1, lon1);
            let point = p(lat2, lon2);
            let scalar = signed_distance_km(center, point);
            let cached =
                signed_distance_km_precomp(&CenterTrig::new(center), &PointTrig::new(point));
            prop_assert_eq!(scalar.to_bits(), cached.to_bits());
        }

        #[test]
        fn mirrored_points_are_symmetric(lat in -60.0f64..60.0, lon in 1.0f64..60.0) {
            // A pair mirrored east-west about the prime meridian at the
            // same latitude must cancel almost exactly.
            let pts = [p(lat, lon), p(lat, -lon)];
            let d = dispersion(&pts).unwrap();
            prop_assert!(d.value() < 1.0, "sum {}", d.signed_sum_km);
        }
    }
}
