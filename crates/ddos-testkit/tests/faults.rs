//! Fault-injection conformance: every named failpoint must surface as
//! `Err` (never a panic), and retrying without the fault must
//! reproduce the golden result.
//!
//! The whole suite is gated on `debug_assertions` because the seam is
//! compiled out of release builds (`ddos_failpoints::ACTIVE`) — which
//! the release-inertness test at the bottom pins from both sides.
#![cfg(debug_assertions)]

use ddos_analytics::{Analysis, IncrementalPipeline, PipelineError, PipelineOptions, StreamFold};
use ddos_obs::Obs;
use ddos_schema::{framed, Seconds};
use ddos_testkit::failpoints::{names, FailPlan, ACTIVE};
use ddos_testkit::{golden_digest, inject_and_recover, report_digest, small_dataset};

const WEEK: Seconds = Seconds(7 * 24 * 3600);

fn serial() -> PipelineOptions {
    PipelineOptions::new().parallel(false)
}

/// The blanket contract, at every named failpoint: injected fault ⇒
/// `Err` naming the failpoint, retry ⇒ byte-identical clean result.
#[test]
fn every_failpoint_errors_and_recovers() {
    let ds = small_dataset();
    for name in names::ALL {
        inject_and_recover(name, ds).unwrap_or_else(|e| panic!("failpoint `{name}`: {e}"));
    }
}

/// A mid-stream frame fault (not just the first frame) still errors
/// cleanly on both the serial and the worker decode paths.
#[test]
fn mid_frame_faults_error_on_both_decode_paths() {
    let ds = small_dataset();
    let bytes = framed::encode_with(ds, 64);
    for workers in [1, 4] {
        let _scope = FailPlan::new()
            .fail_nth(names::INGEST_FRAMED_FRAME, 3)
            .install();
        let err =
            framed::decode_with_workers(&bytes, workers).expect_err("mid-frame fault must surface");
        assert!(
            err.to_string()
                .contains("injected fault at ingest/framed/frame"),
            "unexpected error: {err}"
        );
    }
    // And the retry decodes the identical dataset.
    let clean = framed::decode(&bytes).expect("clean decode");
    assert_eq!(
        report_digest(&Analysis::new(&clean).parallel(false).run()),
        golden_digest()
    );
}

/// The incremental pipeline's strongest recovery property: an
/// `epoch/merge` abort is checked before any state is consumed, so the
/// *same* pipeline retries the same epoch in place and still converges
/// to the golden report.
#[test]
fn incremental_append_retries_in_place_after_merge_fault() {
    let ds = small_dataset();
    let mut pipe = IncrementalPipeline::new(ds, serial(), WEEK);
    let before = pipe.appended();
    {
        let _scope = FailPlan::new().fail_nth(names::EPOCH_MERGE, 0).install();
        let err = pipe
            .try_append_epoch()
            .expect_err("first append must hit the fault");
        assert!(matches!(err, PipelineError::Fault { ref failpoint, .. }
            if failpoint == names::EPOCH_MERGE));
    }
    // Nothing was consumed: the failed append left the cursor alone.
    assert_eq!(pipe.appended(), before);
    // In-place retry of the same epoch, then drive to completion.
    assert_eq!(report_digest(&pipe.into_report()), golden_digest());
}

/// A `scheduler/pass` fault mid-append leaves the dirtied passes
/// queued; the pipeline re-runs them on the next drive and still
/// reaches the golden report.
#[test]
fn incremental_pipeline_recovers_from_pass_fault() {
    let ds = small_dataset();
    let mut pipe = IncrementalPipeline::new(ds, serial(), WEEK);
    {
        let _scope = FailPlan::new().fail_nth(names::SCHEDULER_PASS, 2).install();
        let err = pipe
            .try_append_epoch()
            .expect_err("append must hit the pass fault");
        assert!(matches!(err, PipelineError::Fault { ref failpoint, .. }
            if failpoint == names::SCHEDULER_PASS));
    }
    assert_eq!(report_digest(&pipe.into_report()), golden_digest());
}

/// A streamed fold push that faults leaves the accumulator intact;
/// re-pushing the same batch resumes and reaches the golden report.
#[test]
fn stream_fold_resumes_after_push_fault() {
    let ds = small_dataset();
    let obs = Obs::disabled();
    let mut fold = StreamFold::new(ds.window());
    let batches: Vec<_> = ddos_sim::feed::replay_epochs(ds, WEEK).collect();
    for (i, batch) in batches.iter().enumerate() {
        if i == 1 {
            let _scope = FailPlan::new().fail_nth(names::EPOCH_MERGE, 0).install();
            let err = fold.try_push(batch, &obs).expect_err("push must fault");
            assert!(err.to_string().contains("epoch/merge"), "{err}");
        }
        // Retry (or first try) without a plan succeeds.
        fold.try_push(batch, &obs).expect("clean push");
    }
    let ctx = fold
        .finish()
        .expect("at least one batch")
        .into_context(ds, ddos_stats::ArimaSpec::DEFAULT);
    assert_eq!(
        report_digest(&Analysis::over(&ctx).parallel(false).run()),
        golden_digest()
    );
}

/// Parallel scheduling under a pass fault: deterministic `Err`, no
/// panic, and the earliest pass in registry order wins error
/// attribution regardless of thread interleaving.
#[test]
fn parallel_scheduler_fault_is_deterministic() {
    let ds = small_dataset();
    let mut seen = None;
    for _ in 0..3 {
        let _scope = FailPlan::new().fail_always(names::SCHEDULER_PASS).install();
        let err = Analysis::new(ds)
            .try_run()
            .expect_err("always-fail plan must error");
        let msg = err.to_string();
        match &seen {
            None => seen = Some(msg),
            Some(first) => assert_eq!(&msg, first, "error attribution varied across runs"),
        }
    }
}

/// Injections are counted on the `faults/injected` counter, so fault
/// telemetry can be asserted (and dashboards can alarm on nonzero
/// counts outside test runs).
#[test]
fn injections_move_the_fault_counter() {
    let ds = small_dataset();
    let obs = Obs::enabled();
    {
        let _scope = FailPlan::new().fail_nth(names::SCHEDULER_PASS, 0).install();
        Analysis::new(ds)
            .parallel(false)
            .obs(&obs)
            .try_run()
            .expect_err("fault must surface");
    }
    let telemetry = obs.finish(false);
    let count = telemetry
        .metrics
        .counters
        .iter()
        .find(|c| c.name == ddos_obs::names::FAULTS_INJECTED)
        .map(|c| c.value)
        .unwrap_or(0);
    assert_eq!(count, 1, "exactly one injection should be counted");
}

/// The seam really is live in this (debug) build — guarding against a
/// silent `ACTIVE = false` regression that would turn every fault test
/// above into a vacuous pass.
#[test]
#[allow(clippy::assertions_on_constants)] // asserting the constant is the point
fn seam_is_active_in_debug_builds() {
    assert!(ACTIVE, "debug builds must compile the seam in");
    let _scope = FailPlan::new().fail_always("probe").install();
    assert!(ddos_testkit::failpoints::check("probe").is_some());
}
