//! The differential conformance matrix, pinned to the committed golden
//! digest: every cell of `testkit::matrix()` (≥24 variants across
//! ingest × build × scheduler × kernels) must serialize the canonical
//! small trace's report to exactly the committed bytes.

use ddos_testkit::{assert_cells_match_golden, golden_digest, matrix, small_dataset};

#[test]
fn matrix_covers_at_least_24_cells() {
    assert!(matrix().len() >= 24, "matrix shrank: {}", matrix().len());
}

#[test]
fn every_matrix_cell_matches_the_golden_digest() {
    let want = golden_digest();
    assert_cells_match_golden(small_dataset(), &matrix(), &want);
}

#[test]
fn golden_digest_file_is_well_formed() {
    let d = golden_digest();
    assert!(
        d.starts_with("fnv1a64:") && d.len() == "fnv1a64:".len() + 16,
        "digest file malformed: {d:?}"
    );
}
