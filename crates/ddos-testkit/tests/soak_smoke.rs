//! Soak driver smoke: two tiny seeded rounds must come back green and
//! deterministic (same base seed ⇒ same per-round digests).

use ddos_obs::Obs;
use ddos_testkit::{run_soak, SoakOptions};

fn opts() -> SoakOptions {
    SoakOptions {
        rounds: 2,
        base_seed: 0xBEEF,
        scale: 0.02,
        full_matrix: false,
        faults: true,
    }
}

#[test]
fn soak_smoke_is_green_and_deterministic() {
    let run = |o: &SoakOptions| {
        run_soak(o, &Obs::disabled(), |_| {}).unwrap_or_else(|f| {
            panic!("soak failed: {} — {}", f.detail, f.repro_hint());
        })
    };
    let a = run(&opts());
    assert_eq!(a.rounds.len(), 2);
    assert_ne!(
        a.rounds[0].digest, a.rounds[1].digest,
        "different seeds should produce different traces"
    );
    let b = run(&opts());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.seed, rb.seed);
        assert_eq!(ra.digest, rb.digest, "soak is not deterministic");
    }
}

#[test]
fn soak_rounds_probe_failpoints_in_debug_builds() {
    if !ddos_testkit::failpoints::ACTIVE {
        return; // release: the seam (and the probe) is compiled out.
    }
    let summary = run_soak(&opts(), &Obs::disabled(), |_| {}).expect("soak green");
    assert!(summary.rounds.iter().all(|r| r.probed.is_some()));
}
