//! Shim-equivalence suite: every deprecated legacy entry point must
//! produce bytes identical to its documented `Analysis` builder
//! spelling (and, where the variant is golden-pinned, to the committed
//! digest). This is the one place the workspace is allowed to call the
//! deprecated functions — the CI lint gate (`-D deprecated`) keeps
//! every other caller on the builder.
#![allow(deprecated)]

use ddos_analytics::{Analysis, AnalysisContext, AnalysisReport, PipelineOptions, StreamFold};
use ddos_obs::Obs;
use ddos_schema::{framed, Seconds};
use ddos_stats::ArimaSpec;
use ddos_testkit::{golden_digest, matrix, report_digest, small_dataset};

const WEEK: Seconds = Seconds(7 * 24 * 3600);

fn assert_pair(legacy: &AnalysisReport, builder: &AnalysisReport, name: &str) {
    assert_eq!(
        report_digest(legacy),
        report_digest(builder),
        "legacy `{name}` diverged from its builder spelling"
    );
}

/// Each of the twelve legacy entry points against the builder spelling
/// its deprecation note names. The batch-shaped ones are additionally
/// pinned to the golden digest.
#[test]
fn every_legacy_entry_point_matches_its_builder_spelling() {
    let ds = small_dataset();
    let golden = golden_digest();
    let spec = ArimaSpec::DEFAULT;
    let opts = PipelineOptions::new().parallel(false);

    let pairs: Vec<(&str, AnalysisReport, AnalysisReport)> = vec![
        (
            "run_with",
            AnalysisReport::run_with(ds, spec),
            Analysis::new(ds).spec(spec).run(),
        ),
        (
            "run_opts",
            AnalysisReport::run_opts(ds, opts),
            Analysis::new(ds).options(opts).run(),
        ),
        (
            "try_run_opts",
            AnalysisReport::try_run_opts(ds, opts).expect("clean run"),
            Analysis::new(ds)
                .options(opts)
                .try_run()
                .expect("clean run"),
        ),
        (
            "run_epochs",
            AnalysisReport::run_epochs(ds, opts, WEEK),
            Analysis::new(ds).options(opts).epochs(WEEK).run(),
        ),
        (
            "try_run_epochs",
            AnalysisReport::try_run_epochs(ds, opts, WEEK).expect("clean run"),
            Analysis::new(ds)
                .options(opts)
                .epochs(WEEK)
                .try_run()
                .expect("clean run"),
        ),
        (
            "run_incremental",
            AnalysisReport::run_incremental(ds, opts, WEEK),
            Analysis::new(ds)
                .options(opts)
                .epochs(WEEK)
                .incremental()
                .run(),
        ),
        (
            "try_run_incremental",
            AnalysisReport::try_run_incremental(ds, opts, WEEK).expect("clean run"),
            Analysis::new(ds)
                .options(opts)
                .epochs(WEEK)
                .incremental()
                .try_run()
                .expect("clean run"),
        ),
    ];
    for (name, legacy, builder) in &pairs {
        assert_pair(legacy, builder, name);
        assert_eq!(
            report_digest(legacy),
            golden,
            "legacy `{name}` diverged from the golden digest"
        );
    }

    // run_baseline deliberately reports a reduced section set, so it is
    // pinned only against its builder spelling.
    assert_pair(
        &AnalysisReport::run_baseline(ds, spec),
        &Analysis::new(ds).spec(spec).baseline().run(),
        "run_baseline",
    );
}

/// The obs-carrying entry points: byte-identical reports, and the
/// caller's `Obs` receives the run's spans either way.
#[test]
fn obs_entry_points_match_and_record() {
    let ds = small_dataset();
    let opts = PipelineOptions::new().parallel(false);

    let legacy_obs = Obs::enabled();
    let builder_obs = Obs::enabled();
    let legacy = AnalysisReport::run_obs(ds, opts, &legacy_obs);
    let builder = Analysis::new(ds).options(opts).obs(&builder_obs).run();
    assert_pair(&legacy, &builder, "run_obs");
    // Both spellings drain the caller's obs into the report artifact.
    assert!(legacy.telemetry.span("context").is_some());
    assert!(builder.telemetry.span("context").is_some());

    let legacy_obs = Obs::enabled();
    let builder_obs = Obs::enabled();
    assert_pair(
        &AnalysisReport::try_run_obs(ds, opts, &legacy_obs).expect("clean run"),
        &Analysis::new(ds)
            .options(opts)
            .obs(&builder_obs)
            .try_run()
            .expect("clean run"),
        "try_run_obs",
    );
}

/// `run_path` against the builder over the same reopened dataset.
#[test]
fn run_path_matches_open_then_build() {
    let ds = small_dataset();
    let path = std::env::temp_dir().join(format!(
        "ddos-testkit-builder-equiv-{}.ddtl",
        std::process::id()
    ));
    std::fs::write(&path, framed::encode(ds)).expect("write trace");
    let legacy = AnalysisReport::run_path(&path).expect("legacy open");
    let reopened = ddos_schema::Dataset::open(&path).expect("builder open");
    let _ = std::fs::remove_file(&path);
    assert_pair(&legacy, &Analysis::new(&reopened).run(), "run_path");
    assert_eq!(report_digest(&legacy), golden_digest());
}

/// `run_on` (prebuilt context handed to the scheduler) against
/// `Analysis::over`, on both a built and a streamed context.
#[test]
fn run_on_matches_analysis_over() {
    let ds = small_dataset();
    let built = AnalysisContext::build(ds, ArimaSpec::DEFAULT);
    for parallel in [false, true] {
        assert_pair(
            &AnalysisReport::run_on(&built, parallel),
            &Analysis::over(&built).parallel(parallel).run(),
            "run_on",
        );
    }

    let obs = Obs::disabled();
    let mut fold = StreamFold::new(ds.window());
    for batch in ddos_sim::feed::replay_epochs(ds, WEEK) {
        fold.push(&batch, &obs);
    }
    let streamed = fold
        .finish()
        .expect("batches were pushed")
        .into_context(ds, ArimaSpec::DEFAULT);
    assert_pair(
        &AnalysisReport::run_on(&streamed, false),
        &Analysis::over(&streamed).parallel(false).run(),
        "run_on(streamed)",
    );
}

/// The whole 26-cell variant matrix still agrees with the golden
/// digest when driven through the builder (the cells were migrated to
/// builder spellings; this pins that migration changed nothing).
#[test]
fn builder_driven_matrix_stays_golden() {
    ddos_testkit::assert_cells_match_golden(small_dataset(), &matrix(), &golden_digest());
}
