//! Correctness tooling for the ddos workspace: the differential
//! conformance driver and the fault-injection harness.
//!
//! The workspace has accumulated many ways to compute the same report —
//! serial vs crossbeam scheduling, `Reference` vs `Chunked` kernels,
//! monolithic vs epoch-folded vs incremental vs streamed builds, v1 vs
//! framed-v2 vs memory-mapped ingest. The paper's findings only hold if
//! every combination agrees byte for byte. This crate makes that a
//! first-class, reusable check instead of point-wise suites:
//!
//! * [`variant`] — the lattice itself: a [`Cell`] names one point
//!   (ingest × build × scheduler × kernels), [`matrix`] enumerates the
//!   curated ≥24-cell coverage set, [`matrix_full`] the exhaustive
//!   cross product for soak runs.
//! * [`conformance`] — digest plumbing ([`report_digest`], the
//!   committed [`golden_digest`]), the shared small trace, and the
//!   assertion helpers the integration suites build on.
//! * [`faults`] — drive any named failpoint (see [`failpoints`]) to an
//!   `Err`, then prove the retry without the fault reproduces the
//!   clean result.
//! * [`serve`] — the snapshot-isolation probe: replay a trace through
//!   an `AnalysisService` and pin its published watermarks to fresh
//!   epoch-prefix runs.
//! * [`soak`] — N seeded rounds of the full differential check
//!   (`repro --soak N`), emitting a reproducible failure bundle on the
//!   first divergence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod faults;
pub mod serve;
pub mod soak;
pub mod variant;

/// Re-export of the seam crate, so tests depending on `ddos-testkit`
/// build `FailPlan`s without naming `ddos-failpoints` themselves.
pub use ddos_failpoints as failpoints;

pub use conformance::{
    assert_cells_agree, assert_cells_match_golden, check_telemetry_purity, golden_digest,
    report_digest, small_dataset, small_trace,
};
pub use faults::inject_and_recover;
pub use serve::check_serve_conformance;
pub use soak::{run_soak, SoakFailure, SoakOptions, SoakRound, SoakSummary};
pub use variant::{matrix, matrix_full, Build, Cell, CellError, Ingest, Kernels, Scheduler};
