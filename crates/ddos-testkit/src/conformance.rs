//! Digest plumbing, the shared small trace, and the assertion helpers
//! the integration suites (and the soak loop) build on.

use std::sync::OnceLock;

use ddos_analytics::{Analysis, AnalysisReport};
use ddos_obs::fnv1a_64_hex;
use ddos_schema::Dataset;
use ddos_sim::{generate, GeneratedTrace, SimConfig};

use crate::variant::Cell;

/// The canonical report digest: FNV-1a 64 over the serialized JSON,
/// formatted exactly like `tests/golden/report_small.digest`.
pub fn report_digest(report: &AnalysisReport) -> String {
    let json = serde_json::to_string(report).expect("report serializes");
    fnv1a_64_hex(json.as_bytes())
}

/// The committed golden digest for the canonical small trace.
pub fn golden_digest() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/report_small.digest"
    );
    std::fs::read_to_string(path)
        .expect("reading tests/golden/report_small.digest")
        .trim()
        .to_string()
}

/// The canonical small trace (`SimConfig::small`), generated once per
/// process and shared by every suite that pins the golden digest.
pub fn small_trace() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&SimConfig::small()))
}

/// The canonical small trace's dataset.
pub fn small_dataset() -> &'static Dataset {
    &small_trace().dataset
}

/// Runs every cell against `ds` and asserts they all serialize to the
/// same bytes, returning the agreed digest. Panics naming the first
/// diverging cell (and the reference cell it diverged from).
pub fn assert_cells_agree(ds: &Dataset, cells: &[Cell]) -> String {
    assert!(!cells.is_empty(), "empty cell list");
    let mut agreed: Option<(String, &Cell)> = None;
    for cell in cells {
        let digest = report_digest(&cell.run(ds));
        match &agreed {
            None => agreed = Some((digest, cell)),
            Some((want, reference)) => assert_eq!(
                &digest, want,
                "variant cell `{cell}` diverged from `{reference}`"
            ),
        }
    }
    agreed.expect("at least one cell ran").0
}

/// [`assert_cells_agree`] pinned to an expected digest (normally the
/// committed [`golden_digest`]). Panics naming the diverging cell.
pub fn assert_cells_match_golden(ds: &Dataset, cells: &[Cell], want: &str) {
    for cell in cells {
        let digest = report_digest(&cell.run(ds));
        assert_eq!(
            digest, want,
            "variant cell `{cell}` diverged from the pinned digest; if the \
             report change is intentional, regenerate with `repro --report-digest`"
        );
    }
}

/// Telemetry purity: recording telemetry must never perturb report
/// bytes, and quiet runs must leave the artifact empty. Returns the
/// offending description instead of panicking so the soak loop can
/// fold it into a failure bundle.
pub fn check_telemetry_purity(ds: &Dataset) -> Result<(), String> {
    let on = Analysis::new(ds).run();
    let off = Analysis::new(ds).telemetry(false).run();
    let on_json = serde_json::to_string(&on).expect("report serializes");
    let off_json = serde_json::to_string(&off).expect("report serializes");
    if on_json != off_json {
        return Err("telemetry recording perturbed report bytes".into());
    }
    if on.telemetry.spans.is_empty() {
        return Err("recording run produced no telemetry spans".into());
    }
    if !off.telemetry.is_empty() {
        return Err("quiet run leaked telemetry".into());
    }
    Ok(())
}
