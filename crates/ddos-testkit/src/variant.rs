//! The variant lattice: every way the workspace can compute a report.
//!
//! A [`Cell`] fixes one point on four axes — how the dataset is
//! ingested, how the analysis context is built, how the pass scheduler
//! runs, and which kernel policy the pass bodies use. [`Cell::run`]
//! executes that exact combination; the conformance driver then
//! asserts every cell of a matrix serializes to the same bytes.
//!
//! [`matrix`] is the curated coverage set (every axis value exercised,
//! ≥24 cells) pinned against the committed golden digest by
//! `crates/ddos-testkit/tests/matrix_golden.rs`; [`matrix_full`] is
//! the exhaustive cross product the soak loop can opt into.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ddos_analytics::{Analysis, AnalysisReport, KernelPolicy, PipelineError, StreamFold};
use ddos_obs::Obs;
use ddos_schema::{codec, framed, Dataset, SchemaError, Seconds};
use ddos_stats::ArimaSpec;

/// How the dataset reaches the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Analyze the in-memory dataset as-is.
    Native,
    /// Round-trip through the v1 serial codec first.
    V1RoundTrip,
    /// Round-trip through the framed v2 container with an explicit
    /// frame length and decode worker count.
    V2RoundTrip {
        /// Records per frame at encode time (1 maximizes seams).
        frame_len: usize,
        /// Decode workers (1 pins the serial fast path).
        workers: usize,
    },
    /// Write the framed v2 container to disk and memory-map it back
    /// through `Dataset::open`.
    V2Mmap,
}

/// How the analysis context comes together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Build {
    /// One-shot context build (the `Analysis` builder's default).
    Monolithic,
    /// The pre-refactor monolithic reference (`Analysis::baseline`);
    /// ignores the scheduler and kernel axes by construction.
    Baseline,
    /// Epoch-sharded batch fold (`Analysis::epochs`).
    EpochFolded {
        /// Epoch length in seconds.
        epoch_len_s: i64,
    },
    /// One-epoch-at-a-time appends (`Analysis::incremental`).
    Incremental {
        /// Epoch length in seconds.
        epoch_len_s: i64,
    },
    /// Bounded-memory streaming fold over `replay_epochs`.
    Streamed {
        /// Epoch length in seconds.
        epoch_len_s: i64,
    },
}

/// Pass scheduler mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Passes run one after another in registry order.
    Serial,
    /// Stages fan out on crossbeam scoped threads.
    Parallel,
}

/// Kernel policy for the pass bodies (mirrors
/// [`ddos_analytics::KernelPolicy`] so cells print compactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernels {
    /// The PR 6 reference bodies.
    Reference,
    /// Per-pass heuristic choice.
    Auto,
    /// Chunked kernels with a fixed chunk size.
    Chunked(usize),
}

impl Kernels {
    fn policy(self) -> KernelPolicy {
        match self {
            Kernels::Reference => KernelPolicy::Reference,
            Kernels::Auto => KernelPolicy::Auto,
            Kernels::Chunked(n) => KernelPolicy::Chunked(n),
        }
    }
}

/// One point of the variant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Ingest axis.
    pub ingest: Ingest,
    /// Context-build axis.
    pub build: Build,
    /// Scheduler axis.
    pub scheduler: Scheduler,
    /// Kernel-policy axis.
    pub kernels: Kernels,
}

/// What a cell run can fail with: the ingest layer's error or the
/// pipeline's (only reachable under an installed `FailPlan`).
#[derive(Debug)]
pub enum CellError {
    /// Ingest (codec/framed/mmap) failure.
    Schema(SchemaError),
    /// Pipeline (scheduler/epoch fold) failure.
    Pipeline(PipelineError),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Schema(e) => write!(f, "ingest: {e}"),
            CellError::Pipeline(e) => write!(f, "pipeline: {e}"),
        }
    }
}

impl std::error::Error for CellError {}

impl From<SchemaError> for CellError {
    fn from(e: SchemaError) -> Self {
        CellError::Schema(e)
    }
}

impl From<PipelineError> for CellError {
    fn from(e: PipelineError) -> Self {
        CellError::Pipeline(e)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ingest = match self.ingest {
            Ingest::Native => "native".to_string(),
            Ingest::V1RoundTrip => "v1".to_string(),
            Ingest::V2RoundTrip { frame_len, workers } => {
                format!("v2(frame={frame_len},workers={workers})")
            }
            Ingest::V2Mmap => "v2-mmap".to_string(),
        };
        let build = match self.build {
            Build::Monolithic => "monolithic".to_string(),
            Build::Baseline => "baseline".to_string(),
            Build::EpochFolded { epoch_len_s } => format!("epochs({epoch_len_s}s)"),
            Build::Incremental { epoch_len_s } => format!("incremental({epoch_len_s}s)"),
            Build::Streamed { epoch_len_s } => format!("streamed({epoch_len_s}s)"),
        };
        let sched = match self.scheduler {
            Scheduler::Serial => "serial",
            Scheduler::Parallel => "parallel",
        };
        let kernels = match self.kernels {
            Kernels::Reference => "reference".to_string(),
            Kernels::Auto => "auto".to_string(),
            Kernels::Chunked(n) => format!("chunked({n})"),
        };
        write!(f, "{ingest} | {build} | {sched} | {kernels}")
    }
}

impl Cell {
    /// A short stable label (the `Display` form).
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Runs this cell, panicking on error — the common case for
    /// conformance tests with no fault plan installed.
    pub fn run(&self, ds: &Dataset) -> AnalysisReport {
        self.try_run(ds)
            .unwrap_or_else(|e| panic!("cell `{self}` failed: {e}"))
    }

    /// Runs this cell, surfacing ingest and pipeline errors (which only
    /// occur under an installed `FailPlan`) instead of panicking.
    pub fn try_run(&self, ds: &Dataset) -> Result<AnalysisReport, CellError> {
        let ingested;
        let ds = match self.ingest {
            Ingest::Native => ds,
            Ingest::V1RoundTrip => {
                ingested = codec::decode(&codec::encode(ds))?;
                &ingested
            }
            Ingest::V2RoundTrip { frame_len, workers } => {
                let bytes = framed::encode_with(ds, frame_len);
                ingested = framed::decode_with_workers(&bytes, workers)?.0;
                &ingested
            }
            Ingest::V2Mmap => {
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "ddos-testkit-{}-{}.ddtl",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::write(&path, framed::encode(ds))
                    .map_err(|e| SchemaError::Io(format!("{}: {e}", path.display())))?;
                let opened = Dataset::open(&path);
                let _ = std::fs::remove_file(&path);
                ingested = opened?;
                &ingested
            }
        };
        let parallel = matches!(self.scheduler, Scheduler::Parallel);
        let base = || {
            Analysis::new(ds)
                .parallel(parallel)
                .kernels(self.kernels.policy())
        };
        let report = match self.build {
            Build::Monolithic => base().try_run()?,
            Build::Baseline => Analysis::new(ds).baseline().try_run()?,
            Build::EpochFolded { epoch_len_s } => base().epochs(Seconds(epoch_len_s)).try_run()?,
            Build::Incremental { epoch_len_s } => base()
                .epochs(Seconds(epoch_len_s))
                .incremental()
                .try_run()?,
            Build::Streamed { epoch_len_s } => {
                let obs = Obs::disabled();
                let mut fold = StreamFold::new(ds.window());
                for batch in ddos_sim::feed::replay_epochs(ds, Seconds(epoch_len_s)) {
                    fold.try_push(&batch, &obs)?;
                }
                let ctx = fold
                    .finish()
                    .expect("a dataset always yields at least one epoch batch")
                    .into_context(ds, ArimaSpec::DEFAULT)
                    .with_kernels(self.kernels.policy());
                Analysis::over(&ctx).parallel(parallel).try_run()?
            }
        };
        Ok(report)
    }
}

/// Default cell: the pipeline exactly as `AnalysisReport::run` runs it.
pub const NATIVE_PARALLEL: Cell = Cell {
    ingest: Ingest::Native,
    build: Build::Monolithic,
    scheduler: Scheduler::Parallel,
    kernels: Kernels::Auto,
};

const WEEK_S: i64 = 7 * 24 * 3600;
/// An epoch length that divides nothing evenly — exercises ragged
/// shard boundaries the same way the golden suite always has.
const ODD_EPOCH_S: i64 = 100_000;

const BUILDS: [Build; 4] = [
    Build::Monolithic,
    Build::EpochFolded {
        epoch_len_s: WEEK_S,
    },
    Build::Incremental {
        epoch_len_s: WEEK_S,
    },
    Build::Streamed {
        epoch_len_s: WEEK_S,
    },
];

const KERNELS: [Kernels; 4] = [
    Kernels::Reference,
    Kernels::Auto,
    Kernels::Chunked(1),
    Kernels::Chunked(3),
];

const INGESTS: [Ingest; 4] = [
    Ingest::V1RoundTrip,
    Ingest::V2RoundTrip {
        frame_len: 1,
        workers: 4,
    },
    Ingest::V2RoundTrip {
        frame_len: framed::DEFAULT_FRAME_LEN,
        workers: 1,
    },
    Ingest::V2Mmap,
];

/// The curated coverage matrix: ≥24 cells touching every value of
/// every axis, cheap enough for `cargo test` on every push.
///
/// * every build × every kernel policy (scheduler alternating so both
///   modes cover each axis value) on the native dataset — 16 cells;
/// * every non-native ingest × both schedulers on the default
///   build/kernels — 8 cells;
/// * the monolithic baseline and a ragged epoch length — 2 more.
pub fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (i, &build) in BUILDS.iter().enumerate() {
        for (j, &kernels) in KERNELS.iter().enumerate() {
            let scheduler = if (i + j) % 2 == 0 {
                Scheduler::Parallel
            } else {
                Scheduler::Serial
            };
            cells.push(Cell {
                ingest: Ingest::Native,
                build,
                scheduler,
                kernels,
            });
        }
    }
    for &ingest in &INGESTS {
        for scheduler in [Scheduler::Serial, Scheduler::Parallel] {
            cells.push(Cell {
                ingest,
                build: Build::Monolithic,
                scheduler,
                kernels: Kernels::Auto,
            });
        }
    }
    cells.push(Cell {
        ingest: Ingest::Native,
        build: Build::Baseline,
        scheduler: Scheduler::Serial,
        kernels: Kernels::Reference,
    });
    cells.push(Cell {
        ingest: Ingest::Native,
        build: Build::EpochFolded {
            epoch_len_s: ODD_EPOCH_S,
        },
        scheduler: Scheduler::Serial,
        kernels: Kernels::Auto,
    });
    cells
}

/// The exhaustive lattice: every ingest × every build × both
/// schedulers × every kernel policy (plus one baseline per ingest).
/// Soak rounds opt into this; it is too slow for per-push CI.
pub fn matrix_full() -> Vec<Cell> {
    let mut cells = Vec::new();
    let ingests = [Ingest::Native]
        .into_iter()
        .chain(INGESTS)
        .collect::<Vec<_>>();
    for &ingest in &ingests {
        for &build in &BUILDS {
            for scheduler in [Scheduler::Serial, Scheduler::Parallel] {
                for &kernels in &KERNELS {
                    cells.push(Cell {
                        ingest,
                        build,
                        scheduler,
                        kernels,
                    });
                }
            }
        }
        cells.push(Cell {
            ingest,
            build: Build::Baseline,
            scheduler: Scheduler::Serial,
            kernels: Kernels::Reference,
        });
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_meets_the_coverage_floor() {
        let cells = matrix();
        assert!(cells.len() >= 24, "matrix has {} cells", cells.len());
        // Every axis value appears somewhere.
        assert!(cells.iter().any(|c| c.ingest == Ingest::Native));
        assert!(cells.iter().any(|c| c.ingest == Ingest::V1RoundTrip));
        assert!(cells.iter().any(|c| c.ingest == Ingest::V2Mmap));
        assert!(cells
            .iter()
            .any(|c| matches!(c.ingest, Ingest::V2RoundTrip { workers: 1, .. })));
        assert!(cells
            .iter()
            .any(|c| matches!(c.ingest, Ingest::V2RoundTrip { workers: 4, .. })));
        for build in BUILDS {
            assert!(cells.iter().any(|c| c.build == build), "missing {build:?}");
        }
        assert!(cells.iter().any(|c| c.build == Build::Baseline));
        for kernels in KERNELS {
            assert!(cells.iter().any(|c| c.kernels == kernels));
        }
        for scheduler in [Scheduler::Serial, Scheduler::Parallel] {
            assert!(cells.iter().any(|c| c.scheduler == scheduler));
        }
        // Labels are unique — a failure names exactly one cell.
        let mut labels: Vec<String> = cells.iter().map(Cell::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len(), "duplicate cell labels");
    }

    #[test]
    fn full_matrix_is_a_superset_scale() {
        assert!(matrix_full().len() > matrix().len() * 4);
    }
}
