//! Serve conformance probe for the soak loop.
//!
//! Replays a round's trace through an [`AnalysisService`] epoch by
//! epoch and checks the service's snapshot-isolation contract against
//! the round's agreed digest: the final published snapshot must match
//! the matrix digest byte for byte, and one mid-stream watermark must
//! answer exactly like a fresh monolithic run over the same epoch
//! prefix ([`ddos_schema::Dataset::epoch_prefix`]).

use ddos_analytics::{Analysis, PipelineOptions};
use ddos_obs::Obs;
use ddos_schema::{Dataset, Seconds};
use ddos_serve::AnalysisService;

use crate::conformance::report_digest;

/// Ingests `ds` through a fresh service (about four epochs) and
/// verifies the final snapshot against `want` plus one mid-stream
/// watermark against a fresh prefix run. Returns the epoch count on
/// success, the offending description otherwise (so the soak loop can
/// fold it into a failure bundle); test suites simply `unwrap()`.
pub fn check_serve_conformance(ds: &Dataset, want: &str) -> Result<usize, String> {
    let target = 4i64;
    let len = Seconds(((ds.window().length().get() + target - 1) / target).max(1));
    let obs = Obs::disabled();
    let service = AnalysisService::new(ds, PipelineOptions::default(), len, &obs);
    let epochs = service.epochs();
    let mid = (epochs / 2).max(1);
    let mut mid_digest = None;
    loop {
        match service.try_append() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => return Err(format!("serve append errored with no fault plan: {e}")),
        }
        if service.watermark() == mid && mid_digest.is_none() {
            let snap = service
                .snapshot()
                .ok_or_else(|| "append published no snapshot".to_string())?;
            mid_digest = Some(report_digest(&snap.report));
        }
    }
    if service.watermark() != epochs {
        return Err(format!(
            "service finished at watermark {} of {epochs}",
            service.watermark()
        ));
    }
    let snap = service
        .snapshot()
        .ok_or_else(|| "complete service published no snapshot".to_string())?;
    let final_digest = report_digest(&snap.report);
    if final_digest != want {
        return Err(format!(
            "serve final snapshot (watermark {epochs}) diverged from the round digest: \
             {final_digest} != {want}"
        ));
    }
    if let Some(got) = mid_digest {
        let fresh = report_digest(&Analysis::new(&ds.epoch_prefix(len, mid)).run());
        if got != fresh {
            return Err(format!(
                "serve snapshot at watermark {mid}/{epochs} diverged from a fresh \
                 prefix run: {got} != {fresh}"
            ));
        }
    }
    Ok(epochs)
}
