//! The seeded soak loop behind `repro --soak N`.
//!
//! Each round draws a fresh trace from a deterministic per-round seed,
//! runs it through every cell of the variant matrix, and asserts all
//! cells agree byte for byte (plus telemetry purity, plus — in debug
//! builds — one fault-injection/recovery probe rotating through the
//! named failpoints). The first divergence stops the run and yields a
//! [`SoakFailure`] carrying everything needed to reproduce it:
//! the round seed, the scale, the variant cell, and the digest pair.
//! `repro` serializes that bundle to `SOAK_FAILURE.json` and CI
//! uploads it as an artifact.
//!
//! Reproducing a failure locally is one command:
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- \
//!     --soak 1 --soak-seed <seed from the bundle>
//! ```

use std::path::Path;
use std::time::Instant;

use ddos_failpoints::names as fp_names;
use ddos_obs::{names, Obs};
use ddos_sim::{generate, SimConfig};
use serde::Serialize;

use crate::conformance::{check_telemetry_purity, report_digest};
use crate::faults::inject_and_recover;
use crate::serve::check_serve_conformance;
use crate::variant::{matrix, matrix_full, Cell};

/// Knobs for one soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Number of seeded rounds.
    pub rounds: u32,
    /// Base seed; round `r` derives its trace seed deterministically
    /// from it, so any failure names the exact seed to replay.
    pub base_seed: u64,
    /// Sim volume scale (0.05 is the CI smoke size, 1.0 paper scale).
    pub scale: f64,
    /// Use the exhaustive [`matrix_full`] instead of the curated
    /// [`matrix`].
    pub full_matrix: bool,
    /// Run the rotating fault-injection probe each round (no-op in
    /// release builds, where the seam is compiled out).
    pub faults: bool,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            rounds: 2,
            base_seed: 0x0DD0_5EED,
            scale: 0.05,
            full_matrix: false,
            faults: true,
        }
    }
}

/// What one completed round did.
#[derive(Debug, Clone, Serialize)]
pub struct SoakRound {
    /// Zero-based round index.
    pub round: u32,
    /// The trace seed this round generated from.
    pub seed: u64,
    /// Cells run (all agreed).
    pub cells: usize,
    /// The digest every cell agreed on.
    pub digest: String,
    /// The failpoint probed this round, if the probe ran.
    pub probed: Option<String>,
    /// Epochs the serve conformance probe replayed through an
    /// `AnalysisService` (final + mid-stream watermarks verified).
    pub serve_epochs: usize,
}

/// A finished, fully green soak run.
#[derive(Debug, Clone, Serialize)]
pub struct SoakSummary {
    /// Per-round outcomes, in order.
    pub rounds: Vec<SoakRound>,
}

/// The repro bundle for the first divergence a soak run hit.
#[derive(Debug, Clone, Serialize)]
pub struct SoakFailure {
    /// Round index that failed.
    pub round: u32,
    /// Trace seed to replay (`repro --soak 1 --soak-seed <seed>`).
    pub seed: u64,
    /// Sim scale the round ran at.
    pub scale: f64,
    /// Label of the diverging variant cell (or the pseudo-cells
    /// `telemetry-purity` / `serve-conformance` / `failpoint:<name>`).
    pub cell: String,
    /// Digest the round's reference cell produced.
    pub expected: String,
    /// Digest (or error) the diverging cell produced.
    pub got: String,
    /// Human-readable detail.
    pub detail: String,
}

impl SoakFailure {
    /// Writes the bundle as pretty JSON (the `SOAK_FAILURE.json`
    /// artifact CI uploads on failure).
    pub fn write_bundle(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("bundle serializes");
        std::fs::write(path, json + "\n")
    }

    /// The one-liner telling a human how to replay this failure.
    pub fn repro_hint(&self) -> String {
        format!(
            "repro: cargo run --release -p bench --bin repro -- --soak 1 \
             --soak-seed 0x{:X} (cell `{}`)",
            self.seed, self.cell
        )
    }
}

/// Derives round `r`'s trace seed from the base seed (golden-ratio
/// stride, so nearby rounds decorrelate).
pub fn round_seed(base_seed: u64, round: u32) -> u64 {
    base_seed.wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs the soak loop. `progress` fires after each green round (repro
/// prints a table row from it). Returns the first failure as an `Err`
/// bundle; boxed because the green path should stay cheap to return.
pub fn run_soak(
    opts: &SoakOptions,
    obs: &Obs,
    mut progress: impl FnMut(&SoakRound),
) -> Result<SoakSummary, Box<SoakFailure>> {
    let cells: Vec<Cell> = if opts.full_matrix {
        matrix_full()
    } else {
        matrix()
    };
    let cell_hist = obs.histogram(names::SOAK_CELL_US);
    let round_counter = obs.counter(names::SOAK_ROUNDS);
    let mut rounds = Vec::with_capacity(opts.rounds as usize);
    for round in 0..opts.rounds {
        let seed = round_seed(opts.base_seed, round);
        let cfg = SimConfig {
            seed,
            scale: opts.scale,
            ..SimConfig::small()
        };
        let ds = &generate(&cfg).dataset;
        let fail = |cell: String, expected: String, got: String, detail: String| {
            Box::new(SoakFailure {
                round,
                seed,
                scale: opts.scale,
                cell,
                expected,
                got,
                detail,
            })
        };
        // Differential sweep: every cell must agree with the first.
        let mut want: Option<(String, &Cell)> = None;
        for cell in &cells {
            let t0 = Instant::now();
            let digest = match cell.try_run(ds) {
                Ok(report) => report_digest(&report),
                Err(e) => {
                    return Err(fail(
                        cell.label(),
                        want.map(|(d, _)| d).unwrap_or_default(),
                        format!("error: {e}"),
                        "variant cell errored with no fault plan installed".into(),
                    ))
                }
            };
            cell_hist.record(t0.elapsed().as_micros() as u64);
            match &want {
                None => want = Some((digest, cell)),
                Some((expected, reference)) => {
                    if &digest != expected {
                        return Err(fail(
                            cell.label(),
                            expected.clone(),
                            digest,
                            format!("diverged from reference cell `{reference}`"),
                        ));
                    }
                }
            }
        }
        let (digest, _) = want.expect("matrix is never empty");
        if let Err(detail) = check_telemetry_purity(ds) {
            return Err(fail(
                "telemetry-purity".into(),
                digest.clone(),
                String::new(),
                detail,
            ));
        }
        // Snapshot isolation: the serve path must publish the same
        // bytes the matrix agreed on, at every probed watermark.
        let serve_epochs = match check_serve_conformance(ds, &digest) {
            Ok(n) => n,
            Err(detail) => {
                return Err(fail(
                    "serve-conformance".into(),
                    digest.clone(),
                    String::new(),
                    detail,
                ))
            }
        };
        // Rotating fault probe: one failpoint per round, full
        // inject-error-retry-recover cycle (debug builds only).
        let probed = if opts.faults && ddos_failpoints::ACTIVE {
            let name = fp_names::ALL[(round as usize) % fp_names::ALL.len()];
            if let Err(detail) = inject_and_recover(name, ds) {
                return Err(fail(
                    format!("failpoint:{name}"),
                    digest.clone(),
                    String::new(),
                    detail,
                ));
            }
            Some(name.to_string())
        } else {
            None
        };
        round_counter.inc();
        let summary = SoakRound {
            round,
            seed,
            cells: cells.len(),
            digest,
            probed,
            serve_epochs,
        };
        progress(&summary);
        rounds.push(summary);
    }
    Ok(SoakSummary { rounds })
}
