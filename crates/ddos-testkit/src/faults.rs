//! Drive each named failpoint to an `Err` and prove clean recovery.
//!
//! [`inject_and_recover`] is the one-call form of the fault contract
//! every hot path must satisfy:
//!
//! 1. run the operation that consults the failpoint with a plan that
//!    fails its first hit — it must return `Err` (never panic), and
//!    the error must carry the failpoint name;
//! 2. run the identical operation again with no plan installed — it
//!    must succeed and reproduce the byte-identical clean result.
//!
//! The helper returns `Err(description)` instead of panicking so the
//! soak loop can fold a violation into its failure bundle; test suites
//! simply `unwrap()`. In release builds the seam is compiled out
//! (`ddos_failpoints::ACTIVE`), so the helper is a no-op.

use ddos_analytics::Analysis;
use ddos_failpoints::{names, FailPlan, ACTIVE};
use ddos_schema::{codec, csv, framed, Dataset, Seconds};

use crate::conformance::report_digest;

const WEEK_S: i64 = 7 * 24 * 3600;

/// `Err` unless `got` is an error mentioning the injected failpoint.
fn expect_injected<T, E: std::fmt::Display>(
    got: Result<T, E>,
    name: &str,
    op: &str,
) -> Result<(), String> {
    match got {
        Ok(_) => Err(format!(
            "{op}: fault injected at `{name}` but the operation succeeded"
        )),
        Err(e) => {
            let msg = e.to_string();
            if msg.contains("injected fault at") && msg.contains(name) {
                Ok(())
            } else {
                Err(format!(
                    "{op}: expected an injected fault at `{name}`, got: {msg}"
                ))
            }
        }
    }
}

/// Injects a failure at the first hit of failpoint `name`, asserts the
/// covering operation errors (never panics) with the failpoint named
/// in the message, then retries without the fault and asserts the
/// clean result is byte-identical to a run that never saw the plan.
pub fn inject_and_recover(name: &str, ds: &Dataset) -> Result<(), String> {
    if !ACTIVE {
        return Ok(()); // release build: the seam is compiled out.
    }
    match name {
        names::INGEST_OPEN => {
            let path = std::env::temp_dir().join(format!(
                "ddos-testkit-fault-open-{}.ddtl",
                std::process::id()
            ));
            std::fs::write(&path, framed::encode(ds)).map_err(|e| e.to_string())?;
            let clean = codec::encode(&Dataset::open(&path).map_err(|e| e.to_string())?);
            {
                let _scope = FailPlan::new().fail_nth(name, 0).install();
                expect_injected(Dataset::open(&path), name, "Dataset::open")?;
            }
            let retried = codec::encode(&Dataset::open(&path).map_err(|e| e.to_string())?);
            let _ = std::fs::remove_file(&path);
            if retried != clean {
                return Err("Dataset::open retry diverged from the clean decode".into());
            }
        }
        names::INGEST_V1_DECODE => {
            let bytes = codec::encode(ds);
            let clean = codec::encode(&codec::decode(&bytes).map_err(|e| e.to_string())?);
            {
                let _scope = FailPlan::new().fail_nth(name, 0).install();
                expect_injected(codec::decode(&bytes), name, "codec::decode")?;
            }
            let retried = codec::encode(&codec::decode(&bytes).map_err(|e| e.to_string())?);
            if retried != clean {
                return Err("codec::decode retry diverged from the clean decode".into());
            }
        }
        names::INGEST_FRAMED_HEADER | names::INGEST_FRAMED_FRAME => {
            let bytes = framed::encode_with(ds, 64);
            let clean = codec::encode(&framed::decode(&bytes).map_err(|e| e.to_string())?);
            for workers in [1, 4] {
                let _scope = FailPlan::new().fail_always(name).install();
                expect_injected(
                    framed::decode_with_workers(&bytes, workers),
                    name,
                    "framed::decode_with_workers",
                )?;
            }
            let retried = codec::encode(&framed::decode(&bytes).map_err(|e| e.to_string())?);
            if retried != clean {
                return Err("framed::decode retry diverged from the clean decode".into());
            }
        }
        names::INGEST_CSV_CHUNK => {
            let text = csv::attacks_to_csv(ds.attacks());
            let clean = csv::attacks_from_csv(&text).map_err(|e| e.to_string())?;
            {
                let _scope = FailPlan::new().fail_always(name).install();
                expect_injected(csv::attacks_from_csv(&text), name, "attacks_from_csv")?;
                expect_injected(
                    csv::attacks_from_csv_chunked_with(&text, 4),
                    name,
                    "attacks_from_csv_chunked_with",
                )?;
            }
            let retried =
                csv::attacks_from_csv_chunked_with(&text, 4).map_err(|e| e.to_string())?;
            if retried != clean {
                return Err("chunked CSV retry diverged from the serial parse".into());
            }
        }
        names::EPOCH_MERGE => {
            let folded = || Analysis::new(ds).parallel(false).epochs(Seconds(WEEK_S));
            let clean = report_digest(&folded().run());
            {
                let _scope = FailPlan::new().fail_nth(name, 0).install();
                expect_injected(folded().try_run(), name, "epoch-folded try_run")?;
            }
            let retried = report_digest(&folded().run());
            if retried != clean {
                return Err("epoch fold retry diverged from the clean report".into());
            }
        }
        names::SCHEDULER_PASS => {
            let batch = || Analysis::new(ds).parallel(false);
            let clean = report_digest(&batch().run());
            {
                let _scope = FailPlan::new().fail_nth(name, 0).install();
                expect_injected(batch().try_run(), name, "monolithic try_run")?;
            }
            let retried = report_digest(&batch().run());
            if retried != clean {
                return Err("pass scheduler retry diverged from the clean report".into());
            }
        }
        other => return Err(format!("unknown failpoint `{other}`")),
    }
    Ok(())
}
