//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                 # full-scale trace, all experiments
//! repro t4 f12 f13      # only the listed experiments
//! repro --scale 0.1 f7  # scaled-down trace
//! repro --md            # emit EXPERIMENTS.md content (paper vs measured)
//! repro --out DIR       # write each artifact to DIR/<id>.txt
//! repro --list          # list experiment ids
//! repro --pipeline-bench  # time pass pipeline vs pre-refactor baseline
//! repro --ctx-bench     # time columnar context build vs PR 2 path,
//!                       # emit BENCH_context.json
//! repro --ctx-bench --smoke  # small trace, equivalence assertions only
//! repro --epoch-bench   # time monolithic vs epoch-folded vs incremental,
//!                       # emit BENCH_epochs.json
//! repro --epoch-bench --smoke  # same on the small trace (CI mode)
//! repro --pass-bench    # time each pass body reference vs chunked-kernel,
//!                       # emit BENCH_passes.json
//! repro --pass-bench --smoke  # same on the small trace (CI mode)
//! repro --ingest-bench  # time v1 serial vs framed v2 decode and serial
//!                       # vs chunked CSV parse, emit BENCH_ingest.json
//! repro --ingest-bench --smoke  # same on the small trace (CI mode)
//! repro --serve-bench   # concurrent query throughput over the snapshot
//!                       # service, snapshot-isolation hard gate,
//!                       # emit BENCH_serve.json
//! repro --serve-bench --smoke  # same on the small trace (CI mode)
//! repro --telemetry-json FILE  # write the run's span/metric telemetry
//! repro --report-digest # print the golden-trace report digest
//! repro --soak N        # N seeded differential rounds over the variant
//!                       # matrix; writes SOAK_FAILURE.json on divergence
//! repro --soak N --soak-seed 0xBEEF  # replay a specific seed
//! repro --soak N --soak-full --scale 1.0  # weekly paper-scale soak
//! ```

use ddos_analytics::collab::concurrent::CollabAnalysis;
use ddos_analytics::{
    passes, Analysis, AnalysisContext, AnalysisReport, IncrementalPipeline, KernelPolicy,
    PipelineOptions, StreamFold,
};
use ddos_obs::Obs;
use ddos_report::{compare, paper_comparisons, render, EXPERIMENTS};
use ddos_schema::{codec, csv, framed, Seconds};
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;

fn main() {
    let mut scale = 1.0f64;
    let mut ids: Vec<String> = Vec::new();
    let mut emit_md = false;
    let mut pipeline_bench = false;
    let mut ctx_bench = false;
    let mut epoch_bench = false;
    let mut pass_bench = false;
    let mut ingest_bench = false;
    let mut serve_bench = false;
    let mut smoke = false;
    let mut report_digest = false;
    let mut soak_rounds: Option<u32> = None;
    let mut soak_seed: Option<u64> = None;
    let mut soak_full = false;
    let mut scale_set = false;
    let mut out_dir: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
                scale_set = true;
            }
            "--out" => out_dir = Some(args.next().expect("--out takes a directory")),
            "--telemetry-json" => {
                telemetry_out = Some(args.next().expect("--telemetry-json takes a file"));
            }
            "--md" => emit_md = true,
            "--pipeline-bench" => pipeline_bench = true,
            "--ctx-bench" => ctx_bench = true,
            "--epoch-bench" => epoch_bench = true,
            "--pass-bench" => pass_bench = true,
            "--ingest-bench" => ingest_bench = true,
            "--serve-bench" => serve_bench = true,
            "--smoke" => smoke = true,
            "--report-digest" => report_digest = true,
            "--soak" => {
                soak_rounds = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--soak takes a round count"),
                );
            }
            "--soak-seed" => {
                let raw = args.next().expect("--soak-seed takes a seed");
                let parsed = raw
                    .strip_prefix("0x")
                    .or_else(|| raw.strip_prefix("0X"))
                    .map(|hex| u64::from_str_radix(hex, 16).ok())
                    .unwrap_or_else(|| raw.parse().ok());
                soak_seed = Some(parsed.expect("--soak-seed takes a decimal or 0x-hex u64"));
            }
            "--soak-full" => soak_full = true,
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{:<4} {} — {}", e.id, e.title, e.description);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
    }

    if ctx_bench {
        run_ctx_bench(scale, smoke);
        return;
    }
    if epoch_bench {
        run_epoch_bench(scale, smoke);
        return;
    }
    if pass_bench {
        run_pass_bench(scale, smoke);
        return;
    }
    if ingest_bench {
        run_ingest_bench(scale, smoke);
        return;
    }
    if serve_bench {
        run_serve_bench(scale, smoke);
        return;
    }
    if pipeline_bench {
        run_pipeline_bench(scale);
        return;
    }
    if report_digest {
        run_report_digest();
        return;
    }
    if let Some(rounds) = soak_rounds {
        // Soak defaults to the CI smoke scale unless --scale overrides
        // it (weekly paper-scale runs pass --scale 1.0 explicitly).
        let soak_scale = if scale_set { scale } else { 0.05 };
        run_soak_mode(rounds, soak_seed, soak_scale, soak_full, telemetry_out);
        return;
    }

    eprintln!("generating trace at scale {scale}...");
    let t0 = std::time::Instant::now();
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!(
        "generated {} attacks in {:?}; running analyses...",
        trace.dataset.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let report = AnalysisReport::run(&trace.dataset);
    eprintln!("analysis pipeline finished in {:?}\n", t1.elapsed());

    if let Some(path) = &telemetry_out {
        let json = serde_json::to_string_pretty(&report.telemetry).expect("telemetry serializes");
        std::fs::write(path, json).expect("writing telemetry json");
        eprintln!("wrote {path}");
        // Telemetry-only invocation: done once the artifact is written.
        if ids.is_empty() && !emit_md && out_dir.is_none() {
            return;
        }
    }

    if emit_md {
        print!("{}", experiments_markdown(scale, &trace, &report));
        return;
    }

    let selected: Vec<&str> = if ids.is_empty() {
        EXPERIMENTS.iter().map(|e| e.id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("creating --out directory");
    }
    for id in selected {
        match render(id, &trace, &report) {
            Some(out) => {
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.txt");
                    std::fs::write(&path, &out).expect("writing artifact");
                    eprintln!("wrote {path}");
                } else {
                    println!("======================================================");
                    println!("=== {id}");
                    println!("======================================================");
                    println!("{out}");
                }
            }
            None => eprintln!("unknown experiment id {id:?} (try --list)"),
        }
    }
    if let Some(dir) = &out_dir {
        // The comparison summary rides along for free.
        let md = experiments_markdown(scale, &trace, &report);
        let path = format!("{dir}/EXPERIMENTS.md");
        std::fs::write(&path, md).expect("writing comparison");
        eprintln!("wrote {path}");
    }
}

/// Times the pass-based pipeline against the pre-refactor serial path
/// on a freshly generated trace and prints per-pass timings plus the
/// end-to-end speedup.
fn run_pipeline_bench(scale: f64) {
    eprintln!("generating trace at scale {scale}...");
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!("generated {} attacks", trace.dataset.len());
    let ds = &trace.dataset;

    // Warm-up: touch every path once so page cache / allocator state is
    // comparable, then time each.
    let _ = AnalysisReport::run(ds);
    let _ = Analysis::new(ds).parallel(false).run();
    let _ = Analysis::new(ds).baseline().run();

    let t0 = std::time::Instant::now();
    let baseline = Analysis::new(ds).baseline().run();
    let baseline_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let serial = Analysis::new(ds).parallel(false).run();
    let serial_elapsed = t1.elapsed();

    let t2 = std::time::Instant::now();
    let report = AnalysisReport::run(ds);
    let pipeline_elapsed = t2.elapsed();

    // The reports must agree before the timing comparison means anything.
    let a = serde_json::to_string(&baseline).expect("baseline serializes");
    let b = serde_json::to_string(&report).expect("report serializes");
    let c = serde_json::to_string(&serial).expect("serial report serializes");
    assert_eq!(a, b, "pipeline and baseline reports diverged");
    assert_eq!(b, c, "parallel and serial reports diverged");

    // The serial schedule's per-pass numbers are exact (no thread
    // interleaving inflates them), so show that table.
    println!("{}", serial.telemetry.render());
    let base_s = baseline_elapsed.as_secs_f64();
    let serial_s = serial_elapsed.as_secs_f64();
    let pipe_s = pipeline_elapsed.as_secs_f64();
    println!("baseline (pre-refactor serial): {base_s:>8.3} s");
    println!("pass pipeline (serial):         {serial_s:>8.3} s");
    println!("pass pipeline (parallel):       {pipe_s:>8.3} s");
    println!(
        "speedup:                        {:>8.2}x",
        base_s / pipe_s.min(serial_s)
    );
}

/// Times the context build across its three implementations — the PR 2
/// reference path (hash join + scalar trig), the columnar serial build,
/// and the columnar parallel build — asserts all three are
/// analysis-equivalent (dispersion series bit-identical) and the final
/// reports byte-identical, then writes `BENCH_context.json`.
///
/// With `--smoke` the run uses the small simulated trace, performs only
/// the equivalence assertions plus a single timed round, and writes no
/// file — the CI-friendly mode.
fn run_ctx_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let participations: usize = ds.attacks().iter().map(|a| a.sources.len()).sum();
    eprintln!(
        "generated {} attacks, {} bot records, {} participations",
        ds.attacks().len(),
        ds.bots().len(),
        participations
    );

    // Correctness first: the columnar builds must carry the exact
    // analysis inputs of the reference build, bit for bit.
    let reference = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
    let serial = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
    let parallel = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true);
    serial.assert_same_analysis(&reference);
    serial.assert_same_analysis(&parallel);
    drop((reference, serial, parallel));
    eprintln!("context equivalence: reference == columnar serial == columnar parallel");

    // And the reports the builds feed must serialize identically.
    let parallel_report = AnalysisReport::run(ds);
    let serial_report = Analysis::new(ds).parallel(false).run();
    let pj = serde_json::to_string(&parallel_report).expect("report serializes");
    let sj = serde_json::to_string(&serial_report).expect("report serializes");
    assert_eq!(pj, sj, "parallel and serial context reports diverged");
    drop((serial_report, pj, sj));
    eprintln!("report equivalence: parallel == serial");

    // Interleaved rounds (reference, serial, parallel per round) with
    // best-of-N per variant: systematic drift (thermal, noisy-neighbor)
    // hits every variant alike instead of whichever ran last, and the
    // context drop happens outside the timed region.
    let rounds = if smoke { 1 } else { 5 };
    let mut reference_s = f64::MAX;
    let mut serial_s = f64::MAX;
    let mut parallel_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
        reference_s = reference_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));

        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));

        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true);
        parallel_s = parallel_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));
    }
    let mut pipeline_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let report = AnalysisReport::run(ds);
        pipeline_s = pipeline_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(report));
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("context build (best of {rounds}):");
    println!("  reference (PR 2 path):   {reference_s:>8.3} s");
    println!("  columnar serial:         {serial_s:>8.3} s");
    println!("  columnar parallel:       {parallel_s:>8.3} s  ({threads} threads)");
    println!(
        "  speedup (parallel/ref):  {:>8.2}x",
        reference_s / parallel_s
    );
    println!(
        "  resolves/sec (parallel): {:>12.0}",
        participations as f64 / parallel_s
    );
    println!("full pipeline (parallel):  {pipeline_s:>8.3} s");

    if smoke {
        println!("smoke mode: skipping BENCH_context.json");
        return;
    }
    let json = format!(
        "{{\n  \"trace\": {{\n    \"scale\": {},\n    \"attacks\": {},\n    \
         \"bot_records\": {},\n    \"participations\": {}\n  }},\n  \
         \"context_build\": {{\n    \"reference_s\": {:.6},\n    \
         \"columnar_serial_s\": {:.6},\n    \"columnar_parallel_s\": {:.6},\n    \
         \"speedup_serial_vs_reference\": {:.3},\n    \
         \"speedup_parallel_vs_reference\": {:.3},\n    \
         \"resolves_per_sec_parallel\": {:.0}\n  }},\n  \
         \"full_pipeline_parallel_s\": {:.6},\n  \"threads\": {},\n  \
         \"rounds\": {}\n}}\n",
        cfg.scale,
        ds.attacks().len(),
        ds.bots().len(),
        participations,
        reference_s,
        serial_s,
        parallel_s,
        reference_s / serial_s,
        reference_s / parallel_s,
        participations as f64 / parallel_s,
        pipeline_s,
        threads,
        rounds,
    );
    std::fs::write("BENCH_context.json", &json).expect("writing BENCH_context.json");
    eprintln!("wrote BENCH_context.json");
}

/// Times the epoch-sharded engine against the monolithic rebuild —
/// batch fold, incremental total, and the marginal cost of appending
/// one more epoch to an already-folded prefix — asserts every variant
/// serializes byte-identically, and writes `BENCH_epochs.json` (in
/// smoke mode too, flagged `"smoke": true`, so CI uploads a real
/// artifact).
///
/// The headline ratio is `append_one_epoch_s / monolithic_s`: what one
/// more week of trace costs with the epoch engine versus re-running the
/// pre-refactor monolithic pipeline from scratch.
fn run_epoch_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    let epoch_len = Seconds::WEEK;
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let epochs = ds.shards(epoch_len).len();
    eprintln!(
        "generated {} attacks, {} bot records, {} weekly epochs",
        ds.len(),
        ds.bots().len(),
        epochs
    );
    let opts = PipelineOptions::new().telemetry(false);

    // Correctness first: every epoch-engine spelling must serialize
    // byte-identically to the batch pipeline.
    let json = |r: &AnalysisReport| serde_json::to_string(r).expect("report serializes");
    let want = json(&Analysis::new(ds).options(opts).run());
    assert_eq!(
        json(&Analysis::new(ds).options(opts).epochs(epoch_len).run()),
        want,
        "epoch-folded report diverged from batch"
    );
    assert_eq!(
        json(
            &Analysis::new(ds)
                .options(opts)
                .epochs(epoch_len)
                .incremental()
                .run()
        ),
        want,
        "incremental report diverged from batch"
    );
    eprintln!("report equivalence: batch == epoch-folded == incremental");

    // Peak residency of the bounded-memory streaming fold, versus the
    // raw row count a monolithic build holds resident.
    let obs = Obs::enabled();
    let mut fold = StreamFold::new(ds.window());
    for batch in ddos_sim::feed::replay_epochs(ds, epoch_len) {
        fold.push(&batch, &obs);
    }
    let peak_rows = fold.peak_resident_rows();
    let monolithic_rows = (ds.len() + ds.bots().len()) as u64;
    let streamed_ctx = fold
        .finish()
        .expect("trace has at least one epoch")
        .into_context(ds, ArimaSpec::DEFAULT);
    assert_eq!(
        json(&Analysis::over(&streamed_ctx).run()),
        want,
        "streamed report diverged from batch"
    );
    drop(streamed_ctx);
    eprintln!("report equivalence: batch == streamed fold");

    // Warm-up, then interleaved best-of-N rounds: systematic drift hits
    // every variant alike instead of whichever ran last.
    let _ = Analysis::new(ds).baseline().run();
    let rounds = if smoke { 1 } else { 3 };
    let mut monolithic_s = f64::MAX;
    let mut folded_s = f64::MAX;
    let mut incremental_s = f64::MAX;
    let mut append_one_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let r = Analysis::new(ds).baseline().run();
        monolithic_s = monolithic_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = Analysis::new(ds).options(opts).epochs(epoch_len).run();
        folded_s = folded_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = Analysis::new(ds)
            .options(opts)
            .epochs(epoch_len)
            .incremental()
            .run();
        incremental_s = incremental_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        // The marginal epoch: fold everything but the last epoch
        // untimed, then time appending the final one (context build,
        // merge, and the dirty-pass re-run included).
        let mut inc = IncrementalPipeline::new(ds, opts, epoch_len);
        while inc.appended() + 1 < inc.epochs() {
            inc.append_epoch();
        }
        let t = std::time::Instant::now();
        inc.append_epoch();
        append_one_s = append_one_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(inc));
    }

    println!("epoch engine (weekly epochs, best of {rounds}):");
    println!("  monolithic rebuild:        {monolithic_s:>8.3} s");
    println!("  epoch-folded batch:        {folded_s:>8.3} s");
    println!("  incremental (all epochs):  {incremental_s:>8.3} s");
    println!("  append one epoch:          {append_one_s:>8.3} s");
    println!(
        "  append/monolithic ratio:   {:>8.3}  (want < 0.25)",
        append_one_s / monolithic_s
    );
    println!("  peak resident rows:        {peak_rows:>8}  (monolithic holds {monolithic_rows})");
    if !smoke {
        assert!(
            append_one_s < monolithic_s / 4.0,
            "appending one epoch ({append_one_s:.3} s) is not under a quarter \
             of the monolithic rebuild ({monolithic_s:.3} s)"
        );
    }

    let out = format!(
        "{{\n  \"smoke\": {},\n  \"trace\": {{\n    \"scale\": {},\n    \
         \"attacks\": {},\n    \"bot_records\": {},\n    \"epochs\": {}\n  }},\n  \
         \"epoch_len_s\": {},\n  \"rounds\": {},\n  \
         \"monolithic_s\": {:.6},\n  \"epoch_folded_s\": {:.6},\n  \
         \"incremental_total_s\": {:.6},\n  \"append_one_epoch_s\": {:.6},\n  \
         \"append_vs_monolithic\": {:.4},\n  \
         \"peak_resident_rows\": {},\n  \"monolithic_resident_rows\": {}\n}}\n",
        smoke,
        cfg.scale,
        ds.len(),
        ds.bots().len(),
        epochs,
        epoch_len.get(),
        rounds,
        monolithic_s,
        folded_s,
        incremental_s,
        append_one_s,
        append_one_s / monolithic_s,
        peak_rows,
        monolithic_rows,
    );
    std::fs::write("BENCH_epochs.json", &out).expect("writing BENCH_epochs.json");
    eprintln!("wrote BENCH_epochs.json");
}

/// The PR 6 baseline for the end-to-end parallel pipeline at paper
/// scale: `full_pipeline_parallel_s` from `BENCH_context.json` as
/// committed by the PR 6 epoch-engine change (`git show
/// 39da03f:BENCH_context.json`), produced by this binary's
/// `--ctx-bench` on this container. The pass-bench asserts the current
/// kernel pipeline beats it by >= 1.5x. (The in-binary reference
/// policy is a weaker baseline: it reruns PR 6's gated algorithms but
/// inherits PR 7's ungated infrastructure wins, so it understates the
/// release-over-release delta.)
const PR6_PIPELINE_PARALLEL_S: f64 = 0.308603;

/// Times every registered pass body under the [`KernelPolicy::Reference`]
/// path (the PR 6 algorithms, bit for bit) against the chunked-kernel
/// path, plus the end-to-end pipeline under both policies, and writes
/// `BENCH_passes.json` (in smoke mode too, flagged `"smoke": true`).
///
/// Correctness gates run before any timing, in smoke mode too:
/// the serialized report must be byte-identical across the reference,
/// auto, and forced-chunked policies, and the sort-sweep concurrent
/// collaboration detector must reproduce the pairwise scan exactly.
/// In full mode the run additionally asserts the end-to-end speedup
/// target (>= 1.5x vs the committed PR 6 baseline, and no regression
/// vs the in-binary reference policy) and that the sweep scales
/// sub-quadratically (half-trace vs full-trace timing ratio).
fn run_pass_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    eprintln!("generated {} attacks", ds.len());

    // Correctness first: the chunked kernels must not move a single
    // report byte, under any chunking.
    let json = |r: &AnalysisReport| serde_json::to_string(r).expect("report serializes");
    let run_with =
        |kernels: KernelPolicy| Analysis::new(ds).telemetry(false).kernels(kernels).run();
    let want = json(&run_with(KernelPolicy::Reference));
    for policy in [
        KernelPolicy::Auto,
        KernelPolicy::Chunked(1),
        KernelPolicy::Chunked(3),
    ] {
        assert_eq!(
            json(&run_with(policy)),
            want,
            "{policy:?} report diverged from the reference policy"
        );
    }
    eprintln!("report equivalence: reference == auto == chunked(1) == chunked(3)");

    // The sweep detector must reproduce the pairwise scan exactly —
    // same pairs, same events, same histogram maps.
    let kernel_ctx = AnalysisContext::build(ds, ArimaSpec::DEFAULT);
    let reference_ctx =
        AnalysisContext::build(ds, ArimaSpec::DEFAULT).with_kernels(KernelPolicy::Reference);
    let sweep = serde_json::to_string(&CollabAnalysis::compute_ctx(&kernel_ctx))
        .expect("collab serializes");
    let pairwise = serde_json::to_string(&CollabAnalysis::compute_ctx_reference(&kernel_ctx))
        .expect("collab serializes");
    assert_eq!(
        sweep, pairwise,
        "sort-sweep diverged from the pairwise scan"
    );
    eprintln!("collaboration equivalence: sort-sweep == pairwise scan");

    // Per-pass timings: run every registered pass body against a fully
    // populated partial report (so dependency slots are present), under
    // both policies, interleaved best-of-N.
    let obs = Obs::disabled();
    let partial = passes::execute(&kernel_ctx, false, &obs);
    let rounds = if smoke { 1 } else { 5 };
    let n = passes::REGISTRY.len();
    let mut reference_mins = vec![f64::MAX; n];
    let mut kernel_mins = vec![f64::MAX; n];
    for _ in 0..rounds {
        for (i, pass) in passes::REGISTRY.iter().enumerate() {
            let t = std::time::Instant::now();
            let out = (pass.run)(&reference_ctx, &partial, &obs);
            reference_mins[i] = reference_mins[i].min(t.elapsed().as_secs_f64());
            drop(std::hint::black_box(out));

            let t = std::time::Instant::now();
            let out = (pass.run)(&kernel_ctx, &partial, &obs);
            kernel_mins[i] = kernel_mins[i].min(t.elapsed().as_secs_f64());
            drop(std::hint::black_box(out));
        }
    }

    // End to end: two baselines. The in-binary one pins the pipeline to
    // the reference policy — PR 6's gated algorithms, but sharing PR 7's
    // ungated infrastructure (fused resolver scheduling, scratch reuse),
    // so it understates the release-over-release delta; it is the
    // bit-identity anchor for the per-pass table above. The asserted
    // baseline is PR 6's committed end-to-end figure (see
    // `PR6_PIPELINE_PARALLEL_S`), measured by this same binary's
    // `--ctx-bench` on this container at the PR 6 commit.
    let _ = run_with(KernelPolicy::Reference);
    let _ = run_with(KernelPolicy::Auto);
    let mut baseline_s = f64::MAX;
    let mut pipeline_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let r = run_with(KernelPolicy::Reference);
        baseline_s = baseline_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = run_with(KernelPolicy::Auto);
        pipeline_s = pipeline_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));
    }
    let end_to_end = baseline_s / pipeline_s;
    let vs_pr6 = PR6_PIPELINE_PARALLEL_S / pipeline_s;

    // Scaling check: the sweep's cost on a half-size trace versus the
    // full trace. A quadratic detector doubles its ratio with size; the
    // sweep must stay near-linear in the per-target slice lengths.
    let half_trace = generate(&SimConfig {
        scale: cfg.scale * 0.5,
        ..cfg
    });
    let half_ctx = AnalysisContext::build(&half_trace.dataset, ArimaSpec::DEFAULT);
    let mut half_s = f64::MAX;
    let mut full_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let c = CollabAnalysis::compute_ctx(&half_ctx);
        half_s = half_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(c));

        let t = std::time::Instant::now();
        let c = CollabAnalysis::compute_ctx(&kernel_ctx);
        full_s = full_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(c));
    }
    let n_half = half_trace.dataset.len();
    let n_full = ds.len();
    let size_ratio = n_full as f64 / n_half as f64;
    let time_ratio = full_s / half_s;

    println!("pass kernels (best of {rounds}):");
    println!(
        "  {:<22} {:>12} {:>12} {:>9}",
        "pass", "reference_us", "kernel_us", "speedup"
    );
    for (i, pass) in passes::REGISTRY.iter().enumerate() {
        println!(
            "  {:<22} {:>12.1} {:>12.1} {:>8.2}x",
            pass.name,
            reference_mins[i] * 1e6,
            kernel_mins[i] * 1e6,
            reference_mins[i] / kernel_mins[i]
        );
    }
    println!("end to end:");
    println!("  reference policy (in-binary): {baseline_s:>8.3} s");
    println!("  chunked kernels (auto):       {pipeline_s:>8.3} s");
    println!("  speedup (in-binary):          {end_to_end:>8.2}x");
    println!("  PR 6 committed baseline:      {PR6_PIPELINE_PARALLEL_S:>8.3} s");
    println!("  speedup vs PR 6:              {vs_pr6:>8.2}x  (want >= 1.5)");
    println!("collaboration sweep scaling:");
    println!("  half trace ({n_half} attacks):  {:>10.6} s", half_s);
    println!("  full trace ({n_full} attacks):  {:>10.6} s", full_s);
    println!(
        "  time ratio {time_ratio:.2} for size ratio {size_ratio:.2} \
         (quadratic would give {:.2})",
        size_ratio * size_ratio
    );
    if !smoke {
        assert!(
            vs_pr6 >= 1.5,
            "end-to-end speedup vs the PR 6 baseline is {vs_pr6:.2}x \
             ({pipeline_s:.3} s vs {PR6_PIPELINE_PARALLEL_S:.3} s), under the 1.5x target"
        );
        assert!(
            end_to_end >= 1.0,
            "chunked kernels regressed below the in-binary reference policy \
             ({pipeline_s:.3} s vs {baseline_s:.3} s)"
        );
        assert!(
            time_ratio < size_ratio * size_ratio * 0.75,
            "sweep time ratio {time_ratio:.2} for size ratio {size_ratio:.2} \
             is not clearly sub-quadratic"
        );
    }

    let mut rows = String::new();
    for (i, pass) in passes::REGISTRY.iter().enumerate() {
        rows.push_str(&format!(
            "    {{ \"name\": \"{}\", \"reference_s\": {:.6}, \"kernel_s\": {:.6}, \
             \"speedup\": {:.3} }}{}\n",
            pass.name,
            reference_mins[i],
            kernel_mins[i],
            reference_mins[i] / kernel_mins[i],
            if i + 1 == n { "" } else { "," }
        ));
    }
    let out = format!(
        "{{\n  \"smoke\": {},\n  \"trace\": {{\n    \"scale\": {},\n    \
         \"attacks\": {}\n  }},\n  \"rounds\": {},\n  \"passes\": [\n{}  ],\n  \
         \"end_to_end\": {{\n    \"reference_policy_s\": {:.6},\n    \
         \"kernel_policy_s\": {:.6},\n    \"speedup_in_binary\": {:.3},\n    \
         \"pr6_baseline_s\": {:.6},\n    \"speedup_vs_pr6\": {:.3}\n  }},\n  \
         \"collab_scaling\": {{\n    \"half_attacks\": {},\n    \
         \"full_attacks\": {},\n    \"half_s\": {:.6},\n    \"full_s\": {:.6},\n    \
         \"size_ratio\": {:.3},\n    \"time_ratio\": {:.3}\n  }}\n}}\n",
        smoke,
        cfg.scale,
        n_full,
        rounds,
        rows,
        baseline_s,
        pipeline_s,
        end_to_end,
        PR6_PIPELINE_PARALLEL_S,
        vs_pr6,
        n_half,
        n_full,
        half_s,
        full_s,
        size_ratio,
        time_ratio,
    );
    std::fs::write("BENCH_passes.json", &out).expect("writing BENCH_passes.json");
    eprintln!("wrote BENCH_passes.json");
}

/// Times trace ingest across the v1 serial codec, the framed v2
/// container, and the CSV importer (serial vs chunked), and writes
/// `BENCH_ingest.json` (in smoke mode too, flagged `"smoke": true`).
///
/// Correctness gates run before any timing, in smoke mode too: the v1
/// decode, the v2 decode (auto and forced multi-worker), and the
/// memory-mapped [`Dataset::open`] of both on-disk formats must all
/// yield bit-identical datasets (pinned by re-encoding through the v1
/// codec), and the chunked CSV parse must match the serial parse row
/// for row. In full mode the run additionally hard-asserts the framed
/// v2 decode beats the v1 serial decode by >= 2x.
fn run_ingest_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    eprintln!("generated {} attacks", ds.len());

    let v1 = codec::encode(ds);
    let v2 = framed::encode(ds);

    // Correctness first: every ingest path must reproduce the dataset
    // bit for bit. Re-encoding through the v1 codec is the canonical
    // fingerprint — identical bytes mean identical records in
    // identical order.
    let fingerprint = |d: &ddos_schema::Dataset| codec::encode(d);
    let d1 = codec::decode(&v1).expect("v1 decode");
    assert_eq!(fingerprint(&d1), v1, "v1 round trip diverged");
    let (d2, stats) = framed::decode_with_stats(&v2).expect("v2 decode");
    assert_eq!(fingerprint(&d2), v1, "framed v2 decode diverged from v1");
    let (d2mt, _) = framed::decode_with_workers(&v2, 4).expect("v2 multi-worker decode");
    assert_eq!(
        fingerprint(&d2mt),
        v1,
        "multi-worker v2 decode diverged from serial"
    );
    let dir = std::env::temp_dir();
    let p1 = dir.join("repro_ingest_v1.ddtl");
    let p2 = dir.join("repro_ingest_v2.ddtl");
    std::fs::write(&p1, &v1).expect("writing v1 temp trace");
    std::fs::write(&p2, &v2).expect("writing v2 temp trace");
    for p in [&p1, &p2] {
        let d = ddos_schema::Dataset::open(p).expect("mmap open");
        assert_eq!(
            fingerprint(&d),
            v1,
            "mmap decode of {} diverged",
            p.display()
        );
    }
    eprintln!("decode equivalence: v1 == v2 == v2(workers=4) == mmap(v1) == mmap(v2)");

    let csv_text = csv::attacks_to_csv(ds.attacks());
    let serial = csv::attacks_from_csv(&csv_text).expect("serial CSV parse");
    let chunked = csv::attacks_from_csv_chunked_with(&csv_text, 4).expect("chunked CSV parse");
    assert_eq!(serial, chunked, "chunked CSV parse diverged from serial");
    assert_eq!(
        serial.as_slice(),
        ds.attacks(),
        "CSV round trip diverged from the original records"
    );
    eprintln!("csv equivalence: serial == chunked == original records");

    // Interleaved best-of-N: one warm-up pass of every path, then each
    // round times every path back to back so cache and allocator state
    // stay comparable.
    let rounds = if smoke { 1 } else { 5 };
    drop(std::hint::black_box(codec::decode(&v1).unwrap()));
    drop(std::hint::black_box(framed::decode(&v2).unwrap()));
    drop(std::hint::black_box(
        ddos_schema::Dataset::open(&p2).unwrap(),
    ));
    drop(std::hint::black_box(
        csv::attacks_from_csv(&csv_text).unwrap(),
    ));
    drop(std::hint::black_box(
        csv::attacks_from_csv_chunked(&csv_text).unwrap(),
    ));
    let mut v1_s = f64::MAX;
    let mut v2_s = f64::MAX;
    let mut mmap_s = f64::MAX;
    let mut csv_serial_s = f64::MAX;
    let mut csv_chunked_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let d = codec::decode(&v1).unwrap();
        v1_s = v1_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(d));

        let t = std::time::Instant::now();
        let d = framed::decode(&v2).unwrap();
        v2_s = v2_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(d));

        let t = std::time::Instant::now();
        let d = ddos_schema::Dataset::open(&p2).unwrap();
        mmap_s = mmap_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(d));

        let t = std::time::Instant::now();
        let r = csv::attacks_from_csv(&csv_text).unwrap();
        csv_serial_s = csv_serial_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = csv::attacks_from_csv_chunked(&csv_text).unwrap();
        csv_chunked_s = csv_chunked_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));
    }
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);

    let decode_speedup = v1_s / v2_s;
    let csv_speedup = csv_serial_s / csv_chunked_s;
    println!("ingest (best of {rounds}):");
    println!(
        "  trace: {} attacks, v1 {} KiB, v2 {} KiB in {} frames",
        ds.len(),
        v1.len() / 1024,
        v2.len() / 1024,
        stats.frames
    );
    println!("  v1 serial decode:   {:>10.6} s", v1_s);
    println!(
        "  v2 framed decode:   {:>10.6} s  ({decode_speedup:.2}x vs v1, {} workers)",
        v2_s, stats.workers
    );
    println!("  v2 mmap open:       {:>10.6} s", mmap_s);
    println!("  csv serial parse:   {:>10.6} s", csv_serial_s);
    println!(
        "  csv chunked parse:  {:>10.6} s  ({csv_speedup:.2}x vs serial)",
        csv_chunked_s
    );
    if !smoke {
        assert!(
            decode_speedup >= 2.0,
            "framed v2 decode speedup is {decode_speedup:.2}x \
             ({v2_s:.6} s vs {v1_s:.6} s), under the 2x target"
        );
    }

    let out = format!(
        "{{\n  \"smoke\": {},\n  \"trace\": {{\n    \"scale\": {},\n    \
         \"attacks\": {},\n    \"v1_bytes\": {},\n    \"v2_bytes\": {},\n    \
         \"v2_frames\": {}\n  }},\n  \"rounds\": {},\n  \"decode\": {{\n    \
         \"v1_serial_s\": {:.6},\n    \"v2_framed_s\": {:.6},\n    \
         \"v2_mmap_open_s\": {:.6},\n    \"workers\": {},\n    \
         \"speedup\": {:.3}\n  }},\n  \"csv\": {{\n    \
         \"serial_s\": {:.6},\n    \"chunked_s\": {:.6},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        smoke,
        cfg.scale,
        ds.len(),
        v1.len(),
        v2.len(),
        stats.frames,
        rounds,
        v1_s,
        v2_s,
        mmap_s,
        stats.workers,
        decode_speedup,
        csv_serial_s,
        csv_chunked_s,
        csv_speedup,
    );
    std::fs::write("BENCH_ingest.json", &out).expect("writing BENCH_ingest.json");
    eprintln!("wrote BENCH_ingest.json");
}

/// Benchmarks the snapshot service under concurrent load and hard-gates
/// its isolation contract, writing `BENCH_serve.json` (in smoke mode
/// too, flagged `"smoke": true`, so CI uploads a real artifact).
///
/// Correctness gates run before any number is reported, in smoke mode
/// too:
///
/// 1. **Snapshot isolation under concurrency** — reader threads hammer
///    queries while the writer appends every epoch; every watermark any
///    reader observed must digest byte-identically to a fresh
///    monolithic run over the same epoch prefix.
/// 2. **Fault atomicity** (debug builds; the seam is compiled out of
///    release) — an `epoch/merge` fault injected mid-serve leaves the
///    published snapshot byte-identical, and the retry converges to the
///    clean full report.
fn run_serve_bench(scale: f64, smoke: bool) {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};

    use ddos_serve::AnalysisService;

    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    let epoch_len = Seconds::WEEK;
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let epochs = ds.shards(epoch_len).len();
    eprintln!(
        "generated {} attacks, {} bot records, {} weekly epochs",
        ds.len(),
        ds.bots().len(),
        epochs
    );
    let digest = |r: &AnalysisReport| {
        ddos_obs::fnv1a_64_hex(
            serde_json::to_string(r)
                .expect("report serializes")
                .as_bytes(),
        )
    };

    // Phase 1: concurrent append + query. The writer ingests every
    // epoch; readers answer typed queries throughout and record the
    // snapshot digest of each watermark they observe.
    let obs = Obs::enabled();
    let service = AnalysisService::new(ds, PipelineOptions::default(), epoch_len, &obs);
    let reader_threads = 4usize;
    let done = AtomicBool::new(false);
    let t0 = std::time::Instant::now();
    let (append_total_s, reader_results) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let t = std::time::Instant::now();
            service.ingest_all().expect("clean ingest");
            done.store(true, Ordering::Release);
            t.elapsed().as_secs_f64()
        });
        let readers: Vec<_> = (0..reader_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut typed_queries = 0u64;
                    let mut last = 0usize;
                    let mut digests: BTreeMap<usize, String> = BTreeMap::new();
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        // One rotating typed query per spin, answered
                        // from whatever snapshot is published.
                        let answered = match typed_queries % 4 {
                            0 => service.top_targets(5).map(|a| a.watermark),
                            1 => service.family_breakdown().map(|a| a.watermark),
                            2 => service.shift_series().map(|a| a.watermark),
                            _ => service.blacklist_verdicts().map(|a| a.watermark),
                        };
                        if let Some(watermark) = answered {
                            typed_queries += 1;
                            assert!(watermark >= last, "watermark went backwards");
                            last = watermark;
                        }
                        if let Some(snap) = service.snapshot() {
                            digests
                                .entry(snap.watermark)
                                .or_insert_with(|| digest(&snap.report));
                        }
                        if finished {
                            break;
                        }
                    }
                    (typed_queries, digests)
                })
            })
            .collect();
        let append_total_s = writer.join().expect("writer thread");
        let results: Vec<_> = readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .collect();
        (append_total_s, results)
    });
    let concurrent_s = t0.elapsed().as_secs_f64();
    let typed_queries: u64 = reader_results.iter().map(|(n, _)| n).sum();
    let mut observed: BTreeMap<usize, String> = BTreeMap::new();
    for (_, digests) in &reader_results {
        for (w, d) in digests {
            match observed.get(w) {
                None => {
                    observed.insert(*w, d.clone());
                }
                Some(seen) => {
                    assert_eq!(seen, d, "two readers saw different bytes at watermark {w}")
                }
            }
        }
    }
    assert!(
        observed.contains_key(&epochs),
        "no reader observed the final watermark"
    );

    // The hard gate: every observed watermark must answer exactly like
    // a fresh monolithic run over the same epoch prefix.
    for (w, got) in &observed {
        let fresh = digest(&Analysis::new(&ds.epoch_prefix(epoch_len, *w)).run());
        assert_eq!(
            got, &fresh,
            "watermark {w} served under concurrent append diverged from a \
             fresh {w}-epoch monolithic run"
        );
    }
    eprintln!(
        "snapshot isolation: {} watermarks observed under concurrent \
         append, all byte-identical to fresh prefix runs",
        observed.len()
    );

    // Phase 2: fault atomicity through the serve path (debug only —
    // the failpoint seam is compiled out of release builds).
    if ddos_failpoints::ACTIVE {
        let fault_obs = Obs::enabled();
        let faulted = AnalysisService::new(ds, PipelineOptions::default(), epoch_len, &fault_obs);
        faulted
            .try_append()
            .expect("clean append")
            .expect("epoch 0");
        faulted
            .try_append()
            .expect("clean append")
            .expect("epoch 1");
        let before = faulted.snapshot().expect("published");
        let before_digest = digest(&before.report);
        {
            let _scope = ddos_failpoints::FailPlan::new()
                .fail_nth(ddos_failpoints::names::EPOCH_MERGE, 0)
                .install();
            faulted
                .try_append()
                .expect_err("injected epoch/merge fault must surface");
        }
        let after = faulted.snapshot().expect("still published");
        assert_eq!(
            after.watermark, before.watermark,
            "fault moved the watermark"
        );
        assert_eq!(
            digest(&after.report),
            before_digest,
            "fault disturbed the published snapshot"
        );
        faulted.ingest_all().expect("clean retry");
        assert_eq!(
            digest(&faulted.snapshot().expect("published").report),
            *observed.get(&epochs).expect("final watermark verified"),
            "post-fault recovery diverged from the clean full report"
        );
        eprintln!("fault atomicity: faulted append left the snapshot untouched, retry converged");
    } else {
        eprintln!("fault atomicity: skipped (release build: fault seam compiled out)");
    }

    let queries_answered = obs.counter(ddos_obs::names::SERVE_QUERIES_ANSWERED).get();
    let queries_per_sec = typed_queries as f64 / concurrent_s;
    let appends_per_sec = epochs as f64 / append_total_s;
    println!("serve bench (weekly epochs, {reader_threads} readers):");
    println!("  append all {epochs} epochs:      {append_total_s:>8.3} s");
    println!("  typed queries answered:    {typed_queries:>8}");
    println!("  query throughput:          {queries_per_sec:>8.0} /s (concurrent with appends)");
    println!("  watermarks verified:       {:>8}", observed.len());
    if !smoke {
        assert!(
            queries_per_sec > 1_000.0,
            "snapshot queries under concurrent append fell below 1k/s \
             ({queries_per_sec:.0}/s) — reads are blocking on the writer"
        );
    }

    let out = format!(
        "{{\n  \"smoke\": {},\n  \"trace\": {{\n    \"scale\": {},\n    \
         \"attacks\": {},\n    \"bot_records\": {},\n    \"epochs\": {}\n  }},\n  \
         \"epoch_len_s\": {},\n  \"reader_threads\": {},\n  \
         \"append_total_s\": {:.6},\n  \"appends_per_sec\": {:.3},\n  \
         \"typed_queries\": {},\n  \"queries_answered\": {},\n  \
         \"queries_per_sec\": {:.1},\n  \"verified_watermarks\": {}\n}}\n",
        smoke,
        cfg.scale,
        ds.len(),
        ds.bots().len(),
        epochs,
        epoch_len.get(),
        reader_threads,
        append_total_s,
        appends_per_sec,
        typed_queries,
        queries_answered,
        queries_per_sec,
        observed.len(),
    );
    std::fs::write("BENCH_serve.json", &out).expect("writing BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
}

/// Prints the FNV-1a 64 digest of the golden trace's full report — the
/// value `tests/golden/report_small.digest` pins. Regenerate the file
/// with `repro --report-digest > tests/golden/report_small.digest`
/// after an intentional report change.
fn run_report_digest() {
    let cfg = SimConfig::small();
    let trace = generate(&cfg);
    let report = AnalysisReport::run(&trace.dataset);
    let json = serde_json::to_string(&report).expect("report serializes");
    println!("{}", ddos_obs::fnv1a_64_hex(json.as_bytes()));
    eprintln!(
        "golden trace: scale {}, seed {:#x}, {} attacks, {} report bytes",
        cfg.scale,
        cfg.seed,
        trace.dataset.len(),
        json.len()
    );
}

/// `--soak N`: seeded differential soak over the variant matrix (see
/// `ddos-testkit`). Green rounds print a table row each; the first
/// divergence writes `SOAK_FAILURE.json` (the CI artifact), prints the
/// one-line repro command, and exits non-zero.
fn run_soak_mode(
    rounds: u32,
    base_seed: Option<u64>,
    scale: f64,
    full_matrix: bool,
    telemetry_out: Option<String>,
) {
    let opts = ddos_testkit::SoakOptions {
        rounds,
        base_seed: base_seed.unwrap_or(ddos_testkit::SoakOptions::default().base_seed),
        scale,
        full_matrix,
        faults: true,
    };
    eprintln!(
        "soak: {} rounds, base seed {:#x}, scale {}, {} matrix, faults {}",
        opts.rounds,
        opts.base_seed,
        opts.scale,
        if opts.full_matrix { "full" } else { "curated" },
        if ddos_testkit::failpoints::ACTIVE {
            "on"
        } else {
            "off (release build)"
        },
    );
    let obs = Obs::enabled();
    println!("round  seed                cells  serve  probe                  digest");
    let result = ddos_testkit::run_soak(&opts, &obs, |r| {
        println!(
            "{:<5}  {:#018x}  {:<5}  {:<5}  {:<21}  {}",
            r.round,
            r.seed,
            r.cells,
            r.serve_epochs,
            r.probed.as_deref().unwrap_or("-"),
            r.digest
        );
    });
    if let Some(path) = &telemetry_out {
        let telemetry = obs.finish(false);
        let json = serde_json::to_string_pretty(&telemetry).expect("telemetry serializes");
        std::fs::write(path, json).expect("writing telemetry json");
        eprintln!("wrote {path}");
    }
    match result {
        Ok(summary) => {
            eprintln!(
                "soak green: {} rounds, all cells agreed",
                summary.rounds.len()
            );
        }
        Err(failure) => {
            failure
                .write_bundle("SOAK_FAILURE.json")
                .expect("writing SOAK_FAILURE.json");
            eprintln!(
                "soak FAILED at round {} (cell `{}`): {}",
                failure.round, failure.cell, failure.detail
            );
            eprintln!("  expected: {}", failure.expected);
            eprintln!("  got:      {}", failure.got);
            eprintln!("  bundle:   SOAK_FAILURE.json");
            eprintln!("  {}", failure.repro_hint());
            std::process::exit(1);
        }
    }
}

/// Renders the EXPERIMENTS.md body from the comparison rows.
fn experiments_markdown(
    scale: f64,
    trace: &ddos_sim::GeneratedTrace,
    report: &AnalysisReport,
) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs measured\n\n");
    out.push_str(&format!(
        "Generated by `cargo run --release -p bench --bin repro -- --md` \
         on a scale-{scale} trace (seed {:#x}, {} attacks).\n\n",
        SimConfig::default().seed,
        trace.dataset.len()
    ));
    out.push_str(
        "The dataset is synthetic (see DESIGN.md §1): quantities marked as \
         *calibrated* in DESIGN.md §5 match by construction; everything else \
         is emergent from the generative model and the analysis pipeline. \
         The `verdict` column applies the tolerance listed per quantity — \
         tight for calibrated inputs, loose for emergent results where only \
         the *shape* (who wins, rough factor) is claimed.\n\n",
    );
    let sections = paper_comparisons(trace, report);
    let mut ok = 0usize;
    let mut total = 0usize;
    for (title, rows) in &sections {
        out.push_str(&compare::render_markdown(title, rows));
        out.push('\n');
        ok += rows.iter().filter(|r| r.holds()).count();
        total += rows.len();
    }
    out.push_str(&format!(
        "## Overall\n\n{ok} of {total} compared quantities within tolerance.\n\n\
         Known deviations and paper inconsistencies are discussed in \
         DESIGN.md (calibration rules) and the module docs of \
         `ddos-sim::calibration`.\n",
    ));
    out
}
