//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                 # full-scale trace, all experiments
//! repro t4 f12 f13      # only the listed experiments
//! repro --scale 0.1 f7  # scaled-down trace
//! repro --md            # emit EXPERIMENTS.md content (paper vs measured)
//! repro --out DIR       # write each artifact to DIR/<id>.txt
//! repro --list          # list experiment ids
//! repro --pipeline-bench  # time pass pipeline vs pre-refactor baseline
//! repro --ctx-bench     # time columnar context build vs PR 2 path,
//!                       # emit BENCH_context.json
//! repro --ctx-bench --smoke  # small trace, equivalence assertions only
//! repro --epoch-bench   # time monolithic vs epoch-folded vs incremental,
//!                       # emit BENCH_epochs.json
//! repro --epoch-bench --smoke  # same on the small trace (CI mode)
//! repro --telemetry-json FILE  # write the run's span/metric telemetry
//! repro --report-digest # print the golden-trace report digest
//! ```

use ddos_analytics::{
    AnalysisContext, AnalysisReport, IncrementalPipeline, PipelineOptions, StreamFold,
};
use ddos_obs::Obs;
use ddos_report::{compare, paper_comparisons, render, EXPERIMENTS};
use ddos_schema::Seconds;
use ddos_sim::{generate, SimConfig};
use ddos_stats::ArimaSpec;

fn main() {
    let mut scale = 1.0f64;
    let mut ids: Vec<String> = Vec::new();
    let mut emit_md = false;
    let mut pipeline_bench = false;
    let mut ctx_bench = false;
    let mut epoch_bench = false;
    let mut smoke = false;
    let mut report_digest = false;
    let mut out_dir: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--out" => out_dir = Some(args.next().expect("--out takes a directory")),
            "--telemetry-json" => {
                telemetry_out = Some(args.next().expect("--telemetry-json takes a file"));
            }
            "--md" => emit_md = true,
            "--pipeline-bench" => pipeline_bench = true,
            "--ctx-bench" => ctx_bench = true,
            "--epoch-bench" => epoch_bench = true,
            "--smoke" => smoke = true,
            "--report-digest" => report_digest = true,
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{:<4} {} — {}", e.id, e.title, e.description);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
    }

    if ctx_bench {
        run_ctx_bench(scale, smoke);
        return;
    }
    if epoch_bench {
        run_epoch_bench(scale, smoke);
        return;
    }
    if pipeline_bench {
        run_pipeline_bench(scale);
        return;
    }
    if report_digest {
        run_report_digest();
        return;
    }

    eprintln!("generating trace at scale {scale}...");
    let t0 = std::time::Instant::now();
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!(
        "generated {} attacks in {:?}; running analyses...",
        trace.dataset.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let report = AnalysisReport::run(&trace.dataset);
    eprintln!("analysis pipeline finished in {:?}\n", t1.elapsed());

    if let Some(path) = &telemetry_out {
        let json = serde_json::to_string_pretty(&report.telemetry).expect("telemetry serializes");
        std::fs::write(path, json).expect("writing telemetry json");
        eprintln!("wrote {path}");
        // Telemetry-only invocation: done once the artifact is written.
        if ids.is_empty() && !emit_md && out_dir.is_none() {
            return;
        }
    }

    if emit_md {
        print!("{}", experiments_markdown(scale, &trace, &report));
        return;
    }

    let selected: Vec<&str> = if ids.is_empty() {
        EXPERIMENTS.iter().map(|e| e.id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("creating --out directory");
    }
    for id in selected {
        match render(id, &trace, &report) {
            Some(out) => {
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.txt");
                    std::fs::write(&path, &out).expect("writing artifact");
                    eprintln!("wrote {path}");
                } else {
                    println!("======================================================");
                    println!("=== {id}");
                    println!("======================================================");
                    println!("{out}");
                }
            }
            None => eprintln!("unknown experiment id {id:?} (try --list)"),
        }
    }
    if let Some(dir) = &out_dir {
        // The comparison summary rides along for free.
        let md = experiments_markdown(scale, &trace, &report);
        let path = format!("{dir}/EXPERIMENTS.md");
        std::fs::write(&path, md).expect("writing comparison");
        eprintln!("wrote {path}");
    }
}

/// Times the pass-based pipeline against the pre-refactor serial path
/// on a freshly generated trace and prints per-pass timings plus the
/// end-to-end speedup.
fn run_pipeline_bench(scale: f64) {
    eprintln!("generating trace at scale {scale}...");
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!("generated {} attacks", trace.dataset.len());
    let ds = &trace.dataset;
    let serial_opts = PipelineOptions {
        parallel: false,
        ..PipelineOptions::default()
    };

    // Warm-up: touch every path once so page cache / allocator state is
    // comparable, then time each.
    let _ = AnalysisReport::run(ds);
    let _ = AnalysisReport::run_opts(ds, serial_opts);
    let _ = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);

    let t0 = std::time::Instant::now();
    let baseline = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);
    let baseline_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let serial = AnalysisReport::run_opts(ds, serial_opts);
    let serial_elapsed = t1.elapsed();

    let t2 = std::time::Instant::now();
    let report = AnalysisReport::run(ds);
    let pipeline_elapsed = t2.elapsed();

    // The reports must agree before the timing comparison means anything.
    let a = serde_json::to_string(&baseline).expect("baseline serializes");
    let b = serde_json::to_string(&report).expect("report serializes");
    let c = serde_json::to_string(&serial).expect("serial report serializes");
    assert_eq!(a, b, "pipeline and baseline reports diverged");
    assert_eq!(b, c, "parallel and serial reports diverged");

    // The serial schedule's per-pass numbers are exact (no thread
    // interleaving inflates them), so show that table.
    println!("{}", serial.telemetry.render());
    let base_s = baseline_elapsed.as_secs_f64();
    let serial_s = serial_elapsed.as_secs_f64();
    let pipe_s = pipeline_elapsed.as_secs_f64();
    println!("baseline (pre-refactor serial): {base_s:>8.3} s");
    println!("pass pipeline (serial):         {serial_s:>8.3} s");
    println!("pass pipeline (parallel):       {pipe_s:>8.3} s");
    println!(
        "speedup:                        {:>8.2}x",
        base_s / pipe_s.min(serial_s)
    );
}

/// Times the context build across its three implementations — the PR 2
/// reference path (hash join + scalar trig), the columnar serial build,
/// and the columnar parallel build — asserts all three are
/// analysis-equivalent (dispersion series bit-identical) and the final
/// reports byte-identical, then writes `BENCH_context.json`.
///
/// With `--smoke` the run uses the small simulated trace, performs only
/// the equivalence assertions plus a single timed round, and writes no
/// file — the CI-friendly mode.
fn run_ctx_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let participations: usize = ds.attacks().iter().map(|a| a.sources.len()).sum();
    eprintln!(
        "generated {} attacks, {} bot records, {} participations",
        ds.attacks().len(),
        ds.bots().len(),
        participations
    );

    // Correctness first: the columnar builds must carry the exact
    // analysis inputs of the reference build, bit for bit.
    let reference = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
    let serial = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
    let parallel = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true);
    serial.assert_same_analysis(&reference);
    serial.assert_same_analysis(&parallel);
    drop((reference, serial, parallel));
    eprintln!("context equivalence: reference == columnar serial == columnar parallel");

    // And the reports the builds feed must serialize identically.
    let parallel_report = AnalysisReport::run(ds);
    let serial_report = AnalysisReport::run_opts(
        ds,
        PipelineOptions {
            parallel: false,
            ..PipelineOptions::default()
        },
    );
    let pj = serde_json::to_string(&parallel_report).expect("report serializes");
    let sj = serde_json::to_string(&serial_report).expect("report serializes");
    assert_eq!(pj, sj, "parallel and serial context reports diverged");
    drop((serial_report, pj, sj));
    eprintln!("report equivalence: parallel == serial");

    // Interleaved rounds (reference, serial, parallel per round) with
    // best-of-N per variant: systematic drift (thermal, noisy-neighbor)
    // hits every variant alike instead of whichever ran last, and the
    // context drop happens outside the timed region.
    let rounds = if smoke { 1 } else { 5 };
    let mut reference_s = f64::MAX;
    let mut serial_s = f64::MAX;
    let mut parallel_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT);
        reference_s = reference_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));

        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false);
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));

        let t = std::time::Instant::now();
        let ctx = AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true);
        parallel_s = parallel_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(ctx));
    }
    let mut pipeline_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let report = AnalysisReport::run(ds);
        pipeline_s = pipeline_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(report));
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("context build (best of {rounds}):");
    println!("  reference (PR 2 path):   {reference_s:>8.3} s");
    println!("  columnar serial:         {serial_s:>8.3} s");
    println!("  columnar parallel:       {parallel_s:>8.3} s  ({threads} threads)");
    println!(
        "  speedup (parallel/ref):  {:>8.2}x",
        reference_s / parallel_s
    );
    println!(
        "  resolves/sec (parallel): {:>12.0}",
        participations as f64 / parallel_s
    );
    println!("full pipeline (parallel):  {pipeline_s:>8.3} s");

    if smoke {
        println!("smoke mode: skipping BENCH_context.json");
        return;
    }
    let json = format!(
        "{{\n  \"trace\": {{\n    \"scale\": {},\n    \"attacks\": {},\n    \
         \"bot_records\": {},\n    \"participations\": {}\n  }},\n  \
         \"context_build\": {{\n    \"reference_s\": {:.6},\n    \
         \"columnar_serial_s\": {:.6},\n    \"columnar_parallel_s\": {:.6},\n    \
         \"speedup_serial_vs_reference\": {:.3},\n    \
         \"speedup_parallel_vs_reference\": {:.3},\n    \
         \"resolves_per_sec_parallel\": {:.0}\n  }},\n  \
         \"full_pipeline_parallel_s\": {:.6},\n  \"threads\": {},\n  \
         \"rounds\": {}\n}}\n",
        cfg.scale,
        ds.attacks().len(),
        ds.bots().len(),
        participations,
        reference_s,
        serial_s,
        parallel_s,
        reference_s / serial_s,
        reference_s / parallel_s,
        participations as f64 / parallel_s,
        pipeline_s,
        threads,
        rounds,
    );
    std::fs::write("BENCH_context.json", &json).expect("writing BENCH_context.json");
    eprintln!("wrote BENCH_context.json");
}

/// Times the epoch-sharded engine against the monolithic rebuild —
/// batch fold, incremental total, and the marginal cost of appending
/// one more epoch to an already-folded prefix — asserts every variant
/// serializes byte-identically, and writes `BENCH_epochs.json` (in
/// smoke mode too, flagged `"smoke": true`, so CI uploads a real
/// artifact).
///
/// The headline ratio is `append_one_epoch_s / monolithic_s`: what one
/// more week of trace costs with the epoch engine versus re-running the
/// pre-refactor monolithic pipeline from scratch.
fn run_epoch_bench(scale: f64, smoke: bool) {
    let cfg = if smoke {
        SimConfig::small()
    } else {
        SimConfig {
            scale,
            ..SimConfig::default()
        }
    };
    let epoch_len = Seconds::WEEK;
    eprintln!("generating trace (scale {})...", cfg.scale);
    let trace = generate(&cfg);
    let ds = &trace.dataset;
    let epochs = ds.shards(epoch_len).len();
    eprintln!(
        "generated {} attacks, {} bot records, {} weekly epochs",
        ds.len(),
        ds.bots().len(),
        epochs
    );
    let opts = PipelineOptions {
        telemetry: false,
        ..PipelineOptions::default()
    };

    // Correctness first: every epoch-engine entry point must serialize
    // byte-identically to the batch pipeline.
    let json = |r: &AnalysisReport| serde_json::to_string(r).expect("report serializes");
    let want = json(&AnalysisReport::run_opts(ds, opts));
    assert_eq!(
        json(&AnalysisReport::run_epochs(ds, opts, epoch_len)),
        want,
        "epoch-folded report diverged from batch"
    );
    assert_eq!(
        json(&AnalysisReport::run_incremental(ds, opts, epoch_len)),
        want,
        "incremental report diverged from batch"
    );
    eprintln!("report equivalence: batch == epoch-folded == incremental");

    // Peak residency of the bounded-memory streaming fold, versus the
    // raw row count a monolithic build holds resident.
    let obs = Obs::enabled();
    let mut fold = StreamFold::new(ds.window());
    for batch in ddos_sim::feed::replay_epochs(ds, epoch_len) {
        fold.push(&batch, &obs);
    }
    let peak_rows = fold.peak_resident_rows();
    let monolithic_rows = (ds.len() + ds.bots().len()) as u64;
    assert_eq!(
        json(&AnalysisReport::run_on(
            &fold
                .finish()
                .expect("trace has at least one epoch")
                .into_context(ds, ArimaSpec::DEFAULT),
            true,
        )),
        want,
        "streamed report diverged from batch"
    );
    eprintln!("report equivalence: batch == streamed fold");

    // Warm-up, then interleaved best-of-N rounds: systematic drift hits
    // every variant alike instead of whichever ran last.
    let _ = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);
    let rounds = if smoke { 1 } else { 3 };
    let mut monolithic_s = f64::MAX;
    let mut folded_s = f64::MAX;
    let mut incremental_s = f64::MAX;
    let mut append_one_s = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let r = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);
        monolithic_s = monolithic_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = AnalysisReport::run_epochs(ds, opts, epoch_len);
        folded_s = folded_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        let t = std::time::Instant::now();
        let r = AnalysisReport::run_incremental(ds, opts, epoch_len);
        incremental_s = incremental_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(r));

        // The marginal epoch: fold everything but the last epoch
        // untimed, then time appending the final one (context build,
        // merge, and the dirty-pass re-run included).
        let mut inc = IncrementalPipeline::new(ds, opts, epoch_len);
        while inc.appended() + 1 < inc.epochs() {
            inc.append_epoch();
        }
        let t = std::time::Instant::now();
        inc.append_epoch();
        append_one_s = append_one_s.min(t.elapsed().as_secs_f64());
        drop(std::hint::black_box(inc));
    }

    println!("epoch engine (weekly epochs, best of {rounds}):");
    println!("  monolithic rebuild:        {monolithic_s:>8.3} s");
    println!("  epoch-folded batch:        {folded_s:>8.3} s");
    println!("  incremental (all epochs):  {incremental_s:>8.3} s");
    println!("  append one epoch:          {append_one_s:>8.3} s");
    println!(
        "  append/monolithic ratio:   {:>8.3}  (want < 0.25)",
        append_one_s / monolithic_s
    );
    println!("  peak resident rows:        {peak_rows:>8}  (monolithic holds {monolithic_rows})");
    if !smoke {
        assert!(
            append_one_s < monolithic_s / 4.0,
            "appending one epoch ({append_one_s:.3} s) is not under a quarter \
             of the monolithic rebuild ({monolithic_s:.3} s)"
        );
    }

    let out = format!(
        "{{\n  \"smoke\": {},\n  \"trace\": {{\n    \"scale\": {},\n    \
         \"attacks\": {},\n    \"bot_records\": {},\n    \"epochs\": {}\n  }},\n  \
         \"epoch_len_s\": {},\n  \"rounds\": {},\n  \
         \"monolithic_s\": {:.6},\n  \"epoch_folded_s\": {:.6},\n  \
         \"incremental_total_s\": {:.6},\n  \"append_one_epoch_s\": {:.6},\n  \
         \"append_vs_monolithic\": {:.4},\n  \
         \"peak_resident_rows\": {},\n  \"monolithic_resident_rows\": {}\n}}\n",
        smoke,
        cfg.scale,
        ds.len(),
        ds.bots().len(),
        epochs,
        epoch_len.get(),
        rounds,
        monolithic_s,
        folded_s,
        incremental_s,
        append_one_s,
        append_one_s / monolithic_s,
        peak_rows,
        monolithic_rows,
    );
    std::fs::write("BENCH_epochs.json", &out).expect("writing BENCH_epochs.json");
    eprintln!("wrote BENCH_epochs.json");
}

/// Prints the FNV-1a 64 digest of the golden trace's full report — the
/// value `tests/golden/report_small.digest` pins. Regenerate the file
/// with `repro --report-digest > tests/golden/report_small.digest`
/// after an intentional report change.
fn run_report_digest() {
    let cfg = SimConfig::small();
    let trace = generate(&cfg);
    let report = AnalysisReport::run(&trace.dataset);
    let json = serde_json::to_string(&report).expect("report serializes");
    println!("{}", ddos_obs::fnv1a_64_hex(json.as_bytes()));
    eprintln!(
        "golden trace: scale {}, seed {:#x}, {} attacks, {} report bytes",
        cfg.scale,
        cfg.seed,
        trace.dataset.len(),
        json.len()
    );
}

/// Renders the EXPERIMENTS.md body from the comparison rows.
fn experiments_markdown(
    scale: f64,
    trace: &ddos_sim::GeneratedTrace,
    report: &AnalysisReport,
) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs measured\n\n");
    out.push_str(&format!(
        "Generated by `cargo run --release -p bench --bin repro -- --md` \
         on a scale-{scale} trace (seed {:#x}, {} attacks).\n\n",
        SimConfig::default().seed,
        trace.dataset.len()
    ));
    out.push_str(
        "The dataset is synthetic (see DESIGN.md §1): quantities marked as \
         *calibrated* in DESIGN.md §5 match by construction; everything else \
         is emergent from the generative model and the analysis pipeline. \
         The `verdict` column applies the tolerance listed per quantity — \
         tight for calibrated inputs, loose for emergent results where only \
         the *shape* (who wins, rough factor) is claimed.\n\n",
    );
    let sections = paper_comparisons(trace, report);
    let mut ok = 0usize;
    let mut total = 0usize;
    for (title, rows) in &sections {
        out.push_str(&compare::render_markdown(title, rows));
        out.push('\n');
        ok += rows.iter().filter(|r| r.holds()).count();
        total += rows.len();
    }
    out.push_str(&format!(
        "## Overall\n\n{ok} of {total} compared quantities within tolerance.\n\n\
         Known deviations and paper inconsistencies are discussed in \
         DESIGN.md (calibration rules) and the module docs of \
         `ddos-sim::calibration`.\n",
    ));
    out
}
