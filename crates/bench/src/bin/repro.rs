//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                 # full-scale trace, all experiments
//! repro t4 f12 f13      # only the listed experiments
//! repro --scale 0.1 f7  # scaled-down trace
//! repro --md            # emit EXPERIMENTS.md content (paper vs measured)
//! repro --out DIR       # write each artifact to DIR/<id>.txt
//! repro --list          # list experiment ids
//! repro --pipeline-bench  # time pass pipeline vs pre-refactor baseline
//! ```

use ddos_analytics::AnalysisReport;
use ddos_report::{compare, paper_comparisons, render, EXPERIMENTS};
use ddos_sim::{generate, SimConfig};

fn main() {
    let mut scale = 1.0f64;
    let mut ids: Vec<String> = Vec::new();
    let mut emit_md = false;
    let mut pipeline_bench = false;
    let mut out_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale takes a number");
            }
            "--out" => out_dir = Some(args.next().expect("--out takes a directory")),
            "--md" => emit_md = true,
            "--pipeline-bench" => pipeline_bench = true,
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{:<4} {} — {}", e.id, e.title, e.description);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
    }

    if pipeline_bench {
        run_pipeline_bench(scale);
        return;
    }

    eprintln!("generating trace at scale {scale}...");
    let t0 = std::time::Instant::now();
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!(
        "generated {} attacks in {:?}; running analyses...",
        trace.dataset.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let report = AnalysisReport::run(&trace.dataset);
    eprintln!("analysis pipeline finished in {:?}\n", t1.elapsed());

    if emit_md {
        print!("{}", experiments_markdown(scale, &trace, &report));
        return;
    }

    let selected: Vec<&str> = if ids.is_empty() {
        EXPERIMENTS.iter().map(|e| e.id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("creating --out directory");
    }
    for id in selected {
        match render(id, &trace, &report) {
            Some(out) => {
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.txt");
                    std::fs::write(&path, &out).expect("writing artifact");
                    eprintln!("wrote {path}");
                } else {
                    println!("======================================================");
                    println!("=== {id}");
                    println!("======================================================");
                    println!("{out}");
                }
            }
            None => eprintln!("unknown experiment id {id:?} (try --list)"),
        }
    }
    if let Some(dir) = &out_dir {
        // The comparison summary rides along for free.
        let md = experiments_markdown(scale, &trace, &report);
        let path = format!("{dir}/EXPERIMENTS.md");
        std::fs::write(&path, md).expect("writing comparison");
        eprintln!("wrote {path}");
    }
}

/// Times the pass-based pipeline against the pre-refactor serial path
/// on a freshly generated trace and prints per-pass timings plus the
/// end-to-end speedup.
fn run_pipeline_bench(scale: f64) {
    use ddos_analytics::PipelineOptions;
    use ddos_stats::ArimaSpec;

    eprintln!("generating trace at scale {scale}...");
    let trace = generate(&SimConfig {
        scale,
        ..SimConfig::default()
    });
    eprintln!("generated {} attacks", trace.dataset.len());
    let ds = &trace.dataset;
    let serial_opts = PipelineOptions {
        parallel: false,
        ..PipelineOptions::default()
    };

    // Warm-up: touch every path once so page cache / allocator state is
    // comparable, then time each.
    let _ = AnalysisReport::run(ds);
    let _ = AnalysisReport::run_opts(ds, serial_opts);
    let _ = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);

    let t0 = std::time::Instant::now();
    let baseline = AnalysisReport::run_baseline(ds, ArimaSpec::DEFAULT);
    let baseline_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let serial = AnalysisReport::run_opts(ds, serial_opts);
    let serial_elapsed = t1.elapsed();

    let t2 = std::time::Instant::now();
    let report = AnalysisReport::run(ds);
    let pipeline_elapsed = t2.elapsed();

    // The reports must agree before the timing comparison means anything.
    let a = serde_json::to_string(&baseline).expect("baseline serializes");
    let b = serde_json::to_string(&report).expect("report serializes");
    let c = serde_json::to_string(&serial).expect("serial report serializes");
    assert_eq!(a, b, "pipeline and baseline reports diverged");
    assert_eq!(b, c, "parallel and serial reports diverged");

    // The serial schedule's per-pass numbers are exact (no thread
    // interleaving inflates them), so show that table.
    println!("{}", serial.timings.render());
    let base_s = baseline_elapsed.as_secs_f64();
    let serial_s = serial_elapsed.as_secs_f64();
    let pipe_s = pipeline_elapsed.as_secs_f64();
    println!("baseline (pre-refactor serial): {base_s:>8.3} s");
    println!("pass pipeline (serial):         {serial_s:>8.3} s");
    println!("pass pipeline (parallel):       {pipe_s:>8.3} s");
    println!(
        "speedup:                        {:>8.2}x",
        base_s / pipe_s.min(serial_s)
    );
}

/// Renders the EXPERIMENTS.md body from the comparison rows.
fn experiments_markdown(
    scale: f64,
    trace: &ddos_sim::GeneratedTrace,
    report: &AnalysisReport,
) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs measured\n\n");
    out.push_str(&format!(
        "Generated by `cargo run --release -p bench --bin repro -- --md` \
         on a scale-{scale} trace (seed {:#x}, {} attacks).\n\n",
        SimConfig::default().seed,
        trace.dataset.len()
    ));
    out.push_str(
        "The dataset is synthetic (see DESIGN.md §1): quantities marked as \
         *calibrated* in DESIGN.md §5 match by construction; everything else \
         is emergent from the generative model and the analysis pipeline. \
         The `verdict` column applies the tolerance listed per quantity — \
         tight for calibrated inputs, loose for emergent results where only \
         the *shape* (who wins, rough factor) is claimed.\n\n",
    );
    let sections = paper_comparisons(trace, report);
    let mut ok = 0usize;
    let mut total = 0usize;
    for (title, rows) in &sections {
        out.push_str(&compare::render_markdown(title, rows));
        out.push('\n');
        ok += rows.iter().filter(|r| r.holds()).count();
        total += rows.len();
    }
    out.push_str(&format!(
        "## Overall\n\n{ok} of {total} compared quantities within tolerance.\n\n\
         Known deviations and paper inconsistencies are discussed in \
         DESIGN.md (calibration rules) and the module docs of \
         `ddos-sim::calibration`.\n",
    ));
    out
}
