//! Shared fixtures for the benchmark suite.
//!
//! Benches operate on one lazily generated 10%-scale trace (~5,000
//! attacks) so criterion iterations measure *analysis* cost, not
//! generation cost. The `repro` binary (in `src/bin`) regenerates every
//! paper table and figure at any scale.

use std::sync::OnceLock;

use ddos_analytics::util::BotIndex;
use ddos_sim::{generate, GeneratedTrace, SimConfig};

/// The shared benchmark trace (10% volume).
pub fn bench_trace() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        generate(&SimConfig {
            scale: 0.1,
            ..SimConfig::default()
        })
    })
}

/// The bot-location join over the benchmark trace.
pub fn bench_bots() -> &'static BotIndex {
    static IDX: OnceLock<BotIndex> = OnceLock::new();
    IDX.get_or_init(|| BotIndex::build(&bench_trace().dataset))
}
