//! Ablation studies for the design choices DESIGN.md §6 calls out.
//!
//! This is a reporting harness, not a criterion bench: each ablation
//! swaps one design choice and prints the quality/performance impact, so
//! the numbers land in `bench_output.txt` next to the timing benches.
//!
//! Run directly: `cargo bench -p bench --bench ablations`

use std::time::Instant;

use bench::{bench_bots, bench_trace};
use ddos_analytics::collab::concurrent::CollabAnalysis;
use ddos_analytics::source::dispersion::FamilyDispersion;
#[allow(unused_imports)]
use ddos_analytics::util::BotIndex;
use ddos_geo::{dispersion, mean_distance_km};
use ddos_schema::Family;
use ddos_stats::timeseries::forecast::split_forecast;
use ddos_stats::ArimaSpec;

fn main() {
    println!("=== ablations (DESIGN.md §6) ===\n");
    ablation_dispersion_metric();
    ablation_arima_order();
    ablation_collab_window();
    ablation_index_vs_scan();
    println!("=== ablations done ===");
}

/// Signed-sum (paper) vs conventional mean-distance dispersion.
///
/// At city-level geolocation resolution both metrics score exactly zero
/// for a single-city population, so the contrast needs the *jitter
/// ablation*: with street-level (25 km) per-address jitter, symmetric
/// populations still cancel under the signed metric (Fig. 9's zero mode
/// survives, slightly blurred) while the conventional mean distance
/// jumps to the jitter scale and the zero mode disappears entirely.
fn ablation_dispersion_metric() {
    println!("-- dispersion metric under 25 km street-level jitter --");
    let mut config = ddos_sim::SimConfig::small();
    config.geo.jitter_km = 25.0;
    let trace = ddos_sim::generate(&config);
    let bots = ddos_analytics::util::BotIndex::build(&trace.dataset);
    for family in [Family::Pandora, Family::Dirtjumper] {
        let mut signed_small = 0usize;
        let mut mean_small = 0usize;
        let mut n = 0usize;
        for a in trace.dataset.attacks_of(family) {
            let coords = bots.coords_of(&a.sources);
            let (Some(d), Some(md)) = (dispersion(&coords), mean_distance_km(&coords)) else {
                continue;
            };
            n += 1;
            // "Near zero" = below twice the jitter radius.
            if d.value() <= 50.0 {
                signed_small += 1;
            }
            if md <= 50.0 {
                mean_small += 1;
            }
        }
        println!(
            "{family}: near-zero share signed {:.3} vs mean-distance {:.3} ({n} snapshots)",
            signed_small as f64 / n.max(1) as f64,
            mean_small as f64 / n.max(1) as f64
        );
    }
    println!(
        "(the signed sum accumulates jitter ~sqrt(n): its zero mode needs city-level resolution)"
    );
}

/// ARIMA order grid on the Dirtjumper dispersion series: (2,1,1) is the
/// default; the grid shows the similarity is not an artifact of one
/// lucky order.
fn ablation_arima_order() {
    let ds = &bench_trace().dataset;
    let bots = bench_bots();
    let series = FamilyDispersion::compute(ds, bots, Family::Dirtjumper).asymmetric_values();
    println!(
        "-- ARIMA order grid (dirtjumper, {} points) --",
        series.len()
    );
    for (p, d, q) in [
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 1),
        (1, 1, 1),
        (2, 1, 1),
        (3, 1, 2),
        (2, 0, 2),
    ] {
        let spec = ArimaSpec::new(p, d, q);
        let t0 = Instant::now();
        match split_forecast(&series, spec, Some(2_700)) {
            Ok(sf) => println!(
                "{spec}: cosine {:.3}, rmse {:.1} km, fit {:?}",
                sf.eval.cosine,
                sf.eval.rmse,
                t0.elapsed()
            ),
            Err(e) => println!("{spec}: failed ({e})"),
        }
    }
    println!();
}

/// Sensitivity of the Table VI rule to its two windows: widening either
/// inflates the pair counts — the paper's 60 s / 30 min choice sits
/// before the false-positive blow-up.
fn ablation_collab_window() {
    let ds = &bench_trace().dataset;
    println!("-- collaboration window sensitivity --");
    let base = CollabAnalysis::compute(ds);
    println!(
        "rule 60s/30min (paper): {} pairs, {} events",
        base.pairs.len(),
        base.events.len()
    );
    // Count raw same-target co-starts at wider windows (no duration rule)
    // to show how fast candidates grow.
    use std::collections::HashMap;
    let mut by_target: HashMap<ddos_schema::IpAddr4, Vec<&ddos_schema::AttackRecord>> =
        HashMap::new();
    for a in ds.attacks() {
        by_target.entry(a.target_ip).or_default().push(a);
    }
    for window_s in [30i64, 60, 120, 300, 900] {
        let mut candidates = 0usize;
        for list in by_target.values() {
            for (i, a) in list.iter().enumerate() {
                for b in &list[i + 1..] {
                    if (b.start - a.start).get() > window_s {
                        break;
                    }
                    if a.botnet != b.botnet {
                        candidates += 1;
                    }
                }
            }
        }
        println!("start window {window_s:>4}s: {candidates} same-target candidate pairs");
    }
    println!();
}

/// Dataset index vs linear scan for per-target lookups.
fn ablation_index_vs_scan() {
    let ds = &bench_trace().dataset;
    let targets = ds.targets();
    let sample: Vec<_> = targets.iter().step_by(targets.len() / 200 + 1).collect();
    println!(
        "-- per-target lookup: index vs linear scan ({} targets) --",
        sample.len()
    );
    let t0 = Instant::now();
    let mut hits = 0usize;
    for &&t in &sample {
        hits += ds.attacks_on(t).count();
    }
    let indexed = t0.elapsed();
    let t1 = Instant::now();
    let mut hits_scan = 0usize;
    for &&t in &sample {
        hits_scan += ds.attacks().iter().filter(|a| a.target_ip == t).count();
    }
    let scanned = t1.elapsed();
    assert_eq!(hits, hits_scan);
    println!(
        "indexed {indexed:?} vs scan {scanned:?} ({:.0}x speedup, {hits} attacks touched)\n",
        scanned.as_secs_f64() / indexed.as_secs_f64().max(1e-9)
    );
}
