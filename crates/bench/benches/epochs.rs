//! Benches for the epoch-sharded engine: per-shard context builds, the
//! fold, and the marginal cost of appending one epoch incrementally —
//! against the monolithic context build and pipeline they replace.

use bench::bench_trace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ddos_analytics::{Analysis, AnalysisContext, EpochContext, PipelineOptions};
use ddos_obs::Obs;
use ddos_schema::Seconds;
use ddos_stats::ArimaSpec;

fn bench_epochs(c: &mut Criterion) {
    let trace = bench_trace();
    let ds = &trace.dataset;
    let epoch_len = Seconds::WEEK;
    let opts = PipelineOptions::new().telemetry(false);

    let mut g = c.benchmark_group("epoch_context");
    g.sample_size(10);
    g.bench_function("monolithic_build", |b| {
        b.iter(|| black_box(AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false)))
    });
    g.bench_function("shard_build_fold", |b| {
        b.iter(|| {
            let obs = Obs::disabled();
            let folded = ds
                .shards(epoch_len)
                .iter()
                .map(|s| EpochContext::build(s, &obs))
                .reduce(|a, x| a.merge(x).0)
                .unwrap();
            black_box(folded)
        })
    });
    // The merge alone: pre-built halves of the trace, cloned per iter.
    let obs = Obs::disabled();
    let shards = ds.shards(epoch_len);
    let mid = shards.len() / 2;
    let left = shards[..mid.max(1)]
        .iter()
        .map(|s| EpochContext::build(s, &obs))
        .reduce(|a, x| a.merge(x).0)
        .unwrap();
    let right = shards[mid.max(1)..]
        .iter()
        .map(|s| EpochContext::build(s, &obs))
        .reduce(|a, x| a.merge(x).0);
    if let Some(right) = right {
        g.bench_function("merge_halves", |b| {
            b.iter(|| black_box(left.clone().merge(right.clone()).0))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("epoch_pipeline");
    g.sample_size(10);
    g.bench_function("batch", |b| {
        b.iter(|| black_box(Analysis::new(ds).options(opts).run()))
    });
    g.bench_function("epoch_folded", |b| {
        b.iter(|| black_box(Analysis::new(ds).options(opts).epochs(epoch_len).run()))
    });
    g.bench_function("incremental_total", |b| {
        b.iter(|| {
            black_box(
                Analysis::new(ds)
                    .options(opts)
                    .epochs(epoch_len)
                    .incremental()
                    .run(),
            )
        })
    });
    // The marginal epoch: everything-but-the-last pre-folded, so the
    // routine times clone + shard build + merge — the incremental
    // pipeline's steady-state append work (minus the dirty-pass rerun,
    // which `incremental_total` above covers in aggregate).
    if shards.len() > 1 {
        let last_shard = shards.last().unwrap();
        let prefix = shards[..shards.len() - 1]
            .iter()
            .map(|s| EpochContext::build(s, &obs))
            .reduce(|a, x| a.merge(x).0)
            .unwrap();
        g.bench_function("append_last_epoch", |b| {
            b.iter(|| {
                let built = EpochContext::build(last_shard, &obs);
                black_box(prefix.clone().merge(built).0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
