//! Benches for the collaboration analyses (Table VI, Figs. 15–18, §V).

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, Criterion};
use ddos_analytics::collab::concurrent::{CollabAnalysis, PairFocus};
use ddos_analytics::collab::multistage::MultistageAnalysis;
use ddos_schema::Family;

fn bench_collaboration(c: &mut Criterion) {
    let ds = &bench_trace().dataset;
    let mut g = c.benchmark_group("collaboration");
    g.bench_function("t6_collab_analysis", |b| {
        b.iter(|| CollabAnalysis::compute(ds))
    });
    let analysis = CollabAnalysis::compute(ds);
    g.bench_function("f16_pair_focus", |b| {
        b.iter(|| PairFocus::compute(ds, &analysis, Family::Dirtjumper, Family::Pandora))
    });
    g.bench_function("f15_intra_points", |b| {
        b.iter(|| analysis.intra_family_points(ds, Family::Dirtjumper))
    });
    g.bench_function("f17_f18_multistage", |b| {
        b.iter(|| MultistageAnalysis::compute(ds))
    });
    g.finish();
}

criterion_group!(benches, bench_collaboration);
criterion_main!(benches);
