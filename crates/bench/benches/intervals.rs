//! Benches for the interval and duration analyses (Figs. 2–7, §III-B).

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, Criterion};
use ddos_analytics::overview::daily::DailyDistribution;
use ddos_analytics::overview::duration::DurationAnalysis;
use ddos_analytics::overview::intervals::{
    all_intervals, family_intervals, interval_cdf, ConcurrencyAnalysis, IntervalStats,
};
use ddos_schema::Family;

fn bench_intervals(c: &mut Criterion) {
    let ds = &bench_trace().dataset;
    let mut g = c.benchmark_group("intervals");
    g.bench_function("f2_daily_distribution", |b| {
        b.iter(|| DailyDistribution::compute(ds))
    });
    g.bench_function("f3_all_intervals", |b| b.iter(|| all_intervals(ds)));
    g.bench_function("f5_family_intervals_dirtjumper", |b| {
        b.iter(|| family_intervals(ds, Family::Dirtjumper))
    });
    let ivs = family_intervals(ds, Family::Dirtjumper);
    g.bench_function("f3_interval_cdf", |b| b.iter(|| interval_cdf(&ivs)));
    g.bench_function("f3_interval_stats", |b| {
        b.iter(|| IntervalStats::compute(&ivs))
    });
    g.bench_function("s3b_concurrency_analysis", |b| {
        b.iter(|| ConcurrencyAnalysis::compute(ds))
    });
    g.bench_function("f6_f7_duration_analysis", |b| {
        b.iter(|| DurationAnalysis::compute(ds))
    });
    g.finish();
}

criterion_group!(benches, bench_intervals);
criterion_main!(benches);
