//! Benches for the source analyses (Figs. 8–11, §IV-A).

use bench::{bench_bots, bench_trace};
use criterion::{criterion_group, criterion_main, Criterion};
use ddos_analytics::source::dispersion::{qualifying_families, FamilyDispersion};
use ddos_analytics::source::shift::ShiftAnalysis;
use ddos_analytics::util::BotIndex;
use ddos_schema::Family;

fn bench_source(c: &mut Criterion) {
    let trace = bench_trace();
    let ds = &trace.dataset;
    let bots = bench_bots();
    let mut g = c.benchmark_group("source");
    g.sample_size(20);
    g.bench_function("bot_index_build", |b| b.iter(|| BotIndex::build(ds)));
    g.bench_function("f8_shift_analysis", |b| {
        b.iter(|| ShiftAnalysis::compute(ds, bots))
    });
    g.bench_function("f9_dispersion_dirtjumper", |b| {
        b.iter(|| FamilyDispersion::compute(ds, bots, Family::Dirtjumper))
    });
    g.bench_function("f9_qualifying_families", |b| {
        b.iter(|| qualifying_families(ds, bots))
    });
    let fd = FamilyDispersion::compute(ds, bots, Family::Dirtjumper);
    g.bench_function("f10_asymmetric_histogram", |b| {
        b.iter(|| fd.asymmetric_histogram(40))
    });
    g.finish();
}

criterion_group!(benches, bench_source);
criterion_main!(benches);
