//! Benches for the analysis-context build — the join+distance kernel
//! that dominates pipeline wall time.
//!
//! Contrasts the PR 2 reference path (per-lookup hash join, scalar
//! trigonometry per attack-participation) with the columnar substrate
//! (sorted `BotTable` + CSR `SourceTable` + `dispersion_precomp`),
//! serial and parallel.

use bench::bench_trace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ddos_analytics::{AnalysisContext, BotTable, SourceTable};
use ddos_stats::ArimaSpec;

fn bench_context(c: &mut Criterion) {
    let trace = bench_trace();
    let ds = &trace.dataset;
    let mut g = c.benchmark_group("context_build");
    g.sample_size(10);
    g.bench_function("reference_pr2", |b| {
        b.iter(|| black_box(AnalysisContext::build_reference(ds, ArimaSpec::DEFAULT)))
    });
    g.bench_function("columnar_serial", |b| {
        b.iter(|| black_box(AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, false)))
    });
    g.bench_function("columnar_parallel", |b| {
        b.iter(|| black_box(AnalysisContext::build_opts(ds, ArimaSpec::DEFAULT, true)))
    });
    g.finish();

    let mut g = c.benchmark_group("columnar_substrate");
    g.sample_size(10);
    g.bench_function("bot_table_build", |b| b.iter(|| BotTable::build(ds)));
    let bots = BotTable::build(ds);
    g.bench_function("source_table_serial", |b| {
        b.iter(|| SourceTable::build(ds, &bots, false))
    });
    g.bench_function("source_table_parallel", |b| {
        b.iter(|| SourceTable::build(ds, &bots, true))
    });
    g.finish();
}

criterion_group!(benches, bench_context);
criterion_main!(benches);
