//! Benches for the substrate itself: world synthesis, trace generation,
//! and the binary codec.

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddos_geo::{GeoConfig, GeoDb};
use ddos_schema::codec;
use ddos_sim::{generate, SimConfig};

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(10);
    g.bench_function("geodb_synthesize_default", |b| {
        b.iter(|| GeoDb::synthesize(&GeoConfig::default()))
    });
    for scale in [0.02f64, 0.1] {
        g.bench_with_input(
            BenchmarkId::new("generate", format!("scale_{scale}")),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    generate(&SimConfig {
                        scale,
                        ..SimConfig::default()
                    })
                })
            },
        );
    }
    let ds = &bench_trace().dataset;
    g.bench_function("codec_encode", |b| b.iter(|| codec::encode(ds)));
    let bytes = codec::encode(ds);
    g.bench_function("codec_decode", |b| {
        b.iter(|| codec::decode(&bytes).expect("decodes"))
    });
    g.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
