//! Benches for the intra-pass chunked kernels (DESIGN.md §12): the
//! snapshot-scan pass bodies (dispersion, weekly shifts) and the
//! sort-sweep concurrent-collaboration detector, each against the
//! reference (PR 6) pass body it replaces, at paper scale. The
//! `repro --pass-bench` harness covers the whole registry and asserts
//! the end-to-end target; these benches give criterion-grade numbers
//! for the three kernels the PR names.

use bench::bench_trace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ddos_analytics::collab::concurrent::CollabAnalysis;
use ddos_analytics::{passes, AnalysisContext, KernelPolicy};
use ddos_obs::Obs;
use ddos_stats::ArimaSpec;

fn bench_passes(c: &mut Criterion) {
    let trace = bench_trace();
    let ds = &trace.dataset;
    let kernel_ctx = AnalysisContext::build(ds, ArimaSpec::DEFAULT);
    let reference_ctx =
        AnalysisContext::build(ds, ArimaSpec::DEFAULT).with_kernels(KernelPolicy::Reference);
    let obs = Obs::disabled();
    // A fully populated partial report satisfies every pass's
    // dependency slots, so each body can run in isolation.
    let partial = passes::execute(&kernel_ctx, false, &obs);

    for name in ["dispersion", "shifts"] {
        let pass = passes::REGISTRY
            .iter()
            .find(|p| p.name == name)
            .expect("pass registered");
        let group_name = format!("pass_{name}");
        let mut g = c.benchmark_group(group_name.as_str());
        g.sample_size(10);
        g.bench_function("reference", |b| {
            b.iter(|| black_box((pass.run)(&reference_ctx, &partial, &obs)))
        });
        g.bench_function("chunked", |b| {
            b.iter(|| black_box((pass.run)(&kernel_ctx, &partial, &obs)))
        });
        g.finish();
    }

    let mut g = c.benchmark_group("concurrent_collab");
    g.sample_size(10);
    g.bench_function("pairwise_reference", |b| {
        b.iter(|| black_box(CollabAnalysis::compute_ctx_reference(&kernel_ctx)))
    });
    g.bench_function("sort_sweep", |b| {
        b.iter(|| black_box(CollabAnalysis::compute_ctx(&kernel_ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
