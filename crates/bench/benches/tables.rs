//! Benches for the paper's tables: Table II (protocol preferences),
//! Table III (workload summary), Table V (country-level targets).

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, Criterion};
use ddos_analytics::overview::protocols::{protocol_preferences, ProtocolPopularity};
use ddos_analytics::target::country::{all_profiles, overall_top_countries};

fn bench_tables(c: &mut Criterion) {
    let ds = &bench_trace().dataset;
    let mut g = c.benchmark_group("tables");
    g.bench_function("t2_protocol_preferences", |b| {
        b.iter(|| protocol_preferences(ds))
    });
    g.bench_function("f1_protocol_popularity", |b| {
        b.iter(|| ProtocolPopularity::compute(ds))
    });
    g.bench_function("t3_workload_summary", |b| b.iter(|| ds.summary()));
    g.bench_function("t5_country_profiles", |b| b.iter(|| all_profiles(ds)));
    g.bench_function("t5_overall_top_countries", |b| {
        b.iter(|| overall_top_countries(ds, 5))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
