//! Benches for the ARIMA prediction pipeline (Table IV, Figs. 12–13).

use bench::{bench_bots, bench_trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddos_analytics::source::dispersion::FamilyDispersion;
use ddos_analytics::source::prediction::predict_family;
use ddos_schema::Family;
use ddos_stats::timeseries::forecast::split_forecast;
use ddos_stats::{ArimaModel, ArimaSpec};

fn bench_prediction(c: &mut Criterion) {
    let trace = bench_trace();
    let ds = &trace.dataset;
    let bots = bench_bots();
    let series = FamilyDispersion::compute(ds, bots, Family::Dirtjumper).asymmetric_values();

    let mut g = c.benchmark_group("prediction");
    g.sample_size(10);
    for spec in [
        ArimaSpec::new(1, 0, 0),
        ArimaSpec::new(2, 1, 1),
        ArimaSpec::new(3, 1, 2),
    ] {
        g.bench_with_input(BenchmarkId::new("arima_fit", spec), &spec, |b, &spec| {
            b.iter(|| ArimaModel::fit(&series, spec).expect("fits"))
        });
    }
    g.bench_function("t4_split_forecast_dirtjumper", |b| {
        b.iter(|| split_forecast(&series, ArimaSpec::DEFAULT, Some(2_700)).expect("forecasts"))
    });
    g.bench_function("t4_predict_family_end_to_end", |b| {
        b.iter(|| predict_family(ds, bots, Family::Dirtjumper, ArimaSpec::DEFAULT).expect("ok"))
    });
    g.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
