//! Linear and logarithmic histograms.
//!
//! Figures 10–11 of the paper are histograms of dispersion distances;
//! Figure 4 clusters attack intervals into logarithmically spaced bands.

use serde::{Deserialize, Serialize};

/// A histogram with explicit bin edges.
///
/// Bins are half-open `[edge[i], edge[i+1])`, the last bin closed. Values
/// outside the edges are counted in `underflow`/`overflow` rather than
/// silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    /// Observations below the first edge.
    pub underflow: u64,
    /// Observations above the last edge.
    pub overflow: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// Returns `None` for a degenerate range or zero bins.
    pub fn linear(values: &[f64], lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || hi <= lo || hi.is_nan() || lo.is_nan() {
            return None;
        }
        let edges: Vec<f64> = (0..=bins)
            .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
            .collect();
        Some(Self::with_edges(values, edges))
    }

    /// Builds a histogram with logarithmically spaced bins over
    /// `[lo, hi]`; both bounds must be positive.
    pub fn logarithmic(values: &[f64], lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || hi <= lo || hi.is_nan() || lo <= 0.0 {
            return None;
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        let edges: Vec<f64> = (0..=bins)
            .map(|i| (llo + (lhi - llo) * i as f64 / bins as f64).exp())
            .collect();
        Some(Self::with_edges(values, edges))
    }

    /// Builds a histogram with caller-provided ascending edges.
    pub fn with_edges(values: &[f64], edges: Vec<f64>) -> Histogram {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let mut h = Histogram {
            counts: vec![0; edges.len().saturating_sub(1)],
            edges,
            underflow: 0,
            overflow: 0,
        };
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() || self.edges.len() < 2 {
            return;
        }
        let first = self.edges[0];
        let last = self.edges[self.edges.len() - 1];
        if v < first {
            self.underflow += 1;
        } else if v > last {
            self.overflow += 1;
        } else if v == last {
            // Last bin is closed on the right.
            let n = self.counts.len();
            self.counts[n - 1] += 1;
        } else {
            let i = self.edges.partition_point(|&e| e <= v) - 1;
            self.counts[i] += 1;
        }
    }

    /// Bin edges (`bins + 1` values).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| ((w[0] + w[1]) / 2.0, c))
            .collect()
    }

    /// Normalized bin weights (fractions of in-range total); all zeros if
    /// the histogram is empty.
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Index and count of the fullest bin, if any observation landed.
    pub fn mode_bin(&self) -> Option<(usize, u64)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_binning_places_values() {
        let h = Histogram::linear(&[0.5, 1.5, 1.6, 9.9, 10.0], 0.0, 10.0, 10).unwrap();
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        // 9.9 and the closed right edge 10.0 both land in the last bin.
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let h = Histogram::linear(&[-1.0, 5.0, 11.0], 0.0, 10.0, 2).unwrap();
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn log_bins_grow_geometrically() {
        let h = Histogram::logarithmic(&[], 1.0, 1_000.0, 3).unwrap();
        let e = h.edges();
        assert!((e[1] - 10.0).abs() < 1e-9);
        assert!((e[2] - 100.0).abs() < 1e-9);
        assert!(Histogram::logarithmic(&[], 0.0, 10.0, 3).is_none());
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(Histogram::linear(&[], 0.0, 0.0, 5).is_none());
        assert!(Histogram::linear(&[], 5.0, 1.0, 5).is_none());
        assert!(Histogram::linear(&[], 0.0, 1.0, 0).is_none());
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::linear(&[], 0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total() + h.underflow + h.overflow, 0);
    }

    #[test]
    fn centers_and_fractions() {
        let h = Histogram::linear(&[0.5, 0.6, 1.5], 0.0, 2.0, 2).unwrap();
        let centers = h.centers();
        assert_eq!(centers[0].0, 0.5);
        assert_eq!(centers[0].1, 2);
        let f = h.fractions();
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.mode_bin(), Some((0, 2)));
    }

    #[test]
    fn empty_histogram_mode_is_none() {
        let h = Histogram::linear(&[], 0.0, 1.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn conservation(values in proptest::collection::vec(-10.0f64..20.0, 0..200)) {
            let h = Histogram::linear(&values, 0.0, 10.0, 7).unwrap();
            prop_assert_eq!(
                h.total() + h.underflow + h.overflow,
                values.len() as u64
            );
        }

        #[test]
        fn every_in_range_value_lands_in_its_bin(v in 0.0f64..10.0) {
            let h = Histogram::linear(&[v], 0.0, 10.0, 5).unwrap();
            let i = ((v / 2.0) as usize).min(4);
            prop_assert_eq!(h.counts()[i], 1);
        }
    }
}
