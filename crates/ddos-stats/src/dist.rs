//! Sampling distributions for the trace generator.
//!
//! These are the generative building blocks `ddos-sim` uses to reproduce
//! the paper's marginals: log-normal bodies for durations and intervals,
//! Pareto tails for the rare multi-week gaps, Zipf for target popularity,
//! categorical draws for protocol and country preferences, Poisson for
//! per-day attack counts, and mixtures to compose them.

use crate::rng::Rng;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;
}

/// Normal distribution (Marsaglia polar method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be ≥ 0).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; panics if `std_dev` is negative or
    /// not finite.
    pub fn new(mean: f64, std_dev: f64) -> Normal {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "bad std_dev");
        Normal { mean, std_dev }
    }

    /// One standard-normal draw.
    fn standard(rng: &mut Rng) -> f64 {
        loop {
            let u = rng.f64() * 2.0 - 1.0;
            let v = rng.f64() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal distribution parameterized by the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X` (must be ≥ 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal; panics on a negative or non-finite `sigma`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0 && sigma.is_finite(), "bad sigma");
        LogNormal { mu, sigma }
    }

    /// Builds the log-normal whose *median* is `median` and whose body
    /// spread is `sigma` — convenient when calibrating to the paper's
    /// quoted medians.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// The distribution mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (must be > 0).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential; panics on a non-positive rate.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda > 0.0 && lambda.is_finite(), "bad lambda");
        Exponential { lambda }
    }

    /// Exponential with the given mean.
    pub fn from_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.lambda
    }
}

/// Pareto (type I) distribution: heavy tail for rare huge gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale (minimum value, > 0).
    pub x_min: f64,
    /// Shape (tail index, > 0; smaller = heavier tail).
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto; panics on non-positive parameters.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto params");
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.x_min / (1.0 - rng.f64()).powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` (popularity skew for targets).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf with `n` ranks and exponent `s` (> 0). O(n) setup,
    /// O(log n) sampling via the precomputed CDF.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0 && s > 0.0, "bad zipf params");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Samples a zero-based index in `0..n`.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        self.sample_rank(rng) - 1
    }
}

/// Categorical distribution over weighted alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights; returns `None` if the weights
    /// are empty or all zero.
    pub fn new(weights: &[f64]) -> Option<Categorical> {
        if weights.is_empty() || weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Some(Categorical { cdf })
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether there are no alternatives (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an index in `0..len`.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Poisson distribution (Knuth's product method; fine for the λ ≤ ~50 the
/// generator uses for per-hour event counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Rate (mean) parameter, > 0.
    pub lambda: f64,
}

impl Poisson {
    /// Creates a Poisson; panics on a non-positive rate.
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda > 0.0 && lambda.is_finite(), "bad lambda");
        Poisson { lambda }
    }

    /// Samples a count.
    pub fn sample_count(&self, rng: &mut Rng) -> u64 {
        if self.lambda > 30.0 {
            // Normal approximation for large λ, clamped at zero.
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            return n.sample(rng).round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// A weighted mixture of component distributions.
pub struct Mixture {
    weights: Categorical,
    components: Vec<Box<dyn Distribution + Send + Sync>>,
}

impl Mixture {
    /// Builds a mixture; returns `None` on empty/invalid weights or a
    /// component-count mismatch.
    pub fn new(
        weights: &[f64],
        components: Vec<Box<dyn Distribution + Send + Sync>>,
    ) -> Option<Mixture> {
        if weights.len() != components.len() {
            return None;
        }
        Some(Mixture {
            weights: Categorical::new(weights)?,
            components,
        })
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let i = self.weights.sample_index(rng);
        self.components[i].sample(rng)
    }
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .finish()
    }
}

/// A point mass at a constant (useful as a mixture component, e.g. the
/// "simultaneous attack" spike at interval zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, std_dev};

    fn draw<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_moments() {
        let xs = draw(&Normal::new(10.0, 2.0), 50_000, 1);
        assert!((mean(&xs).unwrap() - 10.0).abs() < 0.05);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let d = LogNormal::from_median(1_766.0, 1.2);
        let xs = draw(&d, 50_000, 2);
        assert!(xs.iter().all(|&x| x > 0.0));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            (median / 1_766.0 - 1.0).abs() < 0.1,
            "median {median} vs 1766"
        );
        assert!((d.mean() / (1_766.0f64.ln() + 0.72).exp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean() {
        let xs = draw(&Exponential::from_mean(100.0), 50_000, 3);
        assert!((mean(&xs).unwrap() - 100.0).abs() < 3.0);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_respects_minimum_and_is_heavy() {
        let xs = draw(&Pareto::new(10.0, 1.5), 50_000, 4);
        assert!(xs.iter().all(|&x| x >= 10.0));
        let huge = xs.iter().filter(|&&x| x > 1_000.0).count();
        assert!(huge > 10, "tail too light: {huge}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        assert!(counts[0] as f64 / 50_000.0 > 0.1);
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut rng = Rng::new(6);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[c.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[-1.0, 2.0]).is_none());
        assert!(Categorical::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        for lambda in [0.5, 4.0, 60.0] {
            let p = Poisson::new(lambda);
            let mut rng = Rng::new(7);
            let n = 30_000;
            let m: f64 = (0..n).map(|_| p.sample_count(&mut rng) as f64).sum::<f64>() / n as f64;
            assert!(
                (m - lambda).abs() < lambda.max(1.0) * 0.05,
                "λ={lambda} m={m}"
            );
        }
    }

    #[test]
    fn mixture_blends_components() {
        let m = Mixture::new(
            &[0.5, 0.5],
            vec![Box::new(Constant(0.0)), Box::new(Constant(100.0))],
        )
        .unwrap();
        let xs = draw(&m, 10_000, 8);
        let zeros = xs.iter().filter(|&&x| x == 0.0).count();
        assert!((zeros as f64 / 10_000.0 - 0.5).abs() < 0.05);
        assert!(Mixture::new(&[1.0], vec![]).is_none());
    }

    #[test]
    fn constant_is_constant() {
        let xs = draw(&Constant(7.5), 10, 9);
        assert!(xs.iter().all(|&x| x == 7.5));
    }
}
