//! Distribution fitting and goodness-of-fit.
//!
//! §III of the paper describes durations and intervals qualitatively
//! ("two extremes", "wide-spread"); this module makes those statements
//! testable: maximum-likelihood log-normal fits and the
//! Kolmogorov–Smirnov statistic with its asymptotic p-value.

use crate::dist::LogNormal;
use crate::ecdf::Ecdf;

/// Maximum-likelihood log-normal fit: `mu`/`sigma` are the mean and
/// (population) standard deviation of the logs.
///
/// Returns `None` when fewer than two positive observations exist.
pub fn fit_lognormal(xs: &[f64]) -> Option<LogNormal> {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / n;
    Some(LogNormal::new(mu, var.sqrt()))
}

/// CDF of a log-normal at `x`.
pub fn lognormal_cdf(d: &LogNormal, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if d.sigma == 0.0 {
        return if x.ln() >= d.mu { 1.0 } else { 0.0 };
    }
    standard_normal_cdf((x.ln() - d.mu) / d.sigma)
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |error| < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * erfc_as(-z / std::f64::consts::SQRT_2)
}

fn erfc_as(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

/// Result of a one-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: sup |F_n(x) − F(x)|.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
}

impl KsTest {
    /// Whether the hypothesized distribution survives at `alpha`.
    pub fn fits(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// One-sample KS test of `sample` against a theoretical CDF.
///
/// Returns `None` for an empty sample.
pub fn ks_test<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> Option<KsTest> {
    let ecdf = Ecdf::new(sample)?;
    let n = ecdf.len();
    let mut d: f64 = 0.0;
    for (i, &x) in ecdf.values().iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        // Compare against the ECDF just before and at x.
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let lambda = (n as f64).sqrt() * d;
    Some(KsTest {
        statistic: d,
        n,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::rng::Rng;

    #[test]
    fn standard_normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
        assert!(standard_normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::new(7.0, 1.5);
        let mut rng = Rng::new(1);
        let xs: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_lognormal(&xs).unwrap();
        assert!((fit.mu - 7.0).abs() < 0.03, "mu {}", fit.mu);
        assert!((fit.sigma - 1.5).abs() < 0.03, "sigma {}", fit.sigma);
    }

    #[test]
    fn lognormal_fit_rejects_degenerate_input() {
        assert!(fit_lognormal(&[]).is_none());
        assert!(fit_lognormal(&[5.0]).is_none());
        assert!(fit_lognormal(&[-1.0, -2.0]).is_none());
        // Non-positive values are ignored, not fatal.
        assert!(fit_lognormal(&[-1.0, 2.0, 3.0]).is_some());
    }

    #[test]
    fn lognormal_cdf_median() {
        let d = LogNormal::from_median(1_766.0, 1.2);
        assert!((lognormal_cdf(&d, 1_766.0) - 0.5).abs() < 1e-6);
        assert_eq!(lognormal_cdf(&d, 0.0), 0.0);
        assert!(lognormal_cdf(&d, 1e12) > 0.999);
    }

    #[test]
    fn ks_accepts_the_true_distribution() {
        let truth = LogNormal::new(5.0, 1.0);
        let mut rng = Rng::new(2);
        let xs: Vec<f64> = (0..2_000).map(|_| truth.sample(&mut rng)).collect();
        let test = ks_test(&xs, |x| lognormal_cdf(&truth, x)).unwrap();
        assert!(test.fits(0.01), "true distribution rejected: {test:?}");
    }

    #[test]
    fn ks_rejects_a_wrong_distribution() {
        let truth = LogNormal::new(5.0, 1.0);
        let wrong = LogNormal::new(6.0, 0.5);
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..2_000).map(|_| truth.sample(&mut rng)).collect();
        let test = ks_test(&xs, |x| lognormal_cdf(&wrong, x)).unwrap();
        assert!(!test.fits(0.05), "wrong distribution accepted: {test:?}");
        assert!(test.p_value < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_reference_points() {
        // Known critical value: Q(1.358) ≈ 0.05.
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 0.003);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn ks_on_empty_sample_is_none() {
        assert!(ks_test(&[], |_| 0.5).is_none());
    }
}
