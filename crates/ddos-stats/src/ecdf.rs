//! Empirical cumulative distribution functions.
//!
//! Half the paper's figures are CDFs (attack intervals, durations,
//! dispersion, consecutive-attack gaps). [`Ecdf`] owns a sorted copy of
//! the sample and answers `P(X ≤ x)`, quantiles, and plot-ready step
//! points.

use serde::{Deserialize, Serialize};

use crate::descriptive::quantile_sorted;

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, ignoring NaNs. Returns `None` when no
    /// finite values remain.
    pub fn new(values: &[f64]) -> Option<Ecdf> {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Some(Ecdf { sorted })
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`: the fraction of observations at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (`0 ≤ q ≤ 1`, linear interpolation).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        Some(quantile_sorted(&self.sorted, q))
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Plot-ready `(x, F(x))` step points, deduplicating equal x values
    /// (the y of the last duplicate wins, as in a right-continuous step
    /// function).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(self.sorted.len());
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match pts.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => pts.push((x, y)),
            }
        }
        pts
    }

    /// Samples the CDF at `k` evenly spaced x positions between min and
    /// max — used to lay several family CDFs over a common grid (Fig. 5).
    pub fn sample_grid(&self, k: usize) -> Vec<(f64, f64)> {
        if k == 0 {
            return Vec::new();
        }
        if k == 1 || self.min() == self.max() {
            return vec![(self.max(), 1.0)];
        }
        let (lo, hi) = (self.min(), self.max());
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Kolmogorov–Smirnov distance to another ECDF (sup of |F₁−F₂| over
    /// the pooled sample points).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_nan_inputs() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN, f64::NAN]).is_none());
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]).unwrap();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn eval_step_function() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 5.0]).unwrap();
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(4.9), 0.75);
        assert_eq!(e.eval(5.0), 1.0);
    }

    #[test]
    fn quantile_round_trip() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(30.0));
        assert_eq!(e.quantile(1.5), None);
    }

    #[test]
    fn points_deduplicate_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]).unwrap();
        let pts = e.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[1], (2.0, 1.0));
    }

    #[test]
    fn sample_grid_spans_range() {
        let e = Ecdf::new(&[0.0, 10.0]).unwrap();
        let grid = e.sample_grid(11);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0].0, 0.0);
        assert_eq!(grid[10], (10.0, 1.0));
        assert!(Ecdf::new(&[5.0]).unwrap().sample_grid(4) == vec![(5.0, 1.0)]);
        assert!(e.sample_grid(0).is_empty());
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let e1 = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        let e2 = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e1.ks_distance(&e2), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let e1 = Ecdf::new(&[1.0, 2.0]).unwrap();
        let e2 = Ecdf::new(&[10.0, 20.0]).unwrap();
        assert_eq!(e1.ks_distance(&e2), 1.0);
        assert_eq!(e2.ks_distance(&e1), 1.0);
    }

    proptest! {
        #[test]
        fn eval_is_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                            a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let e = Ecdf::new(&xs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.eval(lo) <= e.eval(hi));
        }

        #[test]
        fn eval_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), x in -2e6f64..2e6) {
            let e = Ecdf::new(&xs).unwrap();
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert_eq!(e.eval(e.max()), 1.0);
        }

        #[test]
        fn ks_is_symmetric_metric(xs in proptest::collection::vec(-100.0f64..100.0, 1..40),
                                  ys in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
            let e1 = Ecdf::new(&xs).unwrap();
            let e2 = Ecdf::new(&ys).unwrap();
            let d12 = e1.ks_distance(&e2);
            let d21 = e2.ks_distance(&e1);
            prop_assert!((d12 - d21).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d12));
        }
    }
}
