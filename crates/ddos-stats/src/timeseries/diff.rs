//! Differencing and re-integration — the "I" in ARIMA.

/// Applies `d` rounds of first differencing. The result is `d` elements
/// shorter than the input; returns `None` if the series is too short.
pub fn difference(xs: &[f64], d: usize) -> Option<Vec<f64>> {
    if xs.len() <= d {
        return None;
    }
    let mut cur = xs.to_vec();
    for _ in 0..d {
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Some(cur)
}

/// Integrates (undoes `d` rounds of differencing on) a block of forecast
/// values, given the last `d` observations of the *original* series tail.
///
/// `tail` must hold at least `d` values; the last `d` are used.
pub fn integrate(forecasts: &[f64], tail: &[f64], d: usize) -> Option<Vec<f64>> {
    if tail.len() < d {
        return None;
    }
    if d == 0 {
        return Some(forecasts.to_vec());
    }
    // Recreate the chain of last values at each differencing level:
    // level 0 is the original tail, level k is the k-times differenced
    // tail. We need the last value at each level 0..d.
    let tail = &tail[tail.len() - d.min(tail.len())..];
    let mut levels: Vec<Vec<f64>> = vec![tail.to_vec()];
    for _ in 1..d {
        let prev = levels.last().expect("at least one level");
        let next: Vec<f64> = prev.windows(2).map(|w| w[1] - w[0]).collect();
        levels.push(next);
    }
    let mut last_at_level: Vec<f64> = levels
        .iter()
        .map(|l| *l.last().expect("tail long enough"))
        .collect();

    let mut out = Vec::with_capacity(forecasts.len());
    for &f in forecasts {
        // f is at differencing level d; cascade the cumulative sums back
        // down to level 0.
        let mut v = f;
        for lvl in (0..d).rev() {
            v += last_at_level[lvl];
            last_at_level[lvl] = v;
        }
        out.push(v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_difference() {
        let xs = [1.0, 3.0, 6.0, 10.0];
        assert_eq!(difference(&xs, 1), Some(vec![2.0, 3.0, 4.0]));
        assert_eq!(difference(&xs, 2), Some(vec![1.0, 1.0]));
        assert_eq!(difference(&xs, 0), Some(xs.to_vec()));
    }

    #[test]
    fn too_short_series() {
        assert_eq!(difference(&[1.0], 1), None);
        assert_eq!(difference(&[], 0), None);
        assert_eq!(integrate(&[1.0], &[1.0], 2), None);
    }

    #[test]
    fn integrate_inverts_difference_d1() {
        let xs = [5.0, 7.0, 4.0, 9.0, 9.5];
        let diffed = difference(&xs, 1).unwrap();
        // Pretend the last two diffs are "forecasts" from history xs[..3].
        let rebuilt = integrate(&diffed[2..], &xs[..3], 1).unwrap();
        assert_eq!(rebuilt, vec![9.0, 9.5]);
    }

    #[test]
    fn integrate_inverts_difference_d2() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let diffed = difference(&xs, 2).unwrap(); // constant 2s
        let rebuilt = integrate(&diffed[2..], &xs[..4], 2).unwrap();
        assert_eq!(rebuilt, vec![25.0, 36.0]);
    }

    #[test]
    fn integrate_d0_is_identity() {
        assert_eq!(integrate(&[1.0, 2.0], &[9.0], 0), Some(vec![1.0, 2.0]));
    }

    proptest! {
        #[test]
        fn difference_then_integrate_round_trips(
            xs in proptest::collection::vec(-100.0f64..100.0, 5..40),
            d in 1usize..=3,
        ) {
            prop_assume!(xs.len() > d + 1);
            let diffed = difference(&xs, d).unwrap();
            // Treat everything after the first point as forecasts.
            let split = 1;
            let rebuilt = integrate(&diffed[split..], &xs[..split + d], d).unwrap();
            let expected = &xs[split + d..];
            prop_assert_eq!(rebuilt.len(), expected.len());
            for (r, e) in rebuilt.iter().zip(expected) {
                prop_assert!((r - e).abs() < 1e-6, "{r} vs {e}");
            }
        }
    }
}
