//! Autocorrelation (ACF) and partial autocorrelation (PACF).

/// Sample autocorrelation at lags `0..=max_lag`.
///
/// Uses the biased (1/n) estimator, the standard choice for ACF because
/// it guarantees a positive semi-definite autocovariance sequence (which
/// Yule–Walker fitting depends on). Returns `None` for constant or
/// too-short series.
pub fn acf(xs: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let n = xs.len();
    if n < 2 || max_lag >= n {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if c0 <= 0.0 {
        return None;
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let ck: f64 = (0..n - lag)
            .map(|t| (xs[t] - mean) * (xs[t + lag] - mean))
            .sum::<f64>()
            / n as f64;
        out.push(ck / c0);
    }
    Some(out)
}

/// Partial autocorrelation at lags `1..=max_lag` via the Durbin–Levinson
/// recursion on the sample ACF.
pub fn pacf(xs: &[f64], max_lag: usize) -> Option<Vec<f64>> {
    let rho = acf(xs, max_lag)?;
    if max_lag == 0 {
        return Some(Vec::new());
    }
    let mut pacf_vals = Vec::with_capacity(max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    for k in 1..=max_lag {
        let phi_kk = if k == 1 {
            rho[1]
        } else {
            let num = rho[k]
                - phi_prev
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| p * rho[k - 1 - j])
                    .sum::<f64>();
            let den = 1.0
                - phi_prev
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| p * rho[j + 1])
                    .sum::<f64>();
            if den.abs() < 1e-12 {
                return Some(pacf_vals);
            }
            num / den
        };
        let mut phi_new = Vec::with_capacity(k);
        for j in 0..k - 1 {
            phi_new.push(phi_prev[j] - phi_kk * phi_prev[k - 2 - j]);
        }
        phi_new.push(phi_kk);
        phi_prev = phi_new;
        pacf_vals.push(phi_kk);
    }
    Some(pacf_vals)
}

/// Yule–Walker AR(p) coefficient estimates from the sample ACF, via the
/// same Durbin–Levinson recursion. Used to initialize the CSS optimizer.
pub fn yule_walker(xs: &[f64], p: usize) -> Option<Vec<f64>> {
    if p == 0 {
        return Some(Vec::new());
    }
    let rho = acf(xs, p)?;
    let mut phi: Vec<f64> = vec![rho[1]];
    for k in 2..=p {
        let num = rho[k]
            - phi
                .iter()
                .enumerate()
                .map(|(j, &c)| c * rho[k - 1 - j])
                .sum::<f64>();
        let den = 1.0
            - phi
                .iter()
                .enumerate()
                .map(|(j, &c)| c * rho[j + 1])
                .sum::<f64>();
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        let mut next = Vec::with_capacity(k);
        for j in 0..k - 1 {
            next.push(phi[j] - phi_kk * phi[k - 2 - j]);
        }
        next.push(phi_kk);
        phi = next;
    }
    Some(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Rng;

    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(seed);
        let mut xs = Vec::with_capacity(n);
        let mut prev = 0.0;
        for _ in 0..n {
            prev = phi * prev + noise.sample(&mut rng);
            xs.push(prev);
        }
        xs
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let xs = ar1_series(0.5, 500, 1);
        let a = acf(&xs, 5).unwrap();
        assert_eq!(a[0], 1.0);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let xs = ar1_series(0.8, 20_000, 2);
        let a = acf(&xs, 3).unwrap();
        assert!((a[1] - 0.8).abs() < 0.05, "lag1 {}", a[1]);
        assert!((a[2] - 0.64).abs() < 0.07, "lag2 {}", a[2]);
    }

    #[test]
    fn acf_rejects_degenerate_input() {
        assert!(acf(&[1.0], 0).is_none());
        assert!(acf(&[2.0, 2.0, 2.0], 1).is_none(), "constant series");
        assert!(acf(&[1.0, 2.0], 5).is_none(), "lag beyond length");
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let xs = ar1_series(0.7, 20_000, 3);
        let p = pacf(&xs, 4).unwrap();
        assert!((p[0] - 0.7).abs() < 0.05, "lag1 {}", p[0]);
        for (i, &v) in p[1..].iter().enumerate() {
            assert!(v.abs() < 0.1, "lag{} {v}", i + 2);
        }
    }

    #[test]
    fn yule_walker_recovers_ar1() {
        let xs = ar1_series(0.6, 20_000, 4);
        let phi = yule_walker(&xs, 1).unwrap();
        assert!((phi[0] - 0.6).abs() < 0.05, "{}", phi[0]);
    }

    #[test]
    fn yule_walker_recovers_ar2() {
        // X_t = 0.5 X_{t-1} + 0.3 X_{t-2} + e.
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(5);
        let mut xs = vec![0.0, 0.0];
        for t in 2..30_000 {
            let v = 0.5 * xs[t - 1] + 0.3 * xs[t - 2] + noise.sample(&mut rng);
            xs.push(v);
        }
        let phi = yule_walker(&xs, 2).unwrap();
        assert!((phi[0] - 0.5).abs() < 0.06, "{:?}", phi);
        assert!((phi[1] - 0.3).abs() < 0.06, "{:?}", phi);
    }

    #[test]
    fn yule_walker_zero_order() {
        assert_eq!(yule_walker(&[1.0, 2.0, 3.0], 0), Some(vec![]));
    }
}
