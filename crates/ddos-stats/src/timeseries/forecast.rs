//! Forecast evaluation: the paper's Table IV protocol.
//!
//! §IV-A: *"we split our data into two parts, the first half is for
//! training and the other half is used for prediction and evaluation"*,
//! then mean, standard deviation, and cosine similarity are compared
//! between prediction and ground truth.

use serde::{Deserialize, Serialize};

use crate::descriptive::{mean, std_dev};
use crate::similarity::cosine_similarity;
use crate::timeseries::arima::{ArimaError, ArimaFit, ArimaModel, ArimaSpec};

/// Comparison between a prediction series and ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastEval {
    /// Number of evaluated points.
    pub n: usize,
    /// Mean of the predictions (Table IV "prediction / Mean").
    pub pred_mean: f64,
    /// Standard deviation of the predictions.
    pub pred_std: f64,
    /// Mean of the ground truth (Table IV "ground truth / Mean").
    pub truth_mean: f64,
    /// Standard deviation of the ground truth.
    pub truth_std: f64,
    /// Cosine similarity between the two series (Table IV "Similarity").
    pub cosine: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
}

/// Evaluates a prediction against ground truth.
///
/// Returns `None` on mismatched lengths, empty input, or an undefined
/// cosine (zero-norm vector).
pub fn evaluate_forecast(pred: &[f64], truth: &[f64]) -> Option<ForecastEval> {
    if pred.len() != truth.len() || pred.is_empty() {
        return None;
    }
    let errors: Vec<f64> = pred.iter().zip(truth).map(|(p, t)| p - t).collect();
    let mae = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
    let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt();
    Some(ForecastEval {
        n: pred.len(),
        pred_mean: mean(pred)?,
        pred_std: std_dev(pred).unwrap_or(0.0),
        truth_mean: mean(truth)?,
        truth_std: std_dev(truth).unwrap_or(0.0),
        cosine: cosine_similarity(pred, truth)?,
        mae,
        rmse,
    })
}

/// Output of the half-split prediction pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitForecast {
    /// The fitted model and its diagnostics.
    pub fit: ArimaFit,
    /// Rolling one-step predictions for the held-out half.
    pub predictions: Vec<f64>,
    /// The held-out ground truth.
    pub truth: Vec<f64>,
    /// Per-point errors `prediction − truth` in chronological order (the
    /// bottom panels of Figs. 12–13).
    pub errors: Vec<f64>,
    /// Table IV statistics.
    pub eval: ForecastEval,
}

/// Runs the paper's evaluation protocol on one series: fit on the first
/// half, roll one-step predictions over the second half, and score.
///
/// `max_eval` optionally caps the evaluated tail (the paper uses "the
/// last 2,700 values"); pass `None` to evaluate the whole second half.
pub fn split_forecast(
    series: &[f64],
    spec: ArimaSpec,
    max_eval: Option<usize>,
) -> Result<SplitForecast, ArimaError> {
    let split = series.len() / 2;
    let (train, mut test) = series.split_at(split);
    let fit = ArimaModel::fit(train, spec)?;
    let mut history = train;
    if let Some(cap) = max_eval {
        if cap < test.len() {
            // Keep the evaluation window at the *end*, conditioning on
            // everything before it, exactly like the paper's "last 2,700
            // values".
            let skip = test.len() - cap;
            history = &series[..split + skip];
            test = &series[split + skip..];
        }
    }
    let predictions = fit
        .model
        .rolling_one_step(history, test)
        .ok_or(ArimaError::TooShort {
            needed: spec.d + 1,
            got: history.len(),
        })?;
    let eval = evaluate_forecast(&predictions, test).ok_or(ArimaError::NonFinite)?;
    let errors: Vec<f64> = predictions.iter().zip(test).map(|(p, t)| p - t).collect();
    Ok(SplitForecast {
        fit,
        predictions,
        truth: test.to_vec(),
        errors,
        eval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Rng;

    #[test]
    fn evaluate_basic_statistics() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 2.0, 5.0];
        let e = evaluate_forecast(&pred, &truth).unwrap();
        assert_eq!(e.n, 3);
        assert_eq!(e.pred_mean, 2.0);
        assert!((e.mae - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.rmse - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(e.cosine > 0.9);
    }

    #[test]
    fn evaluate_rejects_mismatch() {
        assert!(evaluate_forecast(&[1.0], &[1.0, 2.0]).is_none());
        assert!(evaluate_forecast(&[], &[]).is_none());
        assert!(evaluate_forecast(&[0.0, 0.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn identical_series_scores_perfectly() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let e = evaluate_forecast(&xs, &xs).unwrap();
        assert!((e.cosine - 1.0).abs() < 1e-12);
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.rmse, 0.0);
    }

    fn stationary_series(n: usize, seed: u64) -> Vec<f64> {
        // AR(1) around a positive level, like a dispersion series.
        let noise = Normal::new(0.0, 50.0);
        let mut rng = Rng::new(seed);
        let mut x = 600.0;
        (0..n)
            .map(|_| {
                x = 600.0 + 0.7 * (x - 600.0) + noise.sample(&mut rng);
                x
            })
            .collect()
    }

    #[test]
    fn split_forecast_on_predictable_series_has_high_similarity() {
        let xs = stationary_series(2_000, 8);
        let sf = split_forecast(&xs, ArimaSpec::new(1, 0, 0), None).unwrap();
        assert_eq!(sf.predictions.len(), 1_000);
        assert_eq!(sf.errors.len(), 1_000);
        // Positive-level series with accurate one-step predictions score
        // very high cosine similarity (the paper reports > 0.9).
        assert!(sf.eval.cosine > 0.95, "cosine {}", sf.eval.cosine);
        assert!(
            (sf.eval.pred_mean - sf.eval.truth_mean).abs() < 30.0,
            "means {} vs {}",
            sf.eval.pred_mean,
            sf.eval.truth_mean
        );
    }

    #[test]
    fn split_forecast_caps_evaluation_window() {
        let xs = stationary_series(2_000, 9);
        let sf = split_forecast(&xs, ArimaSpec::new(1, 0, 0), Some(100)).unwrap();
        assert_eq!(sf.predictions.len(), 100);
        assert_eq!(sf.truth.len(), 100);
        // The evaluated window is the *last* 100 points.
        assert_eq!(sf.truth, xs[1_900..].to_vec());
        // A cap larger than the half is a no-op.
        let sf2 = split_forecast(&xs, ArimaSpec::new(1, 0, 0), Some(5_000)).unwrap();
        assert_eq!(sf2.predictions.len(), 1_000);
    }

    #[test]
    fn split_forecast_propagates_fit_errors() {
        assert!(matches!(
            split_forecast(&[1.0, 2.0, 3.0], ArimaSpec::DEFAULT, None),
            Err(ArimaError::TooShort { .. })
        ));
    }

    #[test]
    fn errors_are_pred_minus_truth() {
        let xs = stationary_series(600, 10);
        let sf = split_forecast(&xs, ArimaSpec::new(1, 0, 0), None).unwrap();
        for ((p, t), e) in sf.predictions.iter().zip(&sf.truth).zip(&sf.errors) {
            assert!((p - t - e).abs() < 1e-12);
        }
    }
}
