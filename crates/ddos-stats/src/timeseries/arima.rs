//! ARIMA(p, d, q) modeling.
//!
//! The paper: *"we use the Autoregressive Integrated Moving Average
//! (ARIMA) model, which is one of the popular linear models in time
//! series forecasting"* (§IV-A). This implementation fits by
//! **conditional sum of squares** (CSS): the series is differenced `d`
//! times, demeaned, AR coefficients are initialized by Yule–Walker, and a
//! Nelder–Mead search minimizes the sum of squared one-step innovations.
//! CSS is self-regularizing against explosive AR roots (the objective
//! blows up), which keeps the optimizer inside the sane region without a
//! constraint solver.

use serde::{Deserialize, Serialize};

use crate::descriptive::mean;
use crate::timeseries::acf::yule_walker;
use crate::timeseries::diff::{difference, integrate};
use crate::timeseries::optimize::{nelder_mead, Options};

/// Model order: AR terms `p`, differencing `d`, MA terms `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaSpec {
    /// Creates a spec.
    pub const fn new(p: usize, d: usize, q: usize) -> ArimaSpec {
        ArimaSpec { p, d, q }
    }

    /// The default order used for the paper's dispersion series.
    ///
    /// The dispersion series are locally stationary with slow level
    /// shifts, which a single difference absorbs; (2,1,1) matched or beat
    /// neighboring orders on CSS across families in our calibration runs
    /// (the `prediction` bench sweeps the grid).
    pub const DEFAULT: ArimaSpec = ArimaSpec::new(2, 1, 1);

    /// Number of free coefficients (`p + q`).
    pub fn num_params(&self) -> usize {
        self.p + self.q
    }
}

impl std::fmt::Display for ArimaSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArimaError {
    /// The series is too short for the requested order.
    TooShort {
        /// Minimum observations needed.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// The series contains NaN or infinite values.
    NonFinite,
}

impl std::fmt::Display for ArimaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArimaError::TooShort { needed, got } => {
                write!(f, "series too short: need >= {needed}, got {got}")
            }
            ArimaError::NonFinite => write!(f, "series contains non-finite values"),
        }
    }
}

impl std::error::Error for ArimaError {}

/// A fitted ARIMA model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaModel {
    /// Model order.
    pub spec: ArimaSpec,
    /// Mean of the differenced series (the drift/intercept).
    pub mean: f64,
    /// AR coefficients φ₁..φ_p.
    pub phi: Vec<f64>,
    /// MA coefficients θ₁..θ_q.
    pub theta: Vec<f64>,
    /// Innovation variance estimate (SSE / n).
    pub sigma2: f64,
}

/// Fit diagnostics alongside the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaFit {
    /// The fitted model.
    pub model: ArimaModel,
    /// Conditional sum of squared innovations at the optimum.
    pub sse: f64,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Whether the optimizer converged (vs iteration cap).
    pub converged: bool,
}

impl ArimaFit {
    /// Akaike information criterion of the fit (lower is better); `None`
    /// for degenerate (perfect or empty) fits.
    pub fn aic(&self, n: usize) -> Option<f64> {
        crate::timeseries::diagnostics::aic(self.sse, n, self.model.spec.num_params())
    }
}

impl ArimaModel {
    /// Fits every order in `p <= max_p`, `d <= max_d`, `q <= max_q` and
    /// returns the fit with the lowest AIC.
    ///
    /// Errors with the last fit failure if no order fits at all.
    pub fn auto_fit(
        series: &[f64],
        max_p: usize,
        max_d: usize,
        max_q: usize,
    ) -> Result<ArimaFit, ArimaError> {
        let mut best: Option<(f64, ArimaFit)> = None;
        let mut last_err = ArimaError::TooShort {
            needed: 8,
            got: series.len(),
        };
        for d in 0..=max_d {
            for p in 0..=max_p {
                for q in 0..=max_q {
                    if p + q == 0 {
                        continue;
                    }
                    match ArimaModel::fit(series, ArimaSpec::new(p, d, q)) {
                        Ok(fit) => {
                            let n = series.len().saturating_sub(d);
                            let score = fit.aic(n).unwrap_or(f64::NEG_INFINITY);
                            // A NEG_INFINITY score (perfect fit) always wins.
                            if best.as_ref().map_or(true, |(s, _)| score < *s) {
                                best = Some((score, fit));
                            }
                        }
                        Err(e) => last_err = e,
                    }
                }
            }
        }
        best.map(|(_, fit)| fit).ok_or(last_err)
    }

    /// Fits the model to `series` by CSS.
    ///
    /// Needs at least `d + max(p, q) + 8` observations. Constant series
    /// fit trivially (all coefficients zero, σ² = 0).
    pub fn fit(series: &[f64], spec: ArimaSpec) -> Result<ArimaFit, ArimaError> {
        let needed = spec.d + spec.p.max(spec.q) + 8;
        if series.len() < needed {
            return Err(ArimaError::TooShort {
                needed,
                got: series.len(),
            });
        }
        if series.iter().any(|v| !v.is_finite()) {
            return Err(ArimaError::NonFinite);
        }
        let w = difference(series, spec.d).expect("length checked");
        let mu = mean(&w).expect("non-empty");
        let z: Vec<f64> = w.iter().map(|v| v - mu).collect();

        // Degenerate (constant after differencing): nothing to optimize.
        if z.iter().all(|v| v.abs() < 1e-12) {
            return Ok(ArimaFit {
                model: ArimaModel {
                    spec,
                    mean: mu,
                    phi: vec![0.0; spec.p],
                    theta: vec![0.0; spec.q],
                    sigma2: 0.0,
                },
                sse: 0.0,
                iterations: 0,
                converged: true,
            });
        }

        let mut x0 = yule_walker(&z, spec.p).unwrap_or_else(|| vec![0.0; spec.p]);
        // Clamp a wild Yule–Walker start back into the plausible region.
        for v in &mut x0 {
            *v = v.clamp(-0.95, 0.95);
        }
        x0.extend(std::iter::repeat(0.0).take(spec.q));

        let objective = |params: &[f64]| css(&z, spec, params);
        let result = nelder_mead(
            objective,
            &x0,
            Options {
                max_iterations: 500 * (1 + spec.num_params()),
                ..Options::default()
            },
        );
        let (phi, theta) = result.x.split_at(spec.p);
        let sse = result.value;
        Ok(ArimaFit {
            model: ArimaModel {
                spec,
                mean: mu,
                phi: phi.to_vec(),
                theta: theta.to_vec(),
                sigma2: sse / z.len() as f64,
            },
            sse,
            iterations: result.iterations,
            converged: result.converged,
        })
    }

    /// One-step innovations over a centered, differenced series.
    fn innovations(&self, z: &[f64]) -> Vec<f64> {
        innovations_for(z, &self.phi, &self.theta)
    }

    /// Multi-step forecast: the next `horizon` values after `history`,
    /// on the original (undifferenced) scale.
    ///
    /// Returns `None` when `history` is shorter than the differencing
    /// order allows.
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Option<Vec<f64>> {
        let spec = self.spec;
        let w = difference(history, spec.d)?;
        let mut z: Vec<f64> = w.iter().map(|v| v - self.mean).collect();
        let mut e = self.innovations(&z);

        let n = z.len();
        let mut out_z = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let t = n + k;
            let mut pred = 0.0;
            for (i, &p) in self.phi.iter().enumerate() {
                if t > i {
                    pred += p * z[t - 1 - i];
                }
            }
            for (j, &q) in self.theta.iter().enumerate() {
                if t > j {
                    pred += q * e[t - 1 - j];
                }
            }
            z.push(pred);
            e.push(0.0); // future innovations are zero in expectation
            out_z.push(pred);
        }
        let w_hat: Vec<f64> = out_z.iter().map(|v| v + self.mean).collect();
        integrate(&w_hat, history, spec.d)
    }

    /// ψ-weights of the ARMA part (the MA(∞) expansion): `psi[0] = 1`,
    /// `psi[j] = θ_j + Σ φ_i·psi[j−i]`. The h-step forecast variance of
    /// the *differenced* process is `σ² Σ_{j<h} ψ_j²`.
    fn psi_weights(&self, horizon: usize) -> Vec<f64> {
        let mut psi = vec![0.0; horizon];
        if horizon == 0 {
            return psi;
        }
        psi[0] = 1.0;
        for j in 1..horizon {
            let mut v = *self.theta.get(j - 1).unwrap_or(&0.0);
            for (i, &p) in self.phi.iter().enumerate() {
                if j > i {
                    v += p * psi[j - 1 - i];
                }
            }
            psi[j] = v;
        }
        psi
    }

    /// Multi-step forecast with symmetric prediction intervals:
    /// `(lower, point, upper)` per horizon step, at `z` standard errors
    /// (1.96 ≈ 95%).
    ///
    /// Interval widths use the ψ-weight variance of the ARIMA process
    /// (differencing integrates the weights, so a random-walk model's
    /// interval grows like √h, as it must).
    pub fn forecast_with_bounds(
        &self,
        history: &[f64],
        horizon: usize,
        z: f64,
    ) -> Option<Vec<(f64, f64, f64)>> {
        let points = self.forecast(history, horizon)?;
        // ψ-weights of the differenced (ARMA) process...
        let mut psi = self.psi_weights(horizon);
        // ...integrated d times: each integration replaces ψ with its
        // cumulative sums (the forecast of the original series is a d-fold
        // cumulative sum of differenced forecasts).
        for _ in 0..self.spec.d {
            let mut acc = 0.0;
            for w in psi.iter_mut() {
                acc += *w;
                *w = acc;
            }
        }
        let mut var = 0.0;
        let out = points
            .into_iter()
            .zip(&psi)
            .map(|(point, &w)| {
                var += self.sigma2 * w * w;
                let half = z * var.sqrt();
                (point - half, point, point + half)
            })
            .collect();
        Some(out)
    }

    /// Rolling one-step-ahead predictions over `test`, conditioning each
    /// step on the *actual* history up to that point (the paper's
    /// evaluation protocol for Figs. 12–13: fit once on the first half,
    /// then predict each held-out point from everything before it).
    ///
    /// Returns one prediction per element of `test`, on the original
    /// scale, or `None` if `history` is too short for the differencing
    /// order.
    pub fn rolling_one_step(&self, history: &[f64], test: &[f64]) -> Option<Vec<f64>> {
        let spec = self.spec;
        if history.len() <= spec.d {
            return None;
        }
        let mut full = Vec::with_capacity(history.len() + test.len());
        full.extend_from_slice(history);
        full.extend_from_slice(test);
        let w = difference(&full, spec.d)?;
        let z: Vec<f64> = w.iter().map(|v| v - self.mean).collect();
        let e = self.innovations(&z);

        // In z-index space the first test point sits at this offset.
        let first = history.len() - spec.d;
        let mut preds = Vec::with_capacity(test.len());
        for (k, &actual) in test.iter().enumerate() {
            let t = first + k;
            let mut zhat = 0.0;
            for (i, &p) in self.phi.iter().enumerate() {
                if t > i {
                    zhat += p * z[t - 1 - i];
                }
            }
            for (j, &q) in self.theta.iter().enumerate() {
                if t > j {
                    zhat += q * e[t - 1 - j];
                }
            }
            let w_hat = zhat + self.mean;
            // Undo differencing against the actual previous values:
            // x̂_t = x_t − w_t + ŵ_t  (w_t is the actual d-th difference).
            preds.push(actual - w[t] + w_hat);
        }
        Some(preds)
    }
}

/// One-step innovations for given coefficients (shared by fitting and
/// prediction).
fn innovations_for(z: &[f64], phi: &[f64], theta: &[f64]) -> Vec<f64> {
    let mut e = Vec::with_capacity(z.len());
    for t in 0..z.len() {
        let mut pred = 0.0;
        for (i, &p) in phi.iter().enumerate() {
            if t > i {
                pred += p * z[t - 1 - i];
            }
        }
        for (j, &q) in theta.iter().enumerate() {
            if t > j {
                pred += q * e[t - 1 - j];
            }
        }
        e.push(z[t] - pred);
    }
    e
}

/// Conditional sum of squares for a parameter vector `[phi.., theta..]`.
fn css(z: &[f64], spec: ArimaSpec, params: &[f64]) -> f64 {
    let (phi, theta) = params.split_at(spec.p);
    let mut sse = 0.0;
    let mut e: Vec<f64> = Vec::with_capacity(z.len());
    for t in 0..z.len() {
        let mut pred = 0.0;
        for (i, &p) in phi.iter().enumerate() {
            if t > i {
                pred += p * z[t - 1 - i];
            }
        }
        for (j, &q) in theta.iter().enumerate() {
            if t > j {
                pred += q * e[t - 1 - j];
            }
        }
        let err = z[t] - pred;
        if !err.is_finite() {
            return f64::INFINITY;
        }
        sse += err * err;
        e.push(err);
    }
    sse
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Rng;

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(seed);
        let mut xs = Vec::with_capacity(n);
        let mut prev = 0.0;
        for _ in 0..n {
            prev = phi * prev + noise.sample(&mut rng);
            xs.push(prev);
        }
        xs
    }

    #[test]
    fn fit_recovers_ar1_coefficient() {
        let xs = ar1(0.7, 5_000, 1);
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        assert!(
            (fit.model.phi[0] - 0.7).abs() < 0.05,
            "phi {:?}",
            fit.model.phi
        );
        assert!(
            (fit.model.sigma2 - 1.0).abs() < 0.1,
            "σ² {}",
            fit.model.sigma2
        );
    }

    #[test]
    fn fit_recovers_ma1_coefficient() {
        // X_t = e_t + 0.6 e_{t-1}.
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(2);
        let mut prev_e = 0.0;
        let xs: Vec<f64> = (0..5_000)
            .map(|_| {
                let e = noise.sample(&mut rng);
                let x = e + 0.6 * prev_e;
                prev_e = e;
                x
            })
            .collect();
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(0, 0, 1)).unwrap();
        assert!(
            (fit.model.theta[0] - 0.6).abs() < 0.07,
            "theta {:?}",
            fit.model.theta
        );
    }

    #[test]
    fn fit_handles_random_walk_with_drift() {
        // x_t = x_{t-1} + 0.5 + e: after d=1 it's white noise, mean 0.5.
        let noise = Normal::new(0.0, 0.3);
        let mut rng = Rng::new(3);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..2_000)
            .map(|_| {
                x += 0.5 + noise.sample(&mut rng);
                x
            })
            .collect();
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        assert!(
            (fit.model.mean - 0.5).abs() < 0.05,
            "mean {}",
            fit.model.mean
        );
        let fc = fit.model.forecast(&xs, 3).unwrap();
        let last = *xs.last().unwrap();
        assert!((fc[0] - (last + 0.5)).abs() < 0.1);
        assert!((fc[2] - (last + 1.5)).abs() < 0.2);
    }

    #[test]
    fn constant_series_fits_trivially() {
        let xs = vec![5.0; 100];
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(2, 0, 1)).unwrap();
        assert_eq!(fit.model.sigma2, 0.0);
        assert_eq!(fit.model.mean, 5.0);
        let fc = fit.model.forecast(&xs, 4).unwrap();
        for v in fc {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn errors_on_short_or_bad_input() {
        assert!(matches!(
            ArimaModel::fit(&[1.0, 2.0], ArimaSpec::DEFAULT),
            Err(ArimaError::TooShort { .. })
        ));
        let mut xs = ar1(0.5, 100, 4);
        xs[50] = f64::NAN;
        assert_eq!(
            ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)),
            Err(ArimaError::NonFinite)
        );
    }

    #[test]
    fn forecast_of_ar1_decays_toward_mean() {
        let xs = ar1(0.8, 3_000, 5);
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let fc = fit.model.forecast(&xs, 50).unwrap();
        // Long-horizon AR(1) forecasts converge to the series mean (~0).
        assert!(fc[49].abs() < 0.3, "horizon-50 {}", fc[49]);
    }

    #[test]
    fn rolling_one_step_beats_naive_on_ar1() {
        let xs = ar1(0.8, 4_000, 6);
        let (train, test) = xs.split_at(2_000);
        let fit = ArimaModel::fit(train, ArimaSpec::new(1, 0, 0)).unwrap();
        let preds = fit.model.rolling_one_step(train, test).unwrap();
        assert_eq!(preds.len(), test.len());
        let model_sse: f64 = preds.iter().zip(test).map(|(p, t)| (p - t).powi(2)).sum();
        // Naive predictor: repeat the previous value.
        let mut naive_sse = 0.0;
        let mut prev = train[train.len() - 1];
        for &t in test {
            naive_sse += (prev - t).powi(2);
            prev = t;
        }
        assert!(
            model_sse < naive_sse,
            "model {model_sse} vs naive {naive_sse}"
        );
    }

    #[test]
    fn rolling_one_step_with_differencing_round_trips() {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(7);
        let mut x = 100.0;
        let xs: Vec<f64> = (0..1_000)
            .map(|_| {
                x += noise.sample(&mut rng);
                x
            })
            .collect();
        let (train, test) = xs.split_at(500);
        let fit = ArimaModel::fit(train, ArimaSpec::new(1, 1, 1)).unwrap();
        let preds = fit.model.rolling_one_step(train, test).unwrap();
        // Random-walk one-step predictions track the series closely.
        let mae: f64 = preds
            .iter()
            .zip(test)
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / test.len() as f64;
        assert!(mae < 2.0, "mae {mae}");
    }

    #[test]
    fn psi_weights_of_ar1_decay_geometrically() {
        let model = ArimaModel {
            spec: ArimaSpec::new(1, 0, 0),
            mean: 0.0,
            phi: vec![0.8],
            theta: vec![],
            sigma2: 1.0,
        };
        let psi = model.psi_weights(5);
        for (j, &w) in psi.iter().enumerate() {
            assert!((w - 0.8f64.powi(j as i32)).abs() < 1e-12, "psi[{j}] = {w}");
        }
    }

    #[test]
    fn forecast_bounds_widen_with_horizon() {
        let xs = ar1(0.8, 3_000, 21);
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let bounds = fit.model.forecast_with_bounds(&xs, 30, 1.96).unwrap();
        assert_eq!(bounds.len(), 30);
        for w in bounds.windows(2) {
            let (w0, w1) = (w[0].2 - w[0].0, w[1].2 - w[1].0);
            assert!(w1 >= w0 - 1e-9, "interval shrank: {w0} -> {w1}");
        }
        // AR(1) interval converges to ±z·σ/√(1−φ²) ≈ ±3.27 for φ=0.8.
        let last_half = (bounds[29].2 - bounds[29].0) / 2.0;
        let expected = 1.96 * (fit.model.sigma2 / (1.0 - 0.8f64 * 0.8)).sqrt();
        assert!(
            (last_half / expected - 1.0).abs() < 0.15,
            "{last_half} vs {expected}"
        );
        // Bounds bracket the point forecast symmetrically.
        for &(lo, mid, hi) in &bounds {
            assert!(lo <= mid && mid <= hi);
            assert!(((hi - mid) - (mid - lo)).abs() < 1e-9);
        }
    }

    #[test]
    fn random_walk_bounds_grow_like_sqrt_h() {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(22);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..3_000)
            .map(|_| {
                x += noise.sample(&mut rng);
                x
            })
            .collect();
        let fit = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        let bounds = fit.model.forecast_with_bounds(&xs, 100, 1.0).unwrap();
        let h1 = (bounds[0].2 - bounds[0].0) / 2.0;
        let h100 = (bounds[99].2 - bounds[99].0) / 2.0;
        // Random-walk std at horizon 100 is 10x the one-step std.
        assert!((h100 / h1 - 10.0).abs() < 0.5, "ratio {}", h100 / h1);
    }

    #[test]
    fn aic_ranks_orders_sanely() {
        let xs = ar1(0.7, 2_000, 11);
        let small = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let big = ArimaModel::fit(&xs, ArimaSpec::new(3, 0, 3)).unwrap();
        let a_small = small.aic(xs.len()).unwrap();
        let a_big = big.aic(xs.len()).unwrap();
        // The true model is AR(1); the over-parameterized fit cannot beat
        // it by more than its parameter penalty.
        assert!(a_small < a_big + 1.0, "{a_small} vs {a_big}");
    }

    #[test]
    fn auto_fit_finds_a_reasonable_order() {
        let xs = ar1(0.7, 2_000, 12);
        let fit = ArimaModel::auto_fit(&xs, 2, 1, 2).unwrap();
        // Whatever the chosen order, the one-step innovations must be
        // close to the true noise variance (1.0).
        assert!(
            (fit.model.sigma2 - 1.0).abs() < 0.15,
            "σ² {}",
            fit.model.sigma2
        );
        assert!(fit.model.spec.p <= 2 && fit.model.spec.q <= 2);
    }

    #[test]
    fn auto_fit_errors_on_short_series() {
        assert!(ArimaModel::auto_fit(&[1.0, 2.0], 2, 1, 2).is_err());
    }

    #[test]
    fn spec_display_and_params() {
        let s = ArimaSpec::new(2, 1, 1);
        assert_eq!(s.to_string(), "ARIMA(2,1,1)");
        assert_eq!(s.num_params(), 3);
        assert_eq!(ArimaSpec::DEFAULT, s);
    }
}
