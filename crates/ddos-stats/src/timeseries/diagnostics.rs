//! Model diagnostics: information criteria and residual whiteness.
//!
//! Supports the ARIMA order-selection ablation: AIC ranks candidate
//! orders, the Ljung–Box test checks that a fitted model's one-step
//! innovations are white (no autocorrelation structure left to model).

use crate::timeseries::acf::acf;

/// Akaike information criterion for a Gaussian CSS fit:
/// `n·ln(SSE/n) + 2·(k + 1)` (the `+1` counts the innovation variance).
///
/// Returns `None` for empty series or non-positive SSE (a perfect fit
/// has no meaningful likelihood under the Gaussian approximation).
pub fn aic(sse: f64, n: usize, k: usize) -> Option<f64> {
    if n == 0 || sse <= 0.0 {
        return None;
    }
    Some(n as f64 * (sse / n as f64).ln() + 2.0 * (k as f64 + 1.0))
}

/// Result of a Ljung–Box whiteness test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom used for the reference χ² distribution.
    pub df: usize,
    /// Approximate p-value (probability of a Q at least this large under
    /// the white-noise null).
    pub p_value: f64,
}

impl LjungBox {
    /// Whether the white-noise null survives at the given significance
    /// level (e.g. `0.05`).
    pub fn is_white(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Ljung–Box test on residuals at lags `1..=lags`, with `fitted_params`
/// model parameters subtracted from the degrees of freedom.
///
/// Returns `None` when the series is too short, constant, or the df
/// would be non-positive.
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> Option<LjungBox> {
    let n = residuals.len();
    if n <= lags + 1 || lags == 0 || lags <= fitted_params {
        return None;
    }
    let rho = acf(residuals, lags)?;
    let nf = n as f64;
    let statistic = nf
        * (nf + 2.0)
        * (1..=lags)
            .map(|k| rho[k] * rho[k] / (nf - k as f64))
            .sum::<f64>();
    let df = lags - fitted_params;
    Some(LjungBox {
        statistic,
        df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Survival function of the χ² distribution: `P(X > x)` with `k` degrees
/// of freedom, via the regularized upper incomplete gamma function.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - regularized_lower_gamma(k / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma `P(a, x)`, by series expansion for
/// `x < a + 1` and continued fraction otherwise (Numerical Recipes
/// `gammp`). Accurate to ~1e-10 over the range diagnostics need.
fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for the upper tail (Lentz's method).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-14 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// `ln Γ(z)` by the Lanczos approximation (g = 7, n = 9).
fn ln_gamma(z: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if z < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * z).sin()).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut x = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        x += c / (z + i as f64 + 1.0);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + x.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Rng;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_reference_points() {
        // Standard table values: P(X > 3.841 | k=1) ≈ 0.05,
        // P(X > 5.991 | k=2) ≈ 0.05, P(X > 18.307 | k=10) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 2e-3);
        assert!((chi_square_sf(5.991, 2.0) - 0.05).abs() < 2e-3);
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 2e-3);
        assert_eq!(chi_square_sf(0.0, 3.0), 1.0);
        assert!(chi_square_sf(1e6, 3.0) < 1e-12);
    }

    #[test]
    fn aic_prefers_smaller_sse_and_penalizes_params() {
        let a = aic(100.0, 500, 1).unwrap();
        let b = aic(90.0, 500, 1).unwrap();
        assert!(b < a, "smaller SSE must score better");
        let c = aic(100.0, 500, 5).unwrap();
        assert!(c > a, "extra parameters must cost");
        assert_eq!(aic(0.0, 10, 1), None);
        assert_eq!(aic(5.0, 0, 1), None);
    }

    #[test]
    fn white_noise_passes_ljung_box() {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(42);
        let xs: Vec<f64> = (0..2_000).map(|_| noise.sample(&mut rng)).collect();
        let lb = ljung_box(&xs, 20, 0).unwrap();
        assert!(lb.is_white(0.01), "white noise rejected: {lb:?}");
        assert_eq!(lb.df, 20);
    }

    #[test]
    fn autocorrelated_series_fails_ljung_box() {
        let noise = Normal::new(0.0, 1.0);
        let mut rng = Rng::new(43);
        let mut prev = 0.0;
        let xs: Vec<f64> = (0..2_000)
            .map(|_| {
                prev = 0.7 * prev + noise.sample(&mut rng);
                prev
            })
            .collect();
        let lb = ljung_box(&xs, 20, 0).unwrap();
        assert!(!lb.is_white(0.05), "AR(1) accepted as white: {lb:?}");
        assert!(lb.p_value < 1e-6);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(ljung_box(&[1.0, 2.0], 5, 0).is_none());
        assert!(ljung_box(&vec![3.0; 100], 10, 0).is_none(), "constant");
        assert!(ljung_box(&[1.0, 2.0, 3.0, 2.0, 1.0, 2.0], 3, 3).is_none());
    }
}
