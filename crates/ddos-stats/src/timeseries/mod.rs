//! Time-series analysis: the machinery behind the paper's source
//! prediction (§IV-A).
//!
//! The paper fits an **ARIMA** model to the per-snapshot geolocation
//! dispersion series of each botnet family, splits the data in half,
//! predicts the second half, and reports mean/std/cosine-similarity
//! between prediction and ground truth (Table IV, Figs. 12–13). This
//! module provides that pipeline end-to-end:
//!
//! * [`acf`] — autocorrelation and partial autocorrelation;
//! * [`diff`] — differencing and re-integration (the "I" in ARIMA);
//! * [`optimize`] — a dependency-free Nelder–Mead simplex minimizer;
//! * [`arima`] — ARIMA(p,d,q) fitting by conditional sum of squares with
//!   Yule–Walker initialization, plus multi-step and rolling one-step
//!   forecasts;
//! * [`forecast`] — train/test evaluation producing the paper's Table IV
//!   statistics;
//! * [`diagnostics`] — AIC order selection and Ljung–Box residual
//!   whiteness tests.

pub mod acf;
pub mod arima;
pub mod diagnostics;
pub mod diff;
pub mod forecast;
pub mod optimize;
