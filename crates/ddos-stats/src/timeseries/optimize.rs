//! Nelder–Mead simplex minimization.
//!
//! The CSS objective of an ARMA model is smooth but has no cheap analytic
//! gradient once MA terms enter, so the classic derivative-free simplex
//! method is the standard fitting workhorse (it is also what R's
//! `arima()` falls back to). Standard coefficients: reflection 1,
//! expansion 2, contraction 0.5, shrink 0.5.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations consumed.
    pub iterations: usize,
    /// Whether the simplex converged within tolerance (vs hitting the
    /// iteration cap).
    pub converged: bool,
}

/// Options controlling the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_iterations: 2_000,
            tolerance: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Minimizes `f` starting from `x0`.
///
/// Zero-dimensional problems return immediately. Objective values of NaN
/// are treated as `+∞` so the simplex retreats from invalid regions.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], options: Options) -> Minimum
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    let eval = |x: &[f64], f: &mut F| {
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };
    if n == 0 {
        let value = eval(x0, &mut f);
        return Minimum {
            x: Vec::new(),
            value,
            iterations: 0,
            converged: true,
        };
    }

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += if v[i].abs() > 1e-8 {
            options.initial_step * v[i].abs()
        } else {
            options.initial_step
        };
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut f)).collect();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        // Order: best first.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN values"));
        simplex = order.iter().map(|&i| simplex[i].clone()).collect();
        values = order.iter().map(|&i| values[i]).collect();

        if (values[n] - values[0]).abs() <= options.tolerance * (1.0 + values[0].abs()) {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for v in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[n], -1.0);
        let fr = eval(&reflected, &mut f);
        if fr < values[0] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[n], -2.0);
            let fe = eval(&expanded, &mut f);
            if fe < fr {
                simplex[n] = expanded;
                values[n] = fe;
            } else {
                simplex[n] = reflected;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = reflected;
            values[n] = fr;
        } else {
            // Contraction (outside if the reflected point improved on the
            // worst, inside otherwise).
            let toward = if fr < values[n] {
                &reflected
            } else {
                &simplex[n]
            };
            let contracted = lerp(&centroid, toward, 0.5);
            let fc = eval(&contracted, &mut f);
            if fc < values[n].min(fr) {
                simplex[n] = contracted;
                values[n] = fc;
            } else {
                // Shrink toward the best point.
                let best = simplex[0].clone();
                for (v, val) in simplex.iter_mut().zip(values.iter_mut()).skip(1) {
                    *v = lerp(&best, v, 0.5);
                    *val = eval(v, &mut f);
                }
            }
        }
    }

    let best = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN values"))
        .map(|(i, _)| i)
        .expect("non-empty simplex");
    Minimum {
        x: simplex[best].clone(),
        value: values[best],
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let m = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            Options::default(),
        );
        assert!(m.converged);
        assert!((m.x[0] - 3.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] + 1.0).abs() < 1e-4, "{:?}", m.x);
        assert!(m.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let m = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            Options {
                max_iterations: 10_000,
                ..Options::default()
            },
        );
        assert!((m.x[0] - 1.0).abs() < 1e-3, "{:?}", m);
        assert!((m.x[1] - 1.0).abs() < 1e-3, "{:?}", m);
    }

    #[test]
    fn survives_nan_regions() {
        // NaN outside the unit disc; minimum at the origin.
        let m = nelder_mead(
            |x| {
                let r2 = x[0] * x[0] + x[1] * x[1];
                if r2 > 1.0 {
                    f64::NAN
                } else {
                    r2
                }
            },
            &[0.5, 0.5],
            Options::default(),
        );
        assert!(m.value < 1e-6, "{:?}", m);
    }

    #[test]
    fn zero_dimensional_is_trivial() {
        let m = nelder_mead(|_| 42.0, &[], Options::default());
        assert_eq!(m.value, 42.0);
        assert!(m.converged);
        assert!(m.x.is_empty());
    }

    #[test]
    fn one_dimensional() {
        let m = nelder_mead(|x| (x[0] - 7.0).powi(2) + 5.0, &[100.0], Options::default());
        assert!((m.x[0] - 7.0).abs() < 1e-4);
        assert!((m.value - 5.0).abs() < 1e-8);
    }

    #[test]
    fn respects_iteration_cap() {
        let m = nelder_mead(
            |x| x[0].powi(2),
            &[1e6],
            Options {
                max_iterations: 3,
                ..Options::default()
            },
        );
        assert_eq!(m.iterations, 3);
        assert!(!m.converged);
    }
}
