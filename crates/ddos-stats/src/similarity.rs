//! Vector similarity measures.
//!
//! Table IV of the paper compares ARIMA predictions against ground truth
//! by **cosine similarity**; Pearson correlation is provided alongside for
//! the ablation bench.

/// Cosine similarity of two equal-length vectors.
///
/// Returns `None` when lengths differ, either vector is empty, or either
/// has zero norm (similarity undefined).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return None;
    }
    // Clamp against floating-point drift just past ±1.
    Some((dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0))
}

/// Pearson correlation coefficient of two equal-length vectors.
///
/// Returns `None` when lengths differ, fewer than two points, or either
/// vector is constant.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some((cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_vectors_are_fully_similar() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&v, &v).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors() {
        let a = [1.0, 2.0];
        let b = [-1.0, -2.0];
        assert!((cosine_similarity(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(cosine_similarity(&a, &b), Some(0.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(cosine_similarity(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(cosine_similarity(&[], &[]), None);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), None);
        assert_eq!(pearson_correlation(&[1.0], &[1.0]), None);
        assert_eq!(pearson_correlation(&[2.0, 2.0], &[1.0, 3.0]), None);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| x * 17.0).collect();
        assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_detects_linear_relation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson_correlation(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn cosine_in_unit_range(a in proptest::collection::vec(-100.0f64..100.0, 2..30),
                                b in proptest::collection::vec(-100.0f64..100.0, 2..30)) {
            let n = a.len().min(b.len());
            if let Some(c) = cosine_similarity(&a[..n], &b[..n]) {
                prop_assert!((-1.0..=1.0).contains(&c));
            }
        }

        #[test]
        fn cosine_symmetry(a in proptest::collection::vec(1.0f64..100.0, 2..20),
                           b in proptest::collection::vec(1.0f64..100.0, 2..20)) {
            let n = a.len().min(b.len());
            let ab = cosine_similarity(&a[..n], &b[..n]).unwrap();
            let ba = cosine_similarity(&b[..n], &a[..n]).unwrap();
            prop_assert!((ab - ba).abs() < 1e-12);
        }
    }
}
