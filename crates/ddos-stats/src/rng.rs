//! Seedable random number generation.
//!
//! Trace generation must be reproducible across library upgrades, so the
//! generator algorithms are pinned here ([`SplitMix64`] and xoshiro256++
//! seeded via SplitMix64, Blackman & Vigna) instead of relying on
//! `rand`'s unspecified `SmallRng`. [`Rng`] implements
//! `rand_core::RngCore`, so it still plugs into the `rand` ecosystem
//! where convenient. `ddos-geo` re-exports [`SplitMix64`], [`mix64`] and
//! [`mix_f64`] for its deterministic world synthesis.

use rand::RngCore;

/// SplitMix64 — the standard 64-bit mixer from Vigna's `xorshift` paper.
///
/// This is the one SplitMix64 in the workspace: `ddos-geo` re-exports it
/// for world synthesis (a geo database must be reproducible from a seed
/// alone and must not change when the `rand` crate revs its algorithms),
/// and [`Rng`] uses it as its seeding procedure.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for our bounds (all far below 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[-1, 1)`.
    pub fn next_signed_f64(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }
}

/// Stateless 64-bit mix of a key — used to derive stable per-entity jitter
/// (e.g. an address's offset from its city centroid) without threading an
/// RNG through lookups.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed key to a float in `[0, 1)`.
pub fn mix_f64(key: u64) -> f64 {
    (mix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Pinned-algorithm PRNG: xoshiro256++.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64,
    /// the seeding procedure recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Derives an independent child generator for a labeled subtask.
    ///
    /// Used to give each botnet family / week its own stream so adding
    /// one family never perturbs another's randomness.
    pub fn fork(&self, label: u64) -> Rng {
        let mut sm = SplitMix64::new(self.s[0] ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(1234);
        let mut b = Rng::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = Rng::new(9);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1b = root.fork(1);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = Rng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_and_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_inclusive(5, 7);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(r.range_inclusive(3, 3), 3);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = Rng::new(8);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn rngcore_fill_bytes() {
        let mut r = Rng::new(10);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn splitmix_deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_next_below_respects_bound() {
        let mut r = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn splitmix_floats_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let s = r.next_signed_f64();
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn mix_is_stable() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(1), mix64(2));
        assert!((0.0..1.0).contains(&mix_f64(123)));
    }

    #[test]
    fn known_reference_values() {
        // Pin the output so an accidental algorithm change is caught.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }
}
