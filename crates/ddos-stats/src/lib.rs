//! Statistics toolkit for the DDoS characterization pipeline.
//!
//! The paper's analyses are statistical: empirical CDFs of intervals and
//! durations (Figs. 3, 5, 7, 17), histograms of geolocation dispersion
//! (Figs. 10–11), descriptive moments quoted throughout, cosine similarity
//! between prediction and ground truth (Table IV), and an **ARIMA**
//! time-series model for source-location forecasting (§IV-A, Figs. 12–13).
//! The authors used an off-the-shelf stats stack; this crate is that
//! substrate, built from scratch:
//!
//! * [`descriptive`] — means, variances, medians, quantiles, summaries;
//! * [`ecdf`] — empirical CDFs with evaluation and quantiles;
//! * [`histogram`] — linear and logarithmic binning;
//! * [`similarity`] — cosine and Pearson similarity;
//! * [`fit`] — maximum-likelihood log-normal fitting and the
//!   Kolmogorov–Smirnov goodness-of-fit test;
//! * [`rng`] — a seedable xoshiro256++ generator (stable across `rand`
//!   versions, interoperable through `rand_core::RngCore`);
//! * [`dist`] — the samplers the trace generator needs (normal,
//!   log-normal, exponential, Pareto, Zipf, categorical, Poisson,
//!   mixtures);
//! * [`timeseries`] — ACF/PACF, differencing, Nelder–Mead, and
//!   ARIMA(p,d,q) fitting by conditional sum of squares with Yule–Walker
//!   initialization, plus train/test forecast evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod histogram;
pub mod rng;
pub mod similarity;
pub mod timeseries;

pub use descriptive::Summary;
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use rng::Rng;
pub use similarity::{cosine_similarity, pearson_correlation};
pub use timeseries::arima::{ArimaFit, ArimaModel, ArimaSpec};
pub use timeseries::forecast::{evaluate_forecast, ForecastEval};
