//! Descriptive statistics: the moments and quantiles the paper quotes.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n−1 denominator); `None` for fewer than two
/// observations.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    // Two-pass algorithm: numerically stable for the magnitudes we see
    // (durations up to ~10^5 s, distances up to ~10^4 km).
    let ss: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two observations.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population standard deviation (n denominator), used when the data are
/// the full population rather than a sample (e.g. *all* attacks in the
/// window).
pub fn std_dev_population(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    Some((ss / xs.len() as f64).sqrt())
}

/// Median (interpolated for even lengths); `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` must be in `[0, 1]`; returns `None` for empty input or a `q`
/// outside the domain.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over an already-sorted slice (no allocation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count < 2`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; `None` for empty input.
    pub fn from_slice(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summary input"));
        Some(Summary {
            count: sorted.len(),
            mean: mean(&sorted).expect("non-empty"),
            std_dev: std_dev(&sorted).unwrap_or(0.0),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        // Population std is 2.0 for this classic example.
        assert!((std_dev_population(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(median(&xs), Some(4.5));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((quantile(&xs, 1.0 / 3.0).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&xs, -0.1), None);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), Some(5.0));
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [3.0, 1.0, 2.0];
        let s = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation_summary() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.median, 42.0);
    }

    proptest! {
        #[test]
        fn mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn variance_non_negative(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            prop_assert!(variance(&xs).unwrap() >= 0.0);
        }

        #[test]
        fn quantiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                              q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, qa).unwrap() <= quantile(&xs, qb).unwrap() + 1e-9);
        }

        #[test]
        fn shift_invariance_of_std(xs in proptest::collection::vec(-1e3f64..1e3, 2..50),
                                   shift in -1e3f64..1e3) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let a = std_dev(&xs).unwrap();
            let b = std_dev(&shifted).unwrap();
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
