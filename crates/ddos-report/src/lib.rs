//! Rendering of the paper's tables and figure series.
//!
//! `ddos-analytics` produces structured results; this crate turns them
//! into the artifacts a human compares against the paper:
//!
//! * [`table`] — monospace tables (the paper's Tables II–VI);
//! * [`series`] — plot-ready data series (TSV / gnuplot style) for every
//!   figure;
//! * [`experiments`] — the registry mapping experiment ids (`t2`…`t6`,
//!   `f1`…`f18`) to render functions, used by the `repro` binary and the
//!   benches;
//! * [`compare`] — paper-vs-measured comparison rows for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod series;
pub mod table;

pub use compare::{paper_comparisons, Comparison};
pub use experiments::{render, Experiment, EXPERIMENTS};
pub use series::Series;
pub use table::Table;
